//! Compilation of checked ASL specifications to a slot-indexed IR.
//!
//! The tree-walking [`crate::Interpreter`] re-resolves every name on every
//! property instance: variables through a stack of `String`-keyed hash
//! maps, functions and constants through by-name lookups, enum variants
//! through the model's variant table. That is fine as a reference
//! semantics, but the analyzers evaluate the same dozen property bodies
//! across thousands of `(context, run)` instances — all of that resolution
//! work is loop-invariant.
//!
//! [`compile`] lowers each constant, helper function and property of a
//! [`CheckedSpec`] **once** into a flat node pool ([`CompiledSpec`]):
//!
//! * every identifier is resolved at compile time — variables become
//!   register-file **slots** (plain `Vec<Value>` indices; binders of nested
//!   comprehensions reuse slots sibling-to-sibling), constants become
//!   indices into an evaluated constant pool, user functions become
//!   function ids, and enum variants become interned [`Symbol`] pairs;
//! * attribute names are resolved to `&'static str` interned strings, so
//!   the data source is called without any per-instance allocation;
//! * `x IN obj.Set WITH x.Attr == key` filters (the shape of the paper's
//!   `Summary`, `SyncCost`, `LoadImbalance`, …) are recognized and lowered
//!   to an indexed [`Ir::FilterEq`] load, which the [`ObjectModel`] can
//!   answer from a secondary index in O(matches) instead of scanning the
//!   whole set (see [`ObjectModel::filter_eq`]).
//!
//! [`CompiledEvaluator`] then executes the IR against an [`ObjectModel`].
//! It is a drop-in replacement for the interpreter: same outcomes, same
//! severities, same error kinds and messages (enforced by the
//! interpreter-equivalence proptest in `tests/compiled_equiv.rs`). All
//! value-level semantics are shared with the interpreter through
//! [`crate::ops`], so the two engines cannot drift.

use crate::error::{EvalError, EvalErrorKind, EvalResult};
use crate::interp::{ObjectModel, PropertyOutcome};
use crate::ops;
use crate::value::Value;
use asl_core::ast::*;
use asl_core::check::CheckedSpec;
use asl_core::intern::Symbol;
use asl_core::Span;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Maximum user-function call depth (mirrors the interpreter).
const MAX_CALL_DEPTH: usize = 64;

/// Process-wide hit counter of the per-instance memoization cache
/// ([`Ir::Cached`] nodes). `const`-constructed — no registration, no
/// startup cost; the observability layer reads it via [`cache_counters`].
static CACHE_HITS: obs::Counter = obs::Counter::new();
/// Process-wide miss counter of the memoization cache.
static CACHE_MISSES: obs::Counter = obs::Counter::new();

/// Lifetime `(hits, misses)` of the compiled evaluator's memoization
/// cache, summed over every evaluator in the process (the statics are
/// process-global: a sharded engine's shards all bump the same pair, so
/// add these to a merged snapshot exactly once, at the top level).
pub fn cache_counters() -> (u64, u64) {
    (CACHE_HITS.get(), CACHE_MISSES.get())
}

/// Process-wide hit counter of the helper-function result memo (see
/// [`CompiledEvaluator::new_memoized`]).
static FN_MEMO_HITS: obs::Counter = obs::Counter::new();
/// Process-wide miss counter of the helper-function result memo.
static FN_MEMO_MISSES: obs::Counter = obs::Counter::new();

/// Lifetime `(hits, misses)` of the helper-function result memo, summed
/// over every memoized evaluator in the process (same single-snapshot
/// caveat as [`cache_counters`]).
pub fn fn_memo_counters() -> (u64, u64) {
    (FN_MEMO_HITS.get(), FN_MEMO_MISSES.get())
}

/// Reference to a node in the [`CompiledSpec`] pool.
pub type NodeRef = u32;

/// Which syntactic construct a lowered set source belongs to — only used
/// to reproduce the interpreter's exact error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceCtx {
    /// A set comprehension `{ x IN s WITH p }`.
    Comp,
    /// A quantified aggregate `SUM(v WHERE x IN s AND p)`.
    Agg,
}

impl SourceCtx {
    fn word(self) -> &'static str {
        match self {
            SourceCtx::Comp => "comprehension",
            SourceCtx::Agg => "aggregate",
        }
    }
}

/// One IR node. References are indices into the owning spec's node pool;
/// all names are resolved (slots, const indices, function ids, interned
/// strings) — executing a node never hashes a string.
///
/// The enum is public (read-only, via [`CompiledSpec::node`]) so that
/// analysis passes such as `kojak-flow` can walk the exact program the
/// engine executes rather than re-deriving semantics from the AST.
#[derive(Debug, Clone)]
pub enum Ir {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal (index into the spec's string pool).
    Str(u32),
    /// Read a register-file slot.
    Load(u32),
    /// Read an evaluated global constant.
    Const(u32),
    /// An enum variant value: (enum name, variant name).
    EnumVal(Symbol, Symbol),
    /// A name the checker could not have admitted; evaluates to the
    /// interpreter's "unknown variable" error (kept for exact parity).
    UnknownVar(u32),
    /// `base.attr` — the attribute name is pre-interned.
    Attr {
        /// The object expression.
        base: NodeRef,
        /// Attribute name.
        attr: &'static str,
    },
    /// Call of a compiled helper function.
    Call {
        /// Index into the spec's function table.
        func: u32,
        /// Argument expressions, in declaration order.
        args: Box<[NodeRef]>,
    },
    /// Call of an undeclared function: evaluates the arguments, then fails
    /// exactly like the interpreter.
    CallUnknown {
        /// Index of the unknown name in the string pool.
        name: u32,
        /// Argument expressions.
        args: Box<[NodeRef]>,
    },
    /// The n-ary `MAX(a, b, …)` / `MIN(a, b, …)` builtin.
    MinMax {
        /// `true` for `MAX`, `false` for `MIN`.
        is_max: bool,
        /// Argument expressions.
        args: Box<[NodeRef]>,
    },
    /// Unary operator application.
    Unary(UnOp, NodeRef),
    /// Binary operator application (`AND`/`OR` short-circuit).
    Binary(BinOp, NodeRef, NodeRef),
    /// `{ binder IN source WITH pred }` (pred not fully absorbed by an
    /// indexed filter). `resets` is the cache range invalidated on entry.
    SetComp {
        /// Register slot the binder occupies per iteration.
        slot: u32,
        /// Set expression iterated over.
        source: NodeRef,
        /// Per-element predicate.
        pred: NodeRef,
        /// Cache range invalidated on construct entry.
        resets: (u32, u32),
    },
    /// `UNIQUE(set)` — exactly-one-element extraction.
    Unique(NodeRef),
    /// Quantified aggregate `SUM(value WHERE slot IN source AND pred)`.
    Aggregate {
        /// Aggregate operator.
        op: AggOp,
        /// Register slot the binder occupies per iteration.
        slot: u32,
        /// Set expression iterated over.
        source: NodeRef,
        /// Per-element value expression.
        value: NodeRef,
        /// Optional per-element predicate.
        pred: Option<NodeRef>,
        /// Cache range invalidated on construct entry.
        resets: (u32, u32),
    },
    /// `FORALL`/`EXISTS` over a set.
    Quantifier {
        /// `true` for `FORALL`, `false` for `EXISTS`.
        forall: bool,
        /// Register slot the binder occupies per iteration.
        slot: u32,
        /// Set expression iterated over.
        source: NodeRef,
        /// Optional per-element predicate.
        pred: Option<NodeRef>,
        /// Cache range invalidated on construct entry.
        resets: (u32, u32),
    },
    /// `COUNT(set)` without a quantifier — set cardinality.
    CountSet(NodeRef),
    /// Loop-invariant subexpression hoisted out of a set construct:
    /// evaluated lazily on first touch per construct entry, then reused
    /// across the construct's iterations. Lazy evaluation keeps error
    /// order and short-circuiting bit-identical to re-evaluating — the
    /// first iteration that would have reached the expression still
    /// evaluates it, and iterations that never reach it never pay for it.
    Cached {
        /// Cache slot index.
        cache: u32,
        /// The hoisted expression.
        expr: NodeRef,
    },
    /// Indexed set filter: the elements of `obj.set_attr` whose
    /// `elem_attr` equals `key`. Served by [`ObjectModel::filter_eq`] when
    /// the data source has an index, otherwise by a scan that reproduces
    /// the generic `==` filter element-by-element.
    FilterEq {
        /// The object whose set attribute is filtered.
        obj: NodeRef,
        /// The set-valued attribute on `obj`.
        set_attr: &'static str,
        /// The element attribute compared against `key`.
        elem_attr: &'static str,
        /// The filter key expression.
        key: NodeRef,
        /// Which construct the filter was lowered from (error parity).
        ctx: SourceCtx,
    },
}

/// A confidence/severity arm with its guard resolved to a condition index.
#[derive(Debug, Clone)]
pub struct CompiledArm {
    /// `None` = unguarded; `Some(i)` = applicable iff condition `i` fired.
    pub guard: Option<usize>,
    /// Root node of the arm's value expression.
    pub expr: NodeRef,
}

#[derive(Debug)]
struct ConstBody {
    name: String,
    n_slots: usize,
    n_caches: usize,
    body: NodeRef,
}

#[derive(Debug)]
struct FnBody {
    name: String,
    n_params: usize,
    n_slots: usize,
    n_caches: usize,
    body: NodeRef,
}

#[derive(Debug)]
struct PropBody {
    n_params: usize,
    n_slots: usize,
    n_caches: usize,
    /// `(slot, value)` in declaration order.
    lets: Vec<(u32, NodeRef)>,
    /// `(condition id, predicate)` in declaration order.
    conditions: Vec<(Option<String>, NodeRef)>,
    confidence: Vec<CompiledArm>,
    severity: Vec<CompiledArm>,
}

/// A specification lowered to the slot-indexed IR. Compile once (pure,
/// data-independent), share via `Arc`, and bind to any number of data
/// sources with [`CompiledEvaluator::new`].
#[derive(Debug)]
pub struct CompiledSpec {
    nodes: Vec<Ir>,
    /// Source span of each node, parallel to `nodes` (the span of the AST
    /// expression the node was lowered from; `Span::default()` for
    /// synthesized nodes). Used to attach source positions to runtime
    /// errors and by the static cost model.
    spans: Vec<Span>,
    strings: Vec<String>,
    consts: Vec<ConstBody>,
    functions: Vec<FnBody>,
    properties: Vec<PropBody>,
    prop_names: Vec<String>,
    fn_ids: HashMap<String, usize>,
    prop_ids: HashMap<String, usize>,
}

impl CompiledSpec {
    /// Does the compiled spec declare this property?
    pub fn has_property(&self, name: &str) -> bool {
        self.prop_ids.contains_key(name)
    }

    /// Number of IR nodes (diagnostics/benchmarks).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The IR node behind a reference (read-only; analysis passes).
    pub fn node(&self, r: NodeRef) -> &Ir {
        &self.nodes[r as usize]
    }

    /// Source span of a node (`Span::default()` for synthesized nodes).
    pub fn node_span(&self, r: NodeRef) -> Span {
        self.spans[r as usize]
    }

    /// A string-pool entry (string literals, unknown names).
    pub fn str_lit(&self, i: u32) -> &str {
        &self.strings[i as usize]
    }

    /// Read-only views of the compiled global constants, in declaration
    /// order (the order [`Ir::Const`] indexes them).
    pub fn consts_ir(&self) -> impl Iterator<Item = ConstIr<'_>> {
        self.consts.iter().map(|c| ConstIr {
            name: &c.name,
            n_slots: c.n_slots,
            body: c.body,
        })
    }

    /// Read-only views of the compiled helper functions, in declaration
    /// order (the order [`Ir::Call`] indexes them). Parameters occupy
    /// slots `0..n_params`.
    pub fn functions_ir(&self) -> impl Iterator<Item = FnIr<'_>> {
        self.functions.iter().map(|f| FnIr {
            name: &f.name,
            n_params: f.n_params,
            n_slots: f.n_slots,
            body: f.body,
        })
    }

    /// Read-only views of the compiled properties, in declaration order.
    /// Parameters occupy slots `0..n_params`.
    pub fn properties_ir(&self) -> impl Iterator<Item = PropIr<'_>> {
        self.properties
            .iter()
            .zip(&self.prop_names)
            .map(|(p, name)| PropIr {
                name,
                n_params: p.n_params,
                n_slots: p.n_slots,
                lets: &p.lets,
                conditions: &p.conditions,
                confidence: &p.confidence,
                severity: &p.severity,
            })
    }

    /// Statically estimated evaluation cost of every property, in
    /// declaration order. See [`PropCost`] for the model's assumptions.
    pub fn property_costs(&self) -> Vec<PropCost> {
        self.property_costs_with_bounds(&|_| None)
    }

    /// [`property_costs`](Self::property_costs) with an external
    /// cardinality oracle: `bounds` may return a proven upper bound on
    /// the element count of a loop-source node (keyed by the source's
    /// [`NodeRef`], `Cached` wrappers already unwrapped). Dataflow
    /// analysis (`kojak-flow`) derives such bounds from COUNT guards and
    /// comprehension structure; sources the oracle cannot bound fall
    /// back to the model's fixed scan/filter assumptions.
    pub fn property_costs_with_bounds(
        &self,
        bounds: &dyn Fn(NodeRef) -> Option<u64>,
    ) -> Vec<PropCost> {
        // Helper-function body costs first, in declaration order. A call
        // to a callee whose cost is not known yet (self-recursion, forward
        // or mutual recursion) is charged a flat penalty instead of
        // recursing — the walk always terminates.
        let mut fn_costs: Vec<Option<CostSum>> = vec![None; self.functions.len()];
        for fid in 0..self.functions.len() {
            let mut stats = CostStats::default();
            let sum = self.cost_walk(self.functions[fid].body, 0, &fn_costs, bounds, &mut stats);
            fn_costs[fid] = Some(sum);
        }
        self.properties
            .iter()
            .zip(&self.prop_names)
            .map(|(p, name)| {
                let mut stats = CostStats::default();
                let mut total = CostSum::default();
                for &(_, value) in &p.lets {
                    total.add(self.cost_walk(value, 0, &fn_costs, bounds, &mut stats));
                }
                for (_, pred) in &p.conditions {
                    total.add(self.cost_walk(*pred, 0, &fn_costs, bounds, &mut stats));
                }
                for arm in p.confidence.iter().chain(&p.severity) {
                    total.add(self.cost_walk(arm.expr, 0, &fn_costs, bounds, &mut stats));
                }
                PropCost {
                    property: name.clone(),
                    ir_nodes: stats.nodes,
                    indexed_loads: stats.indexed_loads,
                    scan_constructs: stats.scan_constructs,
                    cached_subtrees: stats.cached_subtrees,
                    max_loop_depth: stats.max_loop_depth,
                    estimated_units: total.per + total.once,
                }
            })
            .collect()
    }

    /// Walk a subtree accumulating the cost model. Returns the cost split
    /// into a per-evaluation part and a once-per-construct-entry part
    /// (the lazily `Cached` subtrees, which an enclosing loop must not
    /// multiply).
    fn cost_walk(
        &self,
        node: NodeRef,
        depth: u64,
        fn_costs: &[Option<CostSum>],
        bounds: &dyn Fn(NodeRef) -> Option<u64>,
        stats: &mut CostStats,
    ) -> CostSum {
        stats.nodes += 1;
        let mut sum = CostSum::default();
        match &self.nodes[node as usize] {
            Ir::Int(_) | Ir::Float(_) | Ir::Bool(_) | Ir::Str(_) | Ir::EnumVal(..) => sum.per += 1,
            Ir::Load(_) | Ir::Const(_) | Ir::UnknownVar(_) => sum.per += 1,
            Ir::Attr { base, .. } => {
                sum.add(self.cost_walk(*base, depth, fn_costs, bounds, stats));
                sum.per += COST_ATTR;
            }
            Ir::Call { func, args } => {
                for a in args.iter() {
                    sum.add(self.cost_walk(*a, depth, fn_costs, bounds, stats));
                }
                match fn_costs.get(*func as usize).and_then(|c| c.as_ref()) {
                    // Body cost flattened into the call site; the callee's
                    // caches are per-call, so its `once` is per-call too.
                    Some(c) => sum.per += c.per + c.once + COST_CALL,
                    // Self/forward recursion while the callee's own cost is
                    // still being computed: flat penalty.
                    None => sum.per += COST_RECURSIVE_CALL,
                }
            }
            Ir::CallUnknown { args, .. } => {
                for a in args.iter() {
                    sum.add(self.cost_walk(*a, depth, fn_costs, bounds, stats));
                }
                sum.per += COST_CALL;
            }
            Ir::MinMax { args, .. } => {
                for a in args.iter() {
                    sum.add(self.cost_walk(*a, depth, fn_costs, bounds, stats));
                }
                sum.per += 1;
            }
            Ir::Unary(_, i) | Ir::Unique(i) | Ir::CountSet(i) => {
                sum.add(self.cost_walk(*i, depth, fn_costs, bounds, stats));
                sum.per += 1;
            }
            Ir::Binary(_, l, r) => {
                sum.add(self.cost_walk(*l, depth, fn_costs, bounds, stats));
                sum.add(self.cost_walk(*r, depth, fn_costs, bounds, stats));
                sum.per += 1;
            }
            Ir::Cached { expr, .. } => {
                stats.cached_subtrees += 1;
                let inner = self.cost_walk(*expr, depth, fn_costs, bounds, stats);
                // Evaluated once per construct entry, then a cache hit.
                sum.once += inner.per + inner.once;
                sum.per += 1;
            }
            Ir::SetComp { source, pred, .. } => {
                let n = self.loop_cardinality(*source, bounds, stats);
                stats.max_loop_depth = stats.max_loop_depth.max(depth + 1);
                sum.add(self.cost_walk(*source, depth, fn_costs, bounds, stats));
                let body = self.cost_walk(*pred, depth + 1, fn_costs, bounds, stats);
                sum.per += n * body.per + body.once + COST_LOOP;
            }
            Ir::Aggregate {
                source,
                value,
                pred,
                ..
            } => {
                let n = self.loop_cardinality(*source, bounds, stats);
                stats.max_loop_depth = stats.max_loop_depth.max(depth + 1);
                sum.add(self.cost_walk(*source, depth, fn_costs, bounds, stats));
                let mut body = self.cost_walk(*value, depth + 1, fn_costs, bounds, stats);
                if let Some(p) = pred {
                    body.add(self.cost_walk(*p, depth + 1, fn_costs, bounds, stats));
                }
                sum.per += n * body.per + body.once + COST_LOOP;
            }
            Ir::Quantifier { source, pred, .. } => {
                let n = self.loop_cardinality(*source, bounds, stats);
                stats.max_loop_depth = stats.max_loop_depth.max(depth + 1);
                sum.add(self.cost_walk(*source, depth, fn_costs, bounds, stats));
                if let Some(p) = pred {
                    let body = self.cost_walk(*p, depth + 1, fn_costs, bounds, stats);
                    sum.per += n * body.per + body.once;
                }
                sum.per += COST_LOOP;
            }
            Ir::FilterEq { obj, key, .. } => {
                stats.indexed_loads += 1;
                sum.add(self.cost_walk(*obj, depth, fn_costs, bounds, stats));
                sum.add(self.cost_walk(*key, depth, fn_costs, bounds, stats));
                sum.per += COST_FILTER_EQ;
            }
        }
        sum
    }

    /// Assumed element count of a loop source: a proven bound from the
    /// oracle wins; otherwise indexed filters are presumed selective
    /// ([`CARD_FILTERED`]) and anything else is a full-set scan
    /// ([`CARD_SCAN`], also counted in `scan_constructs`).
    fn loop_cardinality(
        &self,
        source: NodeRef,
        bounds: &dyn Fn(NodeRef) -> Option<u64>,
        stats: &mut CostStats,
    ) -> u64 {
        // A hoisted source is still whatever it wraps.
        let mut n = source;
        while let Ir::Cached { expr, .. } = &self.nodes[n as usize] {
            n = *expr;
        }
        let indexed = matches!(self.nodes[n as usize], Ir::FilterEq { .. });
        if !indexed {
            stats.scan_constructs += 1;
        }
        if let Some(b) = bounds(n) {
            return b;
        }
        if indexed {
            CARD_FILTERED
        } else {
            CARD_SCAN
        }
    }
}

/// Read-only view of a compiled global constant (analysis passes).
#[derive(Debug, Clone, Copy)]
pub struct ConstIr<'a> {
    /// Declared name.
    pub name: &'a str,
    /// Register slots the body needs.
    pub n_slots: usize,
    /// Root node of the value expression.
    pub body: NodeRef,
}

/// Read-only view of a compiled helper function (analysis passes).
#[derive(Debug, Clone, Copy)]
pub struct FnIr<'a> {
    /// Declared name.
    pub name: &'a str,
    /// Parameter count; parameters occupy slots `0..n_params`.
    pub n_params: usize,
    /// Register slots the body needs (including the parameters).
    pub n_slots: usize,
    /// Root node of the body expression.
    pub body: NodeRef,
}

/// Read-only view of a compiled property (analysis passes).
#[derive(Debug, Clone, Copy)]
pub struct PropIr<'a> {
    /// Declared name.
    pub name: &'a str,
    /// Parameter count; parameters occupy slots `0..n_params`.
    pub n_params: usize,
    /// Register slots the property needs.
    pub n_slots: usize,
    /// `(slot, value)` LET bindings in declaration order.
    pub lets: &'a [(u32, NodeRef)],
    /// `(condition id, predicate)` in declaration order.
    pub conditions: &'a [(Option<String>, NodeRef)],
    /// Compiled confidence arms.
    pub confidence: &'a [CompiledArm],
    /// Compiled severity arms.
    pub severity: &'a [CompiledArm],
}

/// Assumed cardinality of an unindexed (full-scan) loop source.
const CARD_SCAN: u64 = 16;
/// Assumed cardinality of an indexed `FilterEq` loop source.
const CARD_FILTERED: u64 = 4;
/// Cost of an attribute access (string-match dispatch in the data source).
const COST_ATTR: u64 = 4;
/// Fixed overhead of a helper-function call (frame setup).
const COST_CALL: u64 = 2;
/// Flat charge for a call whose cost is unknown at this point (recursion).
const COST_RECURSIVE_CALL: u64 = 64;
/// Fixed overhead of entering a set construct (set materialization).
const COST_LOOP: u64 = 4;
/// Cost of an indexed filter load answered from a secondary index.
const COST_FILTER_EQ: u64 = 6;

/// Accumulator for [`CompiledSpec::cost_walk`].
#[derive(Default, Clone, Copy)]
struct CostSum {
    /// Units paid every time the subtree is evaluated.
    per: u64,
    /// Units paid once per enclosing construct entry (lazy caches).
    once: u64,
}

impl CostSum {
    fn add(&mut self, other: CostSum) {
        self.per += other.per;
        self.once += other.once;
    }
}

#[derive(Default)]
struct CostStats {
    nodes: u64,
    indexed_loads: u64,
    scan_constructs: u64,
    cached_subtrees: u64,
    max_loop_depth: u64,
}

/// Statically estimated evaluation cost of one property, produced by
/// [`CompiledSpec::property_costs`].
///
/// The estimate is a *ranking* heuristic, not a prediction: set sizes are
/// unknown at compile time, so every unindexed loop is assumed to visit a
/// fixed fan-out (16 elements) and every indexed (`FilterEq`) loop a
/// smaller one (4). Units are abstract (≈ IR dispatches); compare
/// properties against each other, not against wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropCost {
    /// Property name.
    pub property: String,
    /// IR nodes visited by the walk (call bodies counted per call site).
    pub ir_nodes: u64,
    /// Indexed `FilterEq` loads (served in O(matches) on indexed models).
    pub indexed_loads: u64,
    /// Loops over a full, unindexed set materialization.
    pub scan_constructs: u64,
    /// Loop-invariant subtrees hoisted into lazy caches.
    pub cached_subtrees: u64,
    /// Deepest loop nesting (1 = a flat aggregate/comprehension).
    pub max_loop_depth: u64,
    /// Total estimated units under the model's cardinality assumptions.
    pub estimated_units: u64,
}

/// Lower a checked specification into the slot-indexed IR.
///
/// Compilation is total: name shapes the checker would reject are lowered
/// to nodes that reproduce the interpreter's runtime errors, so a
/// `CheckedSpec` always compiles and the two engines agree even on the
/// error paths.
pub fn compile(spec: &CheckedSpec) -> CompiledSpec {
    Compiler::new(spec).run()
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

struct Compiler<'s> {
    spec: &'s CheckedSpec,
    nodes: Vec<Ir>,
    /// Parallel to `nodes`; see [`CompiledSpec::spans`].
    spans: Vec<Span>,
    /// Span of the AST expression currently being lowered — the span
    /// recorded by [`Compiler::push`].
    cur_span: Span,
    strings: Vec<String>,
    /// Lexical scopes: innermost last; each frame maps name → slot.
    scopes: Vec<Vec<(String, u32)>>,
    next_slot: u32,
    max_slots: u32,
    /// Loop-invariant cache cells allocated in the current body.
    n_caches: u32,
    /// Constants visible so far (grows as constant bodies are compiled, so
    /// forward references fall through to the interpreter-identical
    /// "unknown variable" behavior).
    const_ids: HashMap<String, u32>,
    fn_ids: HashMap<String, usize>,
}

impl<'s> Compiler<'s> {
    fn new(spec: &'s CheckedSpec) -> Self {
        let fn_ids = spec
            .spec
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.name.clone(), i))
            .collect();
        Compiler {
            spec,
            nodes: Vec::new(),
            spans: Vec::new(),
            cur_span: Span::default(),
            strings: Vec::new(),
            scopes: Vec::new(),
            next_slot: 0,
            max_slots: 0,
            n_caches: 0,
            const_ids: HashMap::new(),
            fn_ids,
        }
    }

    fn run(mut self) -> CompiledSpec {
        let mut consts = Vec::new();
        for (i, c) in self.spec.spec.constants.iter().enumerate() {
            self.begin_body();
            let body = self.lower(&c.value);
            consts.push(ConstBody {
                name: c.name.name.clone(),
                n_slots: self.max_slots as usize,
                n_caches: self.n_caches as usize,
                body,
            });
            self.const_ids.insert(c.name.name.clone(), i as u32);
        }

        let mut functions = Vec::new();
        for f in &self.spec.spec.functions {
            self.begin_body();
            for p in &f.params {
                self.bind(&p.name.name);
            }
            let body = self.lower(&f.body);
            functions.push(FnBody {
                name: f.name.name.clone(),
                n_params: f.params.len(),
                n_slots: self.max_slots as usize,
                n_caches: self.n_caches as usize,
                body,
            });
        }

        let mut properties = Vec::new();
        let mut prop_names = Vec::new();
        let mut prop_ids = HashMap::new();
        for p in &self.spec.spec.properties {
            prop_ids.insert(p.name.name.clone(), properties.len());
            prop_names.push(p.name.name.clone());
            properties.push(self.lower_property(p));
        }

        CompiledSpec {
            nodes: self.nodes,
            spans: self.spans,
            strings: self.strings,
            consts,
            functions,
            properties,
            prop_names,
            fn_ids: self.fn_ids,
            prop_ids,
        }
    }

    fn lower_property(&mut self, p: &PropertyDecl) -> PropBody {
        self.begin_body();
        for param in &p.params {
            self.bind(&param.name.name);
        }
        let mut lets = Vec::new();
        for l in &p.lets {
            let value = self.lower(&l.value);
            // The binding becomes visible only after its value expression
            // (the interpreter binds after evaluating).
            let slot = self.bind(&l.name.name);
            lets.push((slot, value));
        }
        let mut conditions = Vec::new();
        for c in &p.conditions {
            let pred = self.lower(&c.expr);
            conditions.push((c.id.as_ref().map(|i| i.name.clone()), pred));
        }
        let cond_index = |guard: &Option<Ident>| -> Option<usize> {
            guard.as_ref().map(|g| {
                conditions
                    .iter()
                    .position(|(id, _)| id.as_deref() == Some(g.name.as_str()))
                    .expect("checker verified guard names a declared condition id")
            })
        };
        let lower_arms = |this: &mut Self, spec: &ArmSpec| -> Vec<CompiledArm> {
            spec.arms
                .iter()
                .map(|arm| CompiledArm {
                    guard: cond_index(&arm.guard),
                    expr: this.lower(&arm.expr),
                })
                .collect()
        };
        let confidence = lower_arms(&mut *self, &p.confidence);
        let severity = lower_arms(&mut *self, &p.severity);
        PropBody {
            n_params: p.params.len(),
            n_slots: self.max_slots as usize,
            n_caches: self.n_caches as usize,
            lets,
            conditions,
            confidence,
            severity,
        }
    }

    // ---- scope / pool helpers -------------------------------------------

    fn begin_body(&mut self) {
        self.scopes = vec![Vec::new()];
        self.next_slot = 0;
        self.max_slots = 0;
        self.n_caches = 0;
    }

    fn open_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn close_scope(&mut self) {
        let frame = self.scopes.pop().expect("scope underflow");
        // Slots of a closed scope are reused by sibling scopes.
        self.next_slot -= frame.len() as u32;
    }

    fn bind(&mut self, name: &str) -> u32 {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.max_slots = self.max_slots.max(self.next_slot);
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .push((name.to_string(), slot));
        slot
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        self.scopes
            .iter()
            .rev()
            .find_map(|f| f.iter().rev().find(|(n, _)| n == name).map(|(_, s)| *s))
    }

    fn push(&mut self, ir: Ir) -> NodeRef {
        let span = self.cur_span;
        self.push_at(ir, span)
    }

    fn push_at(&mut self, ir: Ir, span: Span) -> NodeRef {
        self.nodes.push(ir);
        self.spans.push(span);
        (self.nodes.len() - 1) as NodeRef
    }

    fn pool_str(&mut self, s: &str) -> u32 {
        if let Some(i) = self.strings.iter().position(|x| x == s) {
            return i as u32;
        }
        self.strings.push(s.to_string());
        (self.strings.len() - 1) as u32
    }

    // ---- expression lowering --------------------------------------------

    fn lower(&mut self, e: &Expr) -> NodeRef {
        // Nodes pushed while lowering `e` (that are not inside a nested
        // `lower` call) carry `e`'s span; save/restore keeps the parent's
        // span intact for siblings.
        let saved = self.cur_span;
        self.cur_span = e.span;
        let node = self.lower_inner(e);
        self.cur_span = saved;
        node
    }

    fn lower_inner(&mut self, e: &Expr) -> NodeRef {
        match &e.kind {
            ExprKind::IntLit(v) => self.push(Ir::Int(*v)),
            ExprKind::FloatLit(v) => self.push(Ir::Float(*v)),
            ExprKind::BoolLit(b) => self.push(Ir::Bool(*b)),
            ExprKind::StrLit(s) => {
                let i = self.pool_str(s);
                self.push(Ir::Str(i))
            }
            ExprKind::Var(name) => self.lower_var(name),
            ExprKind::Attr(base, attr) => {
                let b = self.lower(base);
                let a = Symbol::intern(&attr.name).as_str();
                self.push(Ir::Attr { base: b, attr: a })
            }
            ExprKind::Call(name, args) => {
                if name.name == "MAX" || name.name == "MIN" {
                    let is_max = name.name == "MAX";
                    let args: Box<[NodeRef]> = args.iter().map(|a| self.lower(a)).collect();
                    return self.push(Ir::MinMax { is_max, args });
                }
                let lowered: Box<[NodeRef]> = args.iter().map(|a| self.lower(a)).collect();
                match self.fn_ids.get(&name.name) {
                    Some(&fid) => self.push(Ir::Call {
                        func: fid as u32,
                        args: lowered,
                    }),
                    None => {
                        let n = self.pool_str(&name.name);
                        self.push(Ir::CallUnknown {
                            name: n,
                            args: lowered,
                        })
                    }
                }
            }
            ExprKind::Unary(op, inner) => {
                let i = self.lower(inner);
                self.push(Ir::Unary(*op, i))
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.lower(lhs);
                let r = self.lower(rhs);
                self.push(Ir::Binary(*op, l, r))
            }
            ExprKind::SetComp {
                binder,
                source,
                pred,
            } => {
                let (src, plan) = self.lower_source(binder, source, Some(&**pred), SourceCtx::Comp);
                self.open_scope();
                let slot = self.bind(&binder.name);
                let reset_start = self.n_caches;
                let pred_ir = self.lower_residual(plan).map(|p| self.hoist(p, slot));
                self.close_scope();
                let resets = (reset_start, self.n_caches);
                match pred_ir {
                    Some(p) => self.push(Ir::SetComp {
                        slot,
                        source: src,
                        pred: p,
                        resets,
                    }),
                    // Fully absorbed by the indexed filter: the filter IS
                    // the comprehension.
                    None => src,
                }
            }
            ExprKind::Unique(inner) => {
                let i = self.lower(inner);
                self.push(Ir::Unique(i))
            }
            ExprKind::Aggregate {
                op,
                value,
                binder,
                source,
                pred,
            } => {
                let (src, plan) =
                    self.lower_source(binder, source, pred.as_deref(), SourceCtx::Agg);
                self.open_scope();
                let slot = self.bind(&binder.name);
                let reset_start = self.n_caches;
                let pred_ir = self.lower_residual(plan).map(|p| self.hoist(p, slot));
                let value_ir = self.lower(value);
                let value_ir = self.hoist(value_ir, slot);
                self.close_scope();
                let resets = (reset_start, self.n_caches);
                self.push(Ir::Aggregate {
                    op: *op,
                    slot,
                    source: src,
                    value: value_ir,
                    pred: pred_ir,
                    resets,
                })
            }
            ExprKind::Quantifier {
                q,
                binder,
                source,
                pred,
            } => {
                // Quantifiers never use the indexed filter: `FORALL` must
                // see elements the filter would drop (they falsify it),
                // and `EXISTS` short-circuits at the first witness — a
                // materializing filter would touch elements past it,
                // surfacing attribute errors the interpreter never
                // reaches (and doing more work) on unindexed models.
                let (src, plan) = (self.lower(source), Some(Residual::Whole(pred)));
                self.open_scope();
                let slot = self.bind(&binder.name);
                let reset_start = self.n_caches;
                let pred_ir = self.lower_residual(plan).map(|p| self.hoist(p, slot));
                self.close_scope();
                let resets = (reset_start, self.n_caches);
                self.push(Ir::Quantifier {
                    forall: matches!(q, Quant::Forall),
                    slot,
                    source: src,
                    pred: pred_ir,
                    resets,
                })
            }
            ExprKind::CountSet(inner) => {
                let i = self.lower(inner);
                self.push(Ir::CountSet(i))
            }
        }
    }

    fn lower_var(&mut self, name: &str) -> NodeRef {
        if let Some(slot) = self.lookup(name) {
            self.push(Ir::Load(slot))
        } else if let Some(&cid) = self.const_ids.get(name) {
            self.push(Ir::Const(cid))
        } else if let Some(owner) = self.spec.model.variant_owner.get(name) {
            self.push(Ir::EnumVal(Symbol::intern(owner), Symbol::intern(name)))
        } else {
            let n = self.pool_str(name);
            self.push(Ir::UnknownVar(n))
        }
    }

    /// Lower the source of a `binder IN source [pred]` construct,
    /// extracting a leading `binder.Attr == key` conjunct into an indexed
    /// [`Ir::FilterEq`] when it is safe: the source is an attribute access,
    /// the conjunct is the **first** one evaluated (so skipped elements
    /// never reached the rest of the predicate anyway), and the key is an
    /// infallible, binder-free expression (so hoisting its evaluation out
    /// of the loop cannot reorder errors).
    fn lower_source<'e>(
        &mut self,
        binder: &Ident,
        source: &'e Expr,
        pred: Option<&'e Expr>,
        ctx: SourceCtx,
    ) -> (NodeRef, Option<Residual<'e>>) {
        if let (ExprKind::Attr(base, set_attr), Some(p)) = (&source.kind, pred) {
            let mut cj = Vec::new();
            conjuncts(p, &mut cj);
            if let Some((elem_attr, key_expr)) = match_eq_filter(cj[0], &binder.name) {
                // Key compiled in the *outer* scope; it is binder-free by
                // the `match_eq_filter` check, so resolution is identical.
                let key = self.lower(key_expr);
                if self.is_infallible(key) {
                    let obj = self.lower(base);
                    let set_attr = Symbol::intern(&set_attr.name).as_str();
                    let elem_attr = Symbol::intern(elem_attr).as_str();
                    let src = self.push(Ir::FilterEq {
                        obj,
                        set_attr,
                        elem_attr,
                        key,
                        ctx,
                    });
                    return (src, Some(Residual::Conjuncts(cj[1..].to_vec())));
                }
            }
        }
        (self.lower(source), pred.map(Residual::Whole))
    }

    /// Lower the residual predicate of a set construct (inside the binder
    /// scope). `None` means "no predicate left".
    fn lower_residual(&mut self, plan: Option<Residual<'_>>) -> Option<NodeRef> {
        match plan {
            None => None,
            Some(Residual::Whole(p)) => Some(self.lower(p)),
            Some(Residual::Conjuncts(cs)) => {
                let mut it = cs.into_iter();
                let first = it.next()?;
                let mut ir = self.lower(first);
                for c in it {
                    let r = self.lower(c);
                    ir = self.push(Ir::Binary(BinOp::And, ir, r));
                }
                Some(ir)
            }
        }
    }

    /// Can evaluating this node neither fail nor observe evaluation order?
    /// (Loads, constant reads and literals only.)
    fn is_infallible(&self, node: NodeRef) -> bool {
        matches!(
            self.nodes[node as usize],
            Ir::Load(_)
                | Ir::Const(_)
                | Ir::EnumVal(..)
                | Ir::Int(_)
                | Ir::Float(_)
                | Ir::Bool(_)
                | Ir::Str(_)
        )
    }

    // ---- loop-invariant code motion --------------------------------------

    /// Hoist maximal loop-invariant, expensive subtrees of a construct
    /// body into lazy [`Ir::Cached`] cells. A subtree is invariant when it
    /// loads no slot `>= binder_slot` — slots below are outer
    /// params/lets/binders (stable across this construct's iterations),
    /// slots at/above are this construct's binder or binders introduced
    /// inside the subtree itself. Rewrites child references in place and
    /// returns the (possibly wrapped) root.
    fn hoist(&mut self, node: NodeRef, binder_slot: u32) -> NodeRef {
        if !self.loads_free_slot_ge(node, binder_slot, &mut Vec::new()) {
            if self.is_expensive(node) {
                let cache = self.n_caches;
                self.n_caches += 1;
                let span = self.spans[node as usize];
                return self.push_at(Ir::Cached { cache, expr: node }, span);
            }
            return node;
        }
        // Depends on the loop — recurse into the children, rewriting the
        // node's child references in place (parents stay valid).
        let mut n = self.nodes[node as usize].clone();
        match &mut n {
            Ir::Attr { base, .. } => *base = self.hoist(*base, binder_slot),
            Ir::Call { args, .. } | Ir::CallUnknown { args, .. } | Ir::MinMax { args, .. } => {
                for a in args.iter_mut() {
                    *a = self.hoist(*a, binder_slot);
                }
            }
            Ir::Unary(_, i) | Ir::Unique(i) | Ir::CountSet(i) | Ir::Cached { expr: i, .. } => {
                *i = self.hoist(*i, binder_slot);
            }
            Ir::Binary(_, l, r) => {
                *l = self.hoist(*l, binder_slot);
                *r = self.hoist(*r, binder_slot);
            }
            Ir::SetComp { source, pred, .. } => {
                *source = self.hoist(*source, binder_slot);
                *pred = self.hoist(*pred, binder_slot);
            }
            Ir::Aggregate {
                source,
                value,
                pred,
                ..
            } => {
                *source = self.hoist(*source, binder_slot);
                *value = self.hoist(*value, binder_slot);
                if let Some(p) = pred {
                    *p = self.hoist(*p, binder_slot);
                }
            }
            Ir::Quantifier { source, pred, .. } => {
                *source = self.hoist(*source, binder_slot);
                if let Some(p) = pred {
                    *p = self.hoist(*p, binder_slot);
                }
            }
            Ir::FilterEq { obj, key, .. } => {
                *obj = self.hoist(*obj, binder_slot);
                *key = self.hoist(*key, binder_slot);
            }
            Ir::Int(_)
            | Ir::Float(_)
            | Ir::Bool(_)
            | Ir::Str(_)
            | Ir::Load(_)
            | Ir::Const(_)
            | Ir::EnumVal(..)
            | Ir::UnknownVar(_) => {}
        }
        self.nodes[node as usize] = n;
        node
    }

    /// Does the subtree load any **free** slot `>= threshold`? Slots bound
    /// by constructs *within* the subtree (`bound`, maintained as a stack
    /// while walking) are the subtree's own binders — loading them does
    /// not make it depend on the enclosing loop. Free loads below the
    /// threshold are outer params/lets/binders, stable across the
    /// enclosing construct's iterations.
    fn loads_free_slot_ge(&self, node: NodeRef, threshold: u32, bound: &mut Vec<u32>) -> bool {
        match &self.nodes[node as usize] {
            Ir::Load(s) => *s >= threshold && !bound.contains(s),
            Ir::Int(_)
            | Ir::Float(_)
            | Ir::Bool(_)
            | Ir::Str(_)
            | Ir::Const(_)
            | Ir::EnumVal(..)
            | Ir::UnknownVar(_) => false,
            Ir::Attr { base, .. } => self.loads_free_slot_ge(*base, threshold, bound),
            Ir::Call { args, .. } | Ir::CallUnknown { args, .. } | Ir::MinMax { args, .. } => args
                .iter()
                .any(|a| self.loads_free_slot_ge(*a, threshold, bound)),
            Ir::Unary(_, i) | Ir::Unique(i) | Ir::CountSet(i) | Ir::Cached { expr: i, .. } => {
                self.loads_free_slot_ge(*i, threshold, bound)
            }
            Ir::Binary(_, l, r) => {
                self.loads_free_slot_ge(*l, threshold, bound)
                    || self.loads_free_slot_ge(*r, threshold, bound)
            }
            Ir::SetComp {
                slot, source, pred, ..
            } => {
                // The binder is in scope for the predicate, not the source.
                if self.loads_free_slot_ge(*source, threshold, bound) {
                    return true;
                }
                bound.push(*slot);
                let dep = self.loads_free_slot_ge(*pred, threshold, bound);
                bound.pop();
                dep
            }
            Ir::Aggregate {
                slot,
                source,
                value,
                pred,
                ..
            } => {
                if self.loads_free_slot_ge(*source, threshold, bound) {
                    return true;
                }
                bound.push(*slot);
                let dep = self.loads_free_slot_ge(*value, threshold, bound)
                    || pred.is_some_and(|p| self.loads_free_slot_ge(p, threshold, bound));
                bound.pop();
                dep
            }
            Ir::Quantifier {
                slot, source, pred, ..
            } => {
                if self.loads_free_slot_ge(*source, threshold, bound) {
                    return true;
                }
                bound.push(*slot);
                let dep = pred.is_some_and(|p| self.loads_free_slot_ge(p, threshold, bound));
                bound.pop();
                dep
            }
            Ir::FilterEq { obj, key, .. } => {
                self.loads_free_slot_ge(*obj, threshold, bound)
                    || self.loads_free_slot_ge(*key, threshold, bound)
            }
        }
    }

    /// Is the subtree worth caching? (Contains a nested loop, an indexed
    /// filter, or a function call — anything whose re-evaluation per
    /// iteration is more than a few machine ops.)
    fn is_expensive(&self, node: NodeRef) -> bool {
        match &self.nodes[node as usize] {
            Ir::SetComp { .. }
            | Ir::Aggregate { .. }
            | Ir::Quantifier { .. }
            | Ir::FilterEq { .. }
            | Ir::Call { .. }
            | Ir::CallUnknown { .. }
            | Ir::Unique(_)
            | Ir::CountSet(_) => true,
            Ir::Int(_)
            | Ir::Float(_)
            | Ir::Bool(_)
            | Ir::Str(_)
            | Ir::Load(_)
            | Ir::Const(_)
            | Ir::EnumVal(..)
            | Ir::UnknownVar(_) => false,
            Ir::Attr { base, .. } => self.is_expensive(*base),
            Ir::MinMax { args, .. } => args.iter().any(|a| self.is_expensive(*a)),
            Ir::Unary(_, i) | Ir::Cached { expr: i, .. } => self.is_expensive(*i),
            Ir::Binary(_, l, r) => self.is_expensive(*l) || self.is_expensive(*r),
        }
    }
}

/// What is left of a predicate after (possible) filter extraction.
enum Residual<'e> {
    /// The untouched original predicate.
    Whole(&'e Expr),
    /// The remaining conjuncts (possibly empty) after the first was
    /// absorbed into an indexed filter.
    Conjuncts(Vec<&'e Expr>),
}

/// Flatten an `AND` chain into its conjuncts in evaluation order.
fn conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let ExprKind::Binary(BinOp::And, l, r) = &e.kind {
        conjuncts(l, out);
        conjuncts(r, out);
    } else {
        out.push(e);
    }
}

/// Match `binder.Attr == key` (either side), where `key` is a binder-free
/// simple expression. Returns `(attr name, key expr)`.
fn match_eq_filter<'e>(e: &'e Expr, binder: &str) -> Option<(&'e str, &'e Expr)> {
    let ExprKind::Binary(BinOp::Eq, l, r) = &e.kind else {
        return None;
    };
    let attr_of = |x: &'e Expr| -> Option<&'e str> {
        if let ExprKind::Attr(base, attr) = &x.kind {
            if matches!(&base.kind, ExprKind::Var(n) if n == binder) {
                return Some(&attr.name);
            }
        }
        None
    };
    if let Some(a) = attr_of(l) {
        if simple_key(r, binder) {
            return Some((a, r));
        }
    }
    if let Some(a) = attr_of(r) {
        if simple_key(l, binder) {
            return Some((a, l));
        }
    }
    None
}

/// A key expression that is cheap, binder-free and infallible: a variable
/// other than the binder, or a literal.
fn simple_key(e: &Expr, binder: &str) -> bool {
    match &e.kind {
        ExprKind::Var(n) => n != binder,
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::StrLit(_) => true,
        _ => false,
    }
}

/// The compiler's comprehension-shape recognizers, exposed for static
/// analysis (kojak-lint) so lints and codegen can never disagree about
/// which `binder IN obj.Set WITH pred` shapes lower to an indexed
/// `FilterEq` load.
pub mod shape {
    use super::{conjuncts, match_eq_filter, simple_key};
    use asl_core::ast::{Expr, ExprKind};

    /// The decomposition of a set-construct predicate the compiler would
    /// extract into an indexed filter.
    #[derive(Debug)]
    pub struct IndexedFilter<'e> {
        /// The object expression whose set attribute is filtered.
        pub base: &'e Expr,
        /// The set attribute being iterated (`obj.<set_attr>`).
        pub set_attr: &'e str,
        /// The element attribute the extracted conjunct compares.
        pub elem_attr: &'e str,
        /// The binder-free key expression compared against.
        pub key: &'e Expr,
        /// The conjuncts left over after extraction, in evaluation order
        /// (still evaluated per element — a residual scan if non-empty).
        pub residual: Vec<&'e Expr>,
    }

    /// Would the compiler lower `binder IN source [WITH pred]` to an
    /// indexed `FilterEq` load? Returns the extracted parts
    /// if so. Mirrors `Compiler::lower_source` exactly: the source must
    /// be an attribute access, the **first** conjunct must be
    /// `binder.Attr == key` (either side), and the key must be a simple
    /// binder-free expression. On a checked spec, "simple" also implies
    /// infallible (every name the checker admits resolves).
    pub fn indexed_filter<'e>(
        binder: &str,
        source: &'e Expr,
        pred: Option<&'e Expr>,
    ) -> Option<IndexedFilter<'e>> {
        let (ExprKind::Attr(base, set_attr), Some(p)) = (&source.kind, pred) else {
            return None;
        };
        let mut cj = Vec::new();
        conjuncts(p, &mut cj);
        let (elem_attr, key) = match_eq_filter(cj[0], binder)?;
        Some(IndexedFilter {
            base,
            set_attr: &set_attr.name,
            elem_attr,
            key,
            residual: cj[1..].to_vec(),
        })
    }

    /// Flatten an `AND` chain into its conjuncts in evaluation order.
    pub fn and_conjuncts(e: &Expr) -> Vec<&Expr> {
        let mut out = Vec::new();
        conjuncts(e, &mut out);
        out
    }

    /// Is `e` an equality conjunct of the form `binder.Attr == key` with a
    /// simple binder-free key — i.e. *indexable in principle* even if its
    /// position keeps the compiler from extracting it? Returns
    /// `(attr name, key expr)`.
    pub fn eq_filter_conjunct<'e>(e: &'e Expr, binder: &str) -> Option<(&'e str, &'e Expr)> {
        match_eq_filter(e, binder)
    }

    /// Is `e` a cheap, binder-free, infallible key expression?
    pub fn is_simple_key(e: &Expr, binder: &str) -> bool {
        simple_key(e, binder)
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Hashable projection of a helper-function argument for the function
/// result memo. Arguments with no cheap exact projection (floats — NaN
/// breaks `Eq` — strings, sets) disable memoization for that call.
#[derive(PartialEq, Eq, Hash)]
enum FnMemoArg {
    Int(i64),
    Bool(bool),
    DateTime(i64),
    Enum(Symbol, Symbol),
    Obj(Symbol, u32),
}

/// Memo key: function id plus the projected argument tuple.
type FnMemoKey = (u32, Vec<FnMemoArg>);

fn fn_memo_key(fid: usize, args: &[Value]) -> Option<FnMemoKey> {
    let mut key = Vec::with_capacity(args.len());
    for a in args {
        key.push(match a {
            Value::Int(v) => FnMemoArg::Int(*v),
            Value::Bool(b) => FnMemoArg::Bool(*b),
            Value::DateTime(v) => FnMemoArg::DateTime(*v),
            Value::Enum(owner, variant) => FnMemoArg::Enum(*owner, *variant),
            Value::Obj(o) => FnMemoArg::Obj(o.class, o.index),
            Value::Float(_) | Value::Str(_) | Value::Set(_) | Value::Null => return None,
        });
    }
    Some((fid as u32, key))
}

/// Executes a [`CompiledSpec`] against an [`ObjectModel`]. Global constants
/// are evaluated eagerly at construction (in declaration order, mirroring
/// [`crate::Interpreter::new`]).
///
/// The evaluator is `Sync` whenever the data source is: the analyzers share
/// one evaluator across rayon workers for parallel per-context evaluation.
pub struct CompiledEvaluator<M: ObjectModel> {
    spec: Arc<CompiledSpec>,
    data: M,
    consts: Vec<Value>,
    fn_memo: Option<Mutex<HashMap<FnMemoKey, Value>>>,
}

impl<M: ObjectModel> CompiledEvaluator<M> {
    /// Bind a compiled spec to a data source and evaluate its constants.
    pub fn new(spec: Arc<CompiledSpec>, data: M) -> EvalResult<Self> {
        let mut consts: Vec<Value> = Vec::with_capacity(spec.consts.len());
        for i in 0..spec.consts.len() {
            let v = {
                let ctx = Ctx {
                    cs: &spec,
                    data: &data,
                    consts: &consts,
                    fn_memo: None,
                };
                let mut frame = vec![Value::Null; spec.consts[i].n_slots];
                let mut caches = vec![None; spec.consts[i].n_caches];
                ctx.exec(spec.consts[i].body, &mut frame, &mut caches, 0)?
            };
            consts.push(v);
        }
        Ok(CompiledEvaluator {
            spec,
            data,
            consts,
            fn_memo: None,
        })
    }

    /// Like [`CompiledEvaluator::new`], but memoizes helper-function
    /// results for the evaluator's lifetime.
    ///
    /// ASL helper functions are pure and the data source is immutable for
    /// the binding's lifetime, so a successfully computed `(function,
    /// scalar args)` call always yields the same value across the property
    /// instances of one analysis pass — e.g. every severity arm of the
    /// standard suite divides by the same `Duration(Basis, t)`. Only `Ok`
    /// results are memoized; calls with float/string/set arguments bypass
    /// the memo. One deliberate divergence from the unmemoized engines: a
    /// repeated call that would only fail by exceeding the call-depth
    /// limit can instead hit the memo and return the value the shallower
    /// evaluation proved — the resource-limit error is masked, never a
    /// computed result.
    pub fn new_memoized(spec: Arc<CompiledSpec>, data: M) -> EvalResult<Self> {
        let mut out = Self::new(spec, data)?;
        out.fn_memo = Some(Mutex::new(HashMap::new()));
        Ok(out)
    }

    /// The compiled specification.
    pub fn compiled(&self) -> &Arc<CompiledSpec> {
        &self.spec
    }

    fn ctx(&self) -> Ctx<'_, M> {
        Ctx {
            cs: &self.spec,
            data: &self.data,
            consts: &self.consts,
            fn_memo: self.fn_memo.as_ref(),
        }
    }

    /// Evaluate a property in the context given by `args` (one value per
    /// declared parameter). Mirrors [`crate::Interpreter::eval_property`].
    pub fn eval_property(&self, name: &str, args: &[Value]) -> EvalResult<PropertyOutcome> {
        let &pid = self.spec.prop_ids.get(name).ok_or_else(|| {
            EvalError::new(EvalErrorKind::Unknown, format!("unknown property `{name}`"))
        })?;
        let p = &self.spec.properties[pid];
        if args.len() != p.n_params {
            return Err(EvalError::new(
                EvalErrorKind::Type,
                format!(
                    "property `{name}` expects {} arguments, got {}",
                    p.n_params,
                    args.len()
                ),
            ));
        }
        let ctx = self.ctx();
        let mut frame: Vec<Value> = Vec::with_capacity(p.n_slots);
        frame.extend(args.iter().cloned());
        frame.resize(p.n_slots, Value::Null);
        let mut caches: Vec<Option<Value>> = vec![None; p.n_caches];

        for &(slot, value) in &p.lets {
            let v = ctx.exec(value, &mut frame, &mut caches, 0)?;
            frame[slot as usize] = v;
        }

        let mut fired = Vec::with_capacity(p.conditions.len());
        let mut holds = false;
        for (id, pred) in &p.conditions {
            let v = ctx.exec(*pred, &mut frame, &mut caches, 0)?;
            let b = v.as_bool().ok_or_else(|| {
                EvalError::new(
                    EvalErrorKind::Type,
                    format!("condition evaluated to {}, expected bool", v.type_name()),
                )
            })?;
            holds |= b;
            fired.push((id.clone(), b));
        }
        if !holds {
            return Ok(PropertyOutcome {
                property: name.to_string(),
                holds: false,
                fired,
                confidence: 0.0,
                severity: 0.0,
            });
        }

        let mut eval_arms = |arms: &[CompiledArm]| -> EvalResult<f64> {
            let mut best: Option<f64> = None;
            for arm in arms {
                let applicable = match arm.guard {
                    None => true,
                    Some(i) => fired[i].1,
                };
                if !applicable {
                    continue;
                }
                let v = ctx.exec(arm.expr, &mut frame, &mut caches, 0)?;
                let x = v.as_f64().ok_or_else(|| {
                    EvalError::new(
                        EvalErrorKind::Type,
                        format!("arm evaluated to {}, expected number", v.type_name()),
                    )
                })?;
                best = Some(match best {
                    None => x,
                    Some(b) => b.max(x),
                });
            }
            Ok(best.unwrap_or(0.0))
        };

        let confidence = eval_arms(&p.confidence)?.clamp(0.0, 1.0);
        let severity = eval_arms(&p.severity)?;
        Ok(PropertyOutcome {
            property: name.to_string(),
            holds: true,
            fired,
            confidence,
            severity,
        })
    }

    /// Call a compiled helper function by name.
    pub fn call_function(&self, name: &str, args: &[Value]) -> EvalResult<Value> {
        let &fid = self.spec.fn_ids.get(name).ok_or_else(|| {
            EvalError::new(EvalErrorKind::Unknown, format!("unknown function `{name}`"))
        })?;
        self.ctx().call_fn(fid, args.to_vec(), 0)
    }
}

/// Borrowed execution context (spec + data + evaluated constants); also
/// used during constant initialization when the evaluator is half-built.
struct Ctx<'c, M: ObjectModel> {
    cs: &'c CompiledSpec,
    data: &'c M,
    consts: &'c [Value],
    fn_memo: Option<&'c Mutex<HashMap<FnMemoKey, Value>>>,
}

impl<M: ObjectModel> Ctx<'_, M> {
    fn call_fn(&self, fid: usize, args: Vec<Value>, depth: usize) -> EvalResult<Value> {
        let f = &self.cs.functions[fid];
        if args.len() != f.n_params {
            return Err(EvalError::new(
                EvalErrorKind::Type,
                format!(
                    "function `{}` expects {} arguments, got {}",
                    f.name,
                    f.n_params,
                    args.len()
                ),
            ));
        }
        if depth >= MAX_CALL_DEPTH {
            return Err(EvalError::new(
                EvalErrorKind::Recursion,
                format!("call depth limit exceeded in `{}`", f.name),
            ));
        }
        let key = self.fn_memo.and_then(|_| fn_memo_key(fid, &args));
        if let (Some(memo), Some(key)) = (self.fn_memo, &key) {
            let guard = memo.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = guard.get(key) {
                FN_MEMO_HITS.inc();
                return Ok(v.clone());
            }
            FN_MEMO_MISSES.inc();
        }
        let mut frame = args;
        frame.resize(f.n_slots, Value::Null);
        let mut caches = vec![None; f.n_caches];
        let out = self.exec(f.body, &mut frame, &mut caches, depth + 1)?;
        if let (Some(memo), Some(key)) = (self.fn_memo, key) {
            memo.lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(key, out.clone());
        }
        Ok(out)
    }

    fn exec(
        &self,
        node: NodeRef,
        frame: &mut Vec<Value>,
        caches: &mut [Option<Value>],
        depth: usize,
    ) -> EvalResult<Value> {
        // Tag bubbling errors with the deepest node span that saw them
        // (mirrors the interpreter's `eval` wrapper; success path pays
        // only a no-op `map_err`).
        self.exec_inner(node, frame, caches, depth)
            .map_err(|e| e.or_span(self.cs.spans[node as usize]))
    }

    fn exec_inner(
        &self,
        node: NodeRef,
        frame: &mut Vec<Value>,
        caches: &mut [Option<Value>],
        depth: usize,
    ) -> EvalResult<Value> {
        match &self.cs.nodes[node as usize] {
            Ir::Int(v) => Ok(Value::Int(*v)),
            Ir::Float(v) => Ok(Value::Float(*v)),
            Ir::Bool(b) => Ok(Value::Bool(*b)),
            Ir::Str(i) => Ok(Value::Str(self.cs.strings[*i as usize].clone())),
            Ir::Load(slot) => Ok(frame[*slot as usize].clone()),
            Ir::Const(i) => match self.consts.get(*i as usize) {
                Some(v) => Ok(v.clone()),
                // Only reachable while constants are still initializing
                // (a forward reference) — the interpreter fails the same
                // way from `Interpreter::new`.
                None => Err(EvalError::new(
                    EvalErrorKind::Unknown,
                    format!("unknown variable `{}`", self.cs.consts[*i as usize].name),
                )),
            },
            Ir::EnumVal(owner, variant) => Ok(Value::Enum(*owner, *variant)),
            Ir::UnknownVar(n) => Err(EvalError::new(
                EvalErrorKind::Unknown,
                format!("unknown variable `{}`", self.cs.strings[*n as usize]),
            )),
            Ir::Attr { base, attr } => {
                let b = self.exec(*base, frame, caches, depth)?;
                ops::attr_on(self.data, &b, attr)
            }
            Ir::Call { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args.iter() {
                    vals.push(self.exec(*a, frame, caches, depth)?);
                }
                self.call_fn(*func as usize, vals, depth)
            }
            Ir::CallUnknown { name, args } => {
                for a in args.iter() {
                    self.exec(*a, frame, caches, depth)?;
                }
                Err(EvalError::new(
                    EvalErrorKind::Unknown,
                    format!("unknown function `{}`", self.cs.strings[*name as usize]),
                ))
            }
            Ir::MinMax { is_max, args } => {
                let mut best: Option<Value> = None;
                for a in args.iter() {
                    let v = self.exec(*a, frame, caches, depth)?;
                    best = ops::fold_builtin_minmax(*is_max, best, v);
                }
                best.ok_or_else(|| {
                    EvalError::new(
                        EvalErrorKind::Type,
                        format!(
                            "{} requires at least one argument",
                            if *is_max { "MAX" } else { "MIN" }
                        ),
                    )
                })
            }
            Ir::Unary(op, inner) => {
                let v = self.exec(*inner, frame, caches, depth)?;
                ops::unary(*op, v)
            }
            Ir::Binary(op, lhs, rhs) => match op {
                BinOp::And => {
                    let l = self.exec(*lhs, frame, caches, depth)?;
                    if !l.as_bool().ok_or_else(|| ops::type_err("AND", &l))? {
                        return Ok(Value::Bool(false));
                    }
                    let r = self.exec(*rhs, frame, caches, depth)?;
                    Ok(Value::Bool(
                        r.as_bool().ok_or_else(|| ops::type_err("AND", &r))?,
                    ))
                }
                BinOp::Or => {
                    let l = self.exec(*lhs, frame, caches, depth)?;
                    if l.as_bool().ok_or_else(|| ops::type_err("OR", &l))? {
                        return Ok(Value::Bool(true));
                    }
                    let r = self.exec(*rhs, frame, caches, depth)?;
                    Ok(Value::Bool(
                        r.as_bool().ok_or_else(|| ops::type_err("OR", &r))?,
                    ))
                }
                _ => {
                    let l = self.exec(*lhs, frame, caches, depth)?;
                    let r = self.exec(*rhs, frame, caches, depth)?;
                    ops::binary_strict(*op, l, r)
                }
            },
            Ir::SetComp {
                slot,
                source,
                pred,
                resets,
            } => {
                caches[resets.0 as usize..resets.1 as usize].fill(None);
                let src = self.exec(*source, frame, caches, depth)?;
                let Value::Set(items) = src else {
                    return Err(EvalError::new(
                        EvalErrorKind::Type,
                        format!("comprehension source is {}", src.type_name()),
                    ));
                };
                let mut out = Vec::new();
                for item in items {
                    frame[*slot as usize] = item.clone();
                    let keep = self.exec(*pred, frame, caches, depth)?;
                    match keep.as_bool() {
                        Some(true) => out.push(item),
                        Some(false) => {}
                        None => {
                            return Err(EvalError::new(
                                EvalErrorKind::Type,
                                "comprehension predicate is not boolean",
                            ));
                        }
                    }
                }
                Ok(Value::Set(out))
            }
            Ir::Unique(inner) => {
                let v = self.exec(*inner, frame, caches, depth)?;
                let Value::Set(mut items) = v else {
                    return Err(EvalError::new(
                        EvalErrorKind::Type,
                        format!("UNIQUE applied to {}", v.type_name()),
                    ));
                };
                match items.len() {
                    1 => Ok(items.pop().expect("len checked")),
                    0 => Err(EvalError::new(
                        EvalErrorKind::EmptySet,
                        "UNIQUE of an empty set",
                    )),
                    n => Err(EvalError::new(
                        EvalErrorKind::Ambiguous,
                        format!("UNIQUE of a set with {n} elements"),
                    )),
                }
            }
            Ir::Aggregate {
                op,
                slot,
                source,
                value,
                pred,
                resets,
            } => {
                caches[resets.0 as usize..resets.1 as usize].fill(None);
                let src = self.exec(*source, frame, caches, depth)?;
                let Value::Set(items) = src else {
                    return Err(EvalError::new(
                        EvalErrorKind::Type,
                        format!("aggregate source is {}", src.type_name()),
                    ));
                };
                let mut vals = Vec::new();
                for item in items {
                    frame[*slot as usize] = item;
                    if let Some(p) = pred {
                        let keep = self.exec(*p, frame, caches, depth)?;
                        if !keep.as_bool().unwrap_or(false) {
                            continue;
                        }
                    }
                    vals.push(self.exec(*value, frame, caches, depth)?);
                }
                ops::combine_aggregate(*op, vals)
            }
            Ir::Quantifier {
                forall,
                slot,
                source,
                pred,
                resets,
            } => {
                caches[resets.0 as usize..resets.1 as usize].fill(None);
                let src = self.exec(*source, frame, caches, depth)?;
                let Value::Set(items) = src else {
                    return Err(EvalError::new(
                        EvalErrorKind::Type,
                        format!("quantifier source is {}", src.type_name()),
                    ));
                };
                let mut result = *forall;
                for item in items {
                    frame[*slot as usize] = item;
                    let b = match pred {
                        Some(p) => self
                            .exec(*p, frame, caches, depth)?
                            .as_bool()
                            .unwrap_or(false),
                        None => true,
                    };
                    if *forall {
                        if !b {
                            result = false;
                            break;
                        }
                    } else if b {
                        result = true;
                        break;
                    }
                }
                Ok(Value::Bool(result))
            }
            Ir::CountSet(inner) => {
                let v = self.exec(*inner, frame, caches, depth)?;
                let items = v.as_set().ok_or_else(|| {
                    EvalError::new(
                        EvalErrorKind::Type,
                        format!("COUNT applied to {}", v.type_name()),
                    )
                })?;
                Ok(Value::Int(items.len() as i64))
            }
            Ir::Cached { cache, expr } => {
                if let Some(v) = &caches[*cache as usize] {
                    CACHE_HITS.inc();
                    return Ok(v.clone());
                }
                CACHE_MISSES.inc();
                let v = self.exec(*expr, frame, caches, depth)?;
                caches[*cache as usize] = Some(v.clone());
                Ok(v)
            }
            Ir::FilterEq {
                obj,
                set_attr,
                elem_attr,
                key,
                ctx,
            } => {
                let base = self.exec(*obj, frame, caches, depth)?;
                let obj_ref = match &base {
                    Value::Obj(o) => o,
                    // Reproduce the attribute-access errors the generic
                    // lowering would have raised on `base.set_attr`.
                    _ => return ops::attr_on(self.data, &base, set_attr),
                };
                // Key evaluation is infallible by construction (see
                // `Compiler::is_infallible`), so hoisting it before the
                // set access cannot reorder observable errors.
                let key_v = self.exec(*key, frame, caches, depth)?;
                if let Some(indexed) = self.data.filter_eq(obj_ref, set_attr, elem_attr, &key_v) {
                    return indexed.map(Value::Set);
                }
                // Generic fallback: scan the set, comparing element
                // attributes exactly as the unextracted predicate would.
                let set = self.data.attr(obj_ref, set_attr)?;
                let Value::Set(items) = set else {
                    return Err(EvalError::new(
                        EvalErrorKind::Type,
                        format!("{} source is {}", ctx.word(), set.type_name()),
                    ));
                };
                let mut out = Vec::new();
                for item in items {
                    let attr_v = ops::attr_on(self.data, &item, elem_attr)?;
                    if attr_v.asl_eq(&key_v) {
                        out.push(item);
                    }
                }
                Ok(Value::Set(out))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EvalErrorKind;
    use crate::interp::Interpreter;
    use crate::value::ObjRef;
    use asl_core::parse_and_check;

    /// The interpreter's unit-test object model, reused verbatim.
    struct Points;

    impl ObjectModel for Points {
        fn attr(&self, obj: &ObjRef, attr: &str) -> EvalResult<Value> {
            match (obj.class.as_str(), obj.index, attr) {
                ("Cloud", 0, "Points") => Ok(Value::Set(vec![
                    Value::obj("Point", 0),
                    Value::obj("Point", 1),
                    Value::obj("Point", 2),
                ])),
                ("Point", i, "X") => Ok(Value::Float([1.0, 2.0, 3.0][i as usize])),
                ("Point", i, "Y") => Ok(Value::Int([10, 20, 30][i as usize])),
                _ => Err(EvalError::new(
                    EvalErrorKind::Unknown,
                    format!("no attribute {attr} on {obj}"),
                )),
            }
        }
    }

    const MODEL: &str = r#"
        class Cloud { setof Point Points; }
        class Point { float X; int Y; }
    "#;

    fn both(extra: &str, call: &str, args: &[Value]) -> (EvalResult<Value>, EvalResult<Value>) {
        let src = format!("{MODEL}\n{extra}");
        let spec = parse_and_check(&src).unwrap_or_else(|d| panic!("{}", d.render(&src)));
        let interp = Interpreter::new(&spec, &Points).unwrap();
        let compiled = CompiledEvaluator::new(Arc::new(compile(&spec)), &Points).unwrap();
        (
            interp.call_function(call, args),
            compiled.call_function(call, args),
        )
    }

    fn assert_same(extra: &str) {
        let (i, c) = both(extra, "F", &[Value::obj("Cloud", 0)]);
        match (&i, &c) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{extra}"),
            (Err(a), Err(b)) => {
                assert_eq!(a.kind, b.kind, "{extra}");
                assert_eq!(a.message, b.message, "{extra}");
            }
            _ => panic!("divergence on {extra}: interp={i:?} compiled={c:?}"),
        }
    }

    #[test]
    fn aggregates_match_interpreter() {
        assert_same("float F(Cloud c) = SUM(p.X WHERE p IN c.Points);");
        assert_same("float F(Cloud c) = SUM(p.X WHERE p IN c.Points AND p.Y > 10);");
        assert_same("float F(Cloud c) = AVG(p.X WHERE p IN c.Points);");
        assert_same("int F(Cloud c) = MIN(p.Y WHERE p IN c.Points);");
        assert_same("float F(Cloud c) = MAX(p.X WHERE p IN c.Points AND p.Y > 99);");
    }

    #[test]
    fn comprehension_unique_and_errors_match() {
        assert_same("Point F(Cloud c) = UNIQUE({p IN c.Points WITH p.X == 2.0});");
        assert_same("Point F(Cloud c) = UNIQUE({p IN c.Points WITH p.X > 0.0});");
        assert_same("Point F(Cloud c) = UNIQUE({p IN c.Points WITH p.X > 9.0});");
        assert_same("float F(Cloud c) = 1.0 / (COUNT(c.Points) - 3);");
    }

    #[test]
    fn quantifiers_and_count_match() {
        assert_same("bool F(Cloud c) = EXISTS(p IN c.Points WITH p.X == 3.0);");
        assert_same("bool F(Cloud c) = FORALL(p IN c.Points WITH p.X > 1.5);");
        assert_same("int F(Cloud c) = COUNT({p IN c.Points WITH p.Y >= 20});");
    }

    #[test]
    fn indexed_filter_shape_matches_generic_scan() {
        // `p.Y == <key>` extracts into FilterEq; Points has no index so the
        // generic fallback runs — results must equal the interpreter scan.
        assert_same("float F(Cloud c) = SUM(p.X WHERE p IN c.Points AND p.Y == 20);");
        assert_same("int F(Cloud c) = COUNT({p IN c.Points WITH p.Y == 99});");
        assert_same("Point F(Cloud c) = UNIQUE({p IN c.Points WITH p.Y == 30});");
    }

    #[test]
    fn forall_never_uses_the_filter() {
        // All elements with Y == 10 have X == 1.0, but FORALL quantifies
        // over the whole set — a filtered FORALL would wrongly hold.
        assert_same("bool F(Cloud c) = FORALL(p IN c.Points WITH p.Y == 10 AND p.X == 1.0);");
    }

    #[test]
    fn constants_and_functions_match() {
        let src = format!(
            "{MODEL}\nfloat T = 0.25;\nfloat G(Point p) = p.X * T;\n\
             float F(Cloud c) = SUM(G(p) WHERE p IN c.Points);"
        );
        let spec = parse_and_check(&src).unwrap();
        let interp = Interpreter::new(&spec, &Points).unwrap();
        let compiled = CompiledEvaluator::new(Arc::new(compile(&spec)), &Points).unwrap();
        let args = [Value::obj("Cloud", 0)];
        assert_eq!(
            interp.call_function("F", &args).unwrap(),
            compiled.call_function("F", &args).unwrap()
        );
    }

    #[test]
    fn recursion_limit_matches() {
        let src = format!("{MODEL}\nfloat F(Cloud c) = F(c);");
        let spec = parse_and_check(&src).unwrap();
        let interp = Interpreter::new(&spec, &Points).unwrap();
        let compiled = CompiledEvaluator::new(Arc::new(compile(&spec)), &Points).unwrap();
        let args = [Value::obj("Cloud", 0)];
        let a = interp.call_function("F", &args).unwrap_err();
        let b = compiled.call_function("F", &args).unwrap_err();
        assert_eq!(a.kind, EvalErrorKind::Recursion);
        assert_eq!(a.kind, b.kind);
    }

    #[test]
    fn property_outcomes_match() {
        let src = format!(
            "{MODEL}\n\
            PROPERTY HotCloud(Cloud c) {{\n\
                CONDITION: (big) COUNT(c.Points) > 2 OR (small) COUNT(c.Points) > 0;\n\
                CONFIDENCE: MAX((big) -> 1, (small) -> 0.4);\n\
                SEVERITY: MAX((big) -> SUM(p.X WHERE p IN c.Points), (small) -> 0.1);\n\
            }}"
        );
        let spec = parse_and_check(&src).unwrap();
        let interp = Interpreter::new(&spec, &Points).unwrap();
        let compiled = CompiledEvaluator::new(Arc::new(compile(&spec)), &Points).unwrap();
        let args = [Value::obj("Cloud", 0)];
        assert_eq!(
            interp.eval_property("HotCloud", &args).unwrap(),
            compiled.eval_property("HotCloud", &args).unwrap()
        );
        // Arity errors too.
        assert_eq!(
            interp.eval_property("HotCloud", &[]).unwrap_err().kind,
            compiled.eval_property("HotCloud", &[]).unwrap_err().kind
        );
    }

    #[test]
    fn loop_invariant_aggregate_is_hoisted_and_correct() {
        // `MIN(q.Y WHERE q IN c.Points)` inside the pred is invariant wrt
        // `p` — hoisting turns the O(n²) scan into O(n) with the same
        // result as the interpreter's re-evaluating walk.
        assert_same(
            "float F(Cloud c) = SUM(p.X WHERE p IN c.Points \
             AND p.Y == MIN(q.Y WHERE q IN c.Points));",
        );
        // The same shape as the suite's SublinearSpeedup reference-run
        // lookup.
        assert_same(
            "Point F(Cloud c) = UNIQUE({p IN c.Points WITH p.Y == \
             MIN(q.Y WHERE q IN c.Points)});",
        );
    }

    #[test]
    fn binder_dependent_inner_loops_are_not_cached() {
        // The EXISTS depends on `p` through `q.Y == p.Y` — it must be
        // re-evaluated per element, not cached across them.
        assert_same(
            "float F(Cloud c) = SUM(p.X WHERE p IN c.Points \
             AND EXISTS(q IN c.Points WITH q.Y == p.Y + 10));",
        );
        // Inner-binder-only subtrees (here: the nested MAX over `q`) must
        // not be cached at the outer level either — `q` changes per outer
        // iteration of the middle construct.
        assert_same(
            "float F(Cloud c) = SUM(p.X WHERE p IN c.Points AND \
             EXISTS(q IN c.Points WITH q.X == MAX(w.X WHERE w IN c.Points \
             AND w.Y <= q.Y)));",
        );
    }

    #[test]
    fn sibling_scopes_reuse_slots() {
        let src = format!(
            "{MODEL}\nfloat F(Cloud c) = SUM(p.X WHERE p IN c.Points) \
             + SUM(q.Y WHERE q IN c.Points);"
        );
        let spec = parse_and_check(&src).unwrap();
        let cs = compile(&spec);
        // One parameter slot + one (shared) binder slot.
        assert_eq!(cs.functions[0].n_slots, 2);
        let compiled = CompiledEvaluator::new(Arc::new(cs), &Points).unwrap();
        let v = compiled
            .call_function("F", &[Value::obj("Cloud", 0)])
            .unwrap();
        assert_eq!(v.as_f64().unwrap(), 6.0 + 60.0);
    }
}
