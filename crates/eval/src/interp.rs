//! The expression and property interpreter.

use crate::error::{EvalError, EvalErrorKind, EvalResult};
use crate::value::{ObjRef, Value};
use asl_core::ast::*;
use asl_core::check::CheckedSpec;
use std::collections::HashMap;

/// Maximum user-function call depth.
const MAX_CALL_DEPTH: usize = 64;

/// A data source able to answer attribute lookups on objects of the ASL
/// data model.
pub trait ObjectModel {
    /// The value of `obj.attr`.
    fn attr(&self, obj: &ObjRef, attr: &str) -> EvalResult<Value>;

    /// Number of objects of a class, if the source can enumerate them.
    /// Object ids are then `0..extent`. Required by the generic relational
    /// loader in `asl-sql`; defaults to "cannot enumerate".
    fn extent(&self, _class: &str) -> Option<usize> {
        None
    }

    /// Indexed filter: the elements of `obj.set_attr` whose `elem_attr`
    /// equals `key`, **in set order**. Returning `Some` answers from a
    /// secondary index in O(matches) instead of a full scan; `None` (the
    /// default) makes the caller fall back to enumerating the set and
    /// comparing element-by-element. An implementation must return exactly
    /// what the scan would, including its errors — the compiled evaluator
    /// relies on this for interpreter equivalence.
    fn filter_eq(
        &self,
        _obj: &ObjRef,
        _set_attr: &str,
        _elem_attr: &str,
        _key: &Value,
    ) -> Option<EvalResult<Vec<Value>>> {
        None
    }
}

impl<T: ObjectModel + ?Sized> ObjectModel for &T {
    fn attr(&self, obj: &ObjRef, attr: &str) -> EvalResult<Value> {
        (**self).attr(obj, attr)
    }

    fn extent(&self, class: &str) -> Option<usize> {
        (**self).extent(class)
    }

    fn filter_eq(
        &self,
        obj: &ObjRef,
        set_attr: &str,
        elem_attr: &str,
        key: &Value,
    ) -> Option<EvalResult<Vec<Value>>> {
        (**self).filter_eq(obj, set_attr, elem_attr, key)
    }
}

/// The result of evaluating a property in one context.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyOutcome {
    /// Property name.
    pub property: String,
    /// Whether any condition held.
    pub holds: bool,
    /// Per-condition results `(condition id, value)`, in declaration order.
    pub fired: Vec<(Option<String>, bool)>,
    /// Confidence in `[0, 1]`; zero when the property does not hold.
    pub confidence: f64,
    /// Severity; zero when the property does not hold.
    pub severity: f64,
}

impl PropertyOutcome {
    fn not_holding(property: &str, fired: Vec<(Option<String>, bool)>) -> Self {
        PropertyOutcome {
            property: property.to_string(),
            holds: false,
            fired,
            confidence: 0.0,
            severity: 0.0,
        }
    }
}

/// Variable environment: a stack of frames.
#[derive(Debug, Default)]
struct Env {
    frames: Vec<HashMap<String, Value>>,
    depth: usize,
}

impl Env {
    fn new() -> Self {
        Env {
            frames: vec![HashMap::new()],
            depth: 0,
        }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn bind(&mut self, name: impl Into<String>, v: Value) {
        self.frames
            .last_mut()
            .expect("env has a frame")
            .insert(name.into(), v);
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }
}

/// The ASL interpreter: evaluates expressions, functions and properties of
/// a checked specification against an [`ObjectModel`].
///
/// `M` is owned; pass a reference (e.g. `&CosyData`) when the data source
/// should stay shared — `ObjectModel` is implemented for references.
pub struct Interpreter<'a, M: ObjectModel> {
    spec: &'a CheckedSpec,
    data: M,
    consts: HashMap<String, Value>,
}

impl<'a, M: ObjectModel> Interpreter<'a, M> {
    /// Create an interpreter; global constants are evaluated eagerly (in
    /// declaration order, earlier constants visible to later ones).
    pub fn new(spec: &'a CheckedSpec, data: M) -> EvalResult<Self> {
        let mut interp = Interpreter {
            spec,
            data,
            consts: HashMap::new(),
        };
        for c in &spec.spec.constants {
            let mut env = Env::new();
            let v = interp.eval(&c.value, &mut env)?;
            interp.consts.insert(c.name.name.clone(), v);
        }
        Ok(interp)
    }

    /// The checked specification this interpreter runs.
    pub fn spec(&self) -> &CheckedSpec {
        self.spec
    }

    /// Evaluate a standalone expression with the given variable bindings.
    pub fn eval_expr(&self, expr: &Expr, bindings: &[(&str, Value)]) -> EvalResult<Value> {
        let mut env = Env::new();
        for (n, v) in bindings {
            env.bind(*n, v.clone());
        }
        self.eval(expr, &mut env)
    }

    /// Call a user-defined helper function by name.
    pub fn call_function(&self, name: &str, args: &[Value]) -> EvalResult<Value> {
        let mut env = Env::new();
        self.call(name, args.to_vec(), &mut env)
    }

    /// Evaluate a property in the context given by `args` (one value per
    /// declared parameter).
    pub fn eval_property(&self, name: &str, args: &[Value]) -> EvalResult<PropertyOutcome> {
        let prop = self.spec.property(name).ok_or_else(|| {
            EvalError::new(EvalErrorKind::Unknown, format!("unknown property `{name}`"))
        })?;
        if args.len() != prop.params.len() {
            return Err(EvalError::new(
                EvalErrorKind::Type,
                format!(
                    "property `{name}` expects {} arguments, got {}",
                    prop.params.len(),
                    args.len()
                ),
            ));
        }
        let mut env = Env::new();
        for (p, v) in prop.params.iter().zip(args.iter()) {
            env.bind(p.name.name.clone(), v.clone());
        }
        for l in &prop.lets {
            let v = self.eval(&l.value, &mut env)?;
            env.bind(l.name.name.clone(), v);
        }

        let mut fired = Vec::with_capacity(prop.conditions.len());
        let mut holds = false;
        for c in &prop.conditions {
            let v = self.eval(&c.expr, &mut env)?;
            let b = v.as_bool().ok_or_else(|| {
                EvalError::new(
                    EvalErrorKind::Type,
                    format!("condition evaluated to {}, expected bool", v.type_name()),
                )
            })?;
            holds |= b;
            fired.push((c.id.as_ref().map(|i| i.name.clone()), b));
        }
        if !holds {
            return Ok(PropertyOutcome::not_holding(name, fired));
        }

        let applicable = |guard: &Option<Ident>| -> bool {
            match guard {
                None => true,
                Some(g) => fired
                    .iter()
                    .any(|(id, b)| *b && id.as_deref() == Some(g.name.as_str())),
            }
        };
        let eval_arms = |spec: &ArmSpec, env: &mut Env| -> EvalResult<f64> {
            let mut best: Option<f64> = None;
            for arm in &spec.arms {
                if !applicable(&arm.guard) {
                    continue;
                }
                let v = self.eval(&arm.expr, env)?;
                let x = v.as_f64().ok_or_else(|| {
                    EvalError::new(
                        EvalErrorKind::Type,
                        format!("arm evaluated to {}, expected number", v.type_name()),
                    )
                })?;
                best = Some(match best {
                    None => x,
                    Some(b) => b.max(x),
                });
            }
            Ok(best.unwrap_or(0.0))
        };

        let confidence = eval_arms(&prop.confidence, &mut env)?.clamp(0.0, 1.0);
        let severity = eval_arms(&prop.severity, &mut env)?;
        Ok(PropertyOutcome {
            property: name.to_string(),
            holds: true,
            fired,
            confidence,
            severity,
        })
    }

    // ---- core evaluation ---------------------------------------------------

    fn call(&self, name: &str, args: Vec<Value>, env: &mut Env) -> EvalResult<Value> {
        let func = self.spec.spec.function(name).ok_or_else(|| {
            EvalError::new(EvalErrorKind::Unknown, format!("unknown function `{name}`"))
        })?;
        if args.len() != func.params.len() {
            return Err(EvalError::new(
                EvalErrorKind::Type,
                format!(
                    "function `{name}` expects {} arguments, got {}",
                    func.params.len(),
                    args.len()
                ),
            ));
        }
        if env.depth >= MAX_CALL_DEPTH {
            return Err(EvalError::new(
                EvalErrorKind::Recursion,
                format!("call depth limit exceeded in `{name}`"),
            ));
        }
        // Functions see only their parameters (and globals), not the
        // caller's scope: evaluate in a fresh environment.
        let mut inner = Env::new();
        inner.depth = env.depth + 1;
        for (p, v) in func.params.iter().zip(args) {
            inner.bind(p.name.name.clone(), v);
        }
        self.eval(&func.body, &mut inner)
    }

    fn eval(&self, e: &Expr, env: &mut Env) -> EvalResult<Value> {
        // Tag bubbling errors with the deepest expression span that saw
        // them (`or_span` keeps the first, i.e. innermost, attachment).
        self.eval_inner(e, env).map_err(|err| err.or_span(e.span))
    }

    fn eval_inner(&self, e: &Expr, env: &mut Env) -> EvalResult<Value> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::FloatLit(v) => Ok(Value::Float(*v)),
            ExprKind::StrLit(s) => Ok(Value::Str(s.clone())),
            ExprKind::BoolLit(b) => Ok(Value::Bool(*b)),
            ExprKind::Var(name) => {
                if let Some(v) = env.lookup(name) {
                    Ok(v.clone())
                } else if let Some(v) = self.consts.get(name) {
                    Ok(v.clone())
                } else if let Some(owner) = self.spec.model.variant_owner.get(name) {
                    Ok(Value::Enum(
                        asl_core::Symbol::intern(owner),
                        asl_core::Symbol::intern(name),
                    ))
                } else {
                    Err(EvalError::new(
                        EvalErrorKind::Unknown,
                        format!("unknown variable `{name}`"),
                    ))
                }
            }
            ExprKind::Attr(base, attr) => {
                let b = self.eval(base, env)?;
                crate::ops::attr_on(&self.data, &b, &attr.name)
            }
            ExprKind::Call(name, args) => {
                if name.name == "MAX" || name.name == "MIN" {
                    let is_max = name.name == "MAX";
                    let mut best: Option<Value> = None;
                    for a in args {
                        let v = self.eval(a, env)?;
                        best = crate::ops::fold_builtin_minmax(is_max, best, v);
                    }
                    return best.ok_or_else(|| {
                        EvalError::new(
                            EvalErrorKind::Type,
                            format!("{} requires at least one argument", name.name),
                        )
                    });
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.call(&name.name, vals, env)
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner, env)?;
                crate::ops::unary(*op, v)
            }
            ExprKind::Binary(op, lhs, rhs) => self.eval_binary(*op, lhs, rhs, env),
            ExprKind::SetComp {
                binder,
                source,
                pred,
            } => {
                let src = self.eval(source, env)?;
                let items = src.as_set().ok_or_else(|| {
                    EvalError::new(
                        EvalErrorKind::Type,
                        format!("comprehension source is {}", src.type_name()),
                    )
                })?;
                let items = items.to_vec();
                let mut out = Vec::new();
                env.push();
                for item in items {
                    env.bind(binder.name.clone(), item.clone());
                    let keep = self.eval(pred, env)?;
                    match keep.as_bool() {
                        Some(true) => out.push(item),
                        Some(false) => {}
                        None => {
                            env.pop();
                            return Err(EvalError::new(
                                EvalErrorKind::Type,
                                "comprehension predicate is not boolean",
                            ));
                        }
                    }
                }
                env.pop();
                Ok(Value::Set(out))
            }
            ExprKind::Unique(inner) => {
                let v = self.eval(inner, env)?;
                let items = v.as_set().ok_or_else(|| {
                    EvalError::new(
                        EvalErrorKind::Type,
                        format!("UNIQUE applied to {}", v.type_name()),
                    )
                })?;
                match items.len() {
                    1 => Ok(items[0].clone()),
                    0 => Err(EvalError::new(
                        EvalErrorKind::EmptySet,
                        "UNIQUE of an empty set",
                    )),
                    n => Err(EvalError::new(
                        EvalErrorKind::Ambiguous,
                        format!("UNIQUE of a set with {n} elements"),
                    )),
                }
            }
            ExprKind::Aggregate {
                op,
                value,
                binder,
                source,
                pred,
            } => {
                let src = self.eval(source, env)?;
                let items = src.as_set().ok_or_else(|| {
                    EvalError::new(
                        EvalErrorKind::Type,
                        format!("aggregate source is {}", src.type_name()),
                    )
                })?;
                let items = items.to_vec();
                let mut vals = Vec::new();
                env.push();
                for item in items {
                    env.bind(binder.name.clone(), item);
                    if let Some(p) = pred {
                        let keep = self.eval(p, env)?;
                        if !keep.as_bool().unwrap_or(false) {
                            continue;
                        }
                    }
                    vals.push(self.eval(value, env)?);
                }
                env.pop();
                self.combine_aggregate(*op, vals)
            }
            ExprKind::Quantifier {
                q,
                binder,
                source,
                pred,
            } => {
                let src = self.eval(source, env)?;
                let items = src.as_set().ok_or_else(|| {
                    EvalError::new(
                        EvalErrorKind::Type,
                        format!("quantifier source is {}", src.type_name()),
                    )
                })?;
                let items = items.to_vec();
                env.push();
                let mut result = matches!(q, Quant::Forall);
                for item in items {
                    env.bind(binder.name.clone(), item);
                    let b = self.eval(pred, env)?.as_bool().unwrap_or(false);
                    match q {
                        Quant::Exists if b => {
                            result = true;
                            break;
                        }
                        Quant::Forall if !b => {
                            result = false;
                            break;
                        }
                        _ => {}
                    }
                }
                env.pop();
                Ok(Value::Bool(result))
            }
            ExprKind::CountSet(inner) => {
                let v = self.eval(inner, env)?;
                let items = v.as_set().ok_or_else(|| {
                    EvalError::new(
                        EvalErrorKind::Type,
                        format!("COUNT applied to {}", v.type_name()),
                    )
                })?;
                Ok(Value::Int(items.len() as i64))
            }
        }
    }

    fn combine_aggregate(&self, op: AggOp, vals: Vec<Value>) -> EvalResult<Value> {
        crate::ops::combine_aggregate(op, vals)
    }

    fn eval_binary(&self, op: BinOp, lhs: &Expr, rhs: &Expr, env: &mut Env) -> EvalResult<Value> {
        use crate::ops::type_err;
        // Short-circuit logic first.
        match op {
            BinOp::And => {
                let l = self.eval(lhs, env)?;
                if !l.as_bool().ok_or_else(|| type_err("AND", &l))? {
                    return Ok(Value::Bool(false));
                }
                let r = self.eval(rhs, env)?;
                Ok(Value::Bool(r.as_bool().ok_or_else(|| type_err("AND", &r))?))
            }
            BinOp::Or => {
                let l = self.eval(lhs, env)?;
                if l.as_bool().ok_or_else(|| type_err("OR", &l))? {
                    return Ok(Value::Bool(true));
                }
                let r = self.eval(rhs, env)?;
                Ok(Value::Bool(r.as_bool().ok_or_else(|| type_err("OR", &r))?))
            }
            _ => {
                let l = self.eval(lhs, env)?;
                let r = self.eval(rhs, env)?;
                crate::ops::binary_strict(op, l, r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_core::parse_and_check;

    /// A tiny hand-rolled object model: two "Point" objects with X/Y and a
    /// "Cloud" owning them.
    struct Points;

    impl ObjectModel for Points {
        fn attr(&self, obj: &ObjRef, attr: &str) -> EvalResult<Value> {
            match (obj.class.as_str(), obj.index, attr) {
                ("Cloud", 0, "Points") => Ok(Value::Set(vec![
                    Value::obj("Point", 0),
                    Value::obj("Point", 1),
                    Value::obj("Point", 2),
                ])),
                ("Point", i, "X") => Ok(Value::Float([1.0, 2.0, 3.0][i as usize])),
                ("Point", i, "Y") => Ok(Value::Int([10, 20, 30][i as usize])),
                _ => Err(EvalError::new(
                    EvalErrorKind::Unknown,
                    format!("no attribute {attr} on {obj}"),
                )),
            }
        }
    }

    const MODEL: &str = r#"
        class Cloud { setof Point Points; }
        class Point { float X; int Y; }
    "#;

    fn interp_src(extra: &str) -> (CheckedSpec,) {
        let src = format!("{MODEL}\n{extra}");
        (parse_and_check(&src).unwrap_or_else(|d| panic!("{}", d.render(&src))),)
    }

    fn eval_with_cloud(expr_fn: &str) -> EvalResult<Value> {
        let (spec,) = interp_src(expr_fn);
        let interp = Interpreter::new(&spec, &Points).unwrap();
        interp.call_function("F", &[Value::obj("Cloud", 0)])
    }

    #[test]
    fn sum_aggregate_over_objects() {
        let v = eval_with_cloud("float F(Cloud c) = SUM(p.X WHERE p IN c.Points);").unwrap();
        assert_eq!(v, Value::Float(6.0));
    }

    #[test]
    fn sum_with_predicate() {
        let v = eval_with_cloud("float F(Cloud c) = SUM(p.X WHERE p IN c.Points AND p.Y > 10);")
            .unwrap();
        assert_eq!(v, Value::Float(5.0));
    }

    #[test]
    fn empty_sum_is_zero() {
        let v = eval_with_cloud("float F(Cloud c) = SUM(p.X WHERE p IN c.Points AND p.Y > 99);")
            .unwrap();
        assert_eq!(v.as_f64().unwrap(), 0.0);
    }

    #[test]
    fn min_max_aggregates() {
        let v = eval_with_cloud("float F(Cloud c) = MAX(p.X WHERE p IN c.Points);").unwrap();
        assert_eq!(v, Value::Float(3.0));
        let v = eval_with_cloud("int F(Cloud c) = MIN(p.Y WHERE p IN c.Points);").unwrap();
        assert_eq!(v, Value::Int(10));
    }

    #[test]
    fn min_of_empty_set_is_empty_error() {
        let e = eval_with_cloud("float F(Cloud c) = MIN(p.X WHERE p IN c.Points AND p.Y > 99);")
            .unwrap_err();
        assert_eq!(e.kind, EvalErrorKind::EmptySet);
    }

    #[test]
    fn comprehension_and_unique() {
        let v =
            eval_with_cloud("Point F(Cloud c) = UNIQUE({p IN c.Points WITH p.X == 2.0});").unwrap();
        assert_eq!(v, Value::obj("Point", 1));
    }

    #[test]
    fn unique_ambiguous_error() {
        let e = eval_with_cloud("Point F(Cloud c) = UNIQUE({p IN c.Points WITH p.X > 0.0});")
            .unwrap_err();
        assert_eq!(e.kind, EvalErrorKind::Ambiguous);
    }

    #[test]
    fn unique_empty_error_is_not_applicable() {
        let e = eval_with_cloud("Point F(Cloud c) = UNIQUE({p IN c.Points WITH p.X > 9.0});")
            .unwrap_err();
        assert!(e.is_not_applicable());
    }

    #[test]
    fn count_and_quantifiers() {
        let v = eval_with_cloud("int F(Cloud c) = COUNT(c.Points);").unwrap();
        assert_eq!(v, Value::Int(3));
        let v =
            eval_with_cloud("bool F(Cloud c) = EXISTS(p IN c.Points WITH p.X == 3.0);").unwrap();
        assert_eq!(v, Value::Bool(true));
        let v = eval_with_cloud("bool F(Cloud c) = FORALL(p IN c.Points WITH p.X > 0.0);").unwrap();
        assert_eq!(v, Value::Bool(true));
        let v = eval_with_cloud("bool F(Cloud c) = FORALL(p IN c.Points WITH p.X > 1.5);").unwrap();
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = eval_with_cloud("float F(Cloud c) = 1.0 / (COUNT(c.Points) - 3);").unwrap_err();
        assert_eq!(e.kind, EvalErrorKind::DivByZero);
    }

    #[test]
    fn constants_are_evaluated_once() {
        let (spec,) = interp_src("float Threshold = 0.25;\nfloat F(Cloud c) = Threshold * 4.0;");
        let interp = Interpreter::new(&spec, &Points).unwrap();
        let v = interp
            .call_function("F", &[Value::obj("Cloud", 0)])
            .unwrap();
        assert_eq!(v, Value::Float(1.0));
    }

    #[test]
    fn nary_max_builtin() {
        let v = eval_with_cloud("float F(Cloud c) = MAX(1.0, 5.0, 3.0);").unwrap();
        assert_eq!(v, Value::Float(5.0));
    }

    #[test]
    fn property_with_guarded_arms() {
        let (spec,) = interp_src(
            r#"
            PROPERTY HotCloud(Cloud c) {
                CONDITION: (big) COUNT(c.Points) > 2 OR (small) COUNT(c.Points) > 0;
                CONFIDENCE: MAX((big) -> 1, (small) -> 0.4);
                SEVERITY: MAX((big) -> SUM(p.X WHERE p IN c.Points), (small) -> 0.1);
            }
            "#,
        );
        let interp = Interpreter::new(&spec, &Points).unwrap();
        let o = interp
            .eval_property("HotCloud", &[Value::obj("Cloud", 0)])
            .unwrap();
        assert!(o.holds);
        // Both conditions fire; MAX picks the larger values.
        assert_eq!(o.confidence, 1.0);
        assert_eq!(o.severity, 6.0);
        assert_eq!(o.fired.len(), 2);
        assert!(o.fired.iter().all(|(_, b)| *b));
    }

    #[test]
    fn property_not_holding_has_zero_severity() {
        let (spec,) = interp_src(
            r#"
            PROPERTY Never(Cloud c) {
                CONDITION: COUNT(c.Points) > 100;
                CONFIDENCE: 1;
                SEVERITY: 42;
            }
            "#,
        );
        let interp = Interpreter::new(&spec, &Points).unwrap();
        let o = interp
            .eval_property("Never", &[Value::obj("Cloud", 0)])
            .unwrap();
        assert!(!o.holds);
        assert_eq!(o.severity, 0.0);
        assert_eq!(o.confidence, 0.0);
    }

    #[test]
    fn guard_only_fires_on_true_condition() {
        let (spec,) = interp_src(
            r#"
            PROPERTY Guarded(Cloud c) {
                CONDITION: (yes) COUNT(c.Points) > 0 OR (no) COUNT(c.Points) > 100;
                CONFIDENCE: MAX((yes) -> 0.8, (no) -> 1);
                SEVERITY: MAX((yes) -> 1.5, (no) -> 99);
            }
            "#,
        );
        let interp = Interpreter::new(&spec, &Points).unwrap();
        let o = interp
            .eval_property("Guarded", &[Value::obj("Cloud", 0)])
            .unwrap();
        assert!(o.holds);
        assert_eq!(o.confidence, 0.8);
        assert_eq!(o.severity, 1.5);
    }

    #[test]
    fn confidence_clamped_to_unit_interval() {
        let (spec,) = interp_src(
            r#"
            PROPERTY Overconfident(Cloud c) {
                CONDITION: TRUE;
                CONFIDENCE: 7;
                SEVERITY: 1;
            }
            "#,
        );
        let interp = Interpreter::new(&spec, &Points).unwrap();
        let o = interp
            .eval_property("Overconfident", &[Value::obj("Cloud", 0)])
            .unwrap();
        assert_eq!(o.confidence, 1.0);
    }

    #[test]
    fn functions_do_not_see_caller_scope() {
        // `G` must not resolve `c` from `F`'s scope.
        let src = format!(
            "{MODEL}\nfloat G(Point p) = p.X;\nfloat F(Cloud c) = SUM(G(p) WHERE p IN c.Points);"
        );
        let spec = parse_and_check(&src).unwrap();
        let interp = Interpreter::new(&spec, &Points).unwrap();
        let v = interp
            .call_function("F", &[Value::obj("Cloud", 0)])
            .unwrap();
        assert_eq!(v, Value::Float(6.0));
    }

    #[test]
    fn wrong_arity_property_call() {
        let (spec,) =
            interp_src("PROPERTY P(Cloud c) { CONDITION: TRUE; CONFIDENCE: 1; SEVERITY: 1; }");
        let interp = Interpreter::new(&spec, &Points).unwrap();
        let e = interp.eval_property("P", &[]).unwrap_err();
        assert_eq!(e.kind, EvalErrorKind::Type);
    }
}
