//! Evaluation errors.

use std::fmt;

/// Why an evaluation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalErrorKind {
    /// `UNIQUE` applied to an empty set — usually means the property is
    /// not applicable in this context (e.g. no timing recorded for a run).
    EmptySet,
    /// `UNIQUE` applied to a set with more than one element.
    Ambiguous,
    /// Division by zero.
    DivByZero,
    /// Dynamic type mismatch (should be prevented by the checker).
    Type,
    /// Unknown name (should be prevented by the checker).
    Unknown,
    /// Call-depth limit exceeded.
    Recursion,
    /// Anything else.
    Other,
}

/// An evaluation error with context.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// Machine-readable kind.
    pub kind: EvalErrorKind,
    /// Human-readable message.
    pub message: String,
}

impl EvalError {
    /// Construct an error.
    pub fn new(kind: EvalErrorKind, message: impl Into<String>) -> Self {
        EvalError {
            kind,
            message: message.into(),
        }
    }

    /// True if this error means "property not applicable in this context"
    /// rather than "specification bug" (COSY skips such contexts).
    pub fn is_not_applicable(&self) -> bool {
        matches!(self.kind, EvalErrorKind::EmptySet)
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

impl std::error::Error for EvalError {}

/// Result alias.
pub type EvalResult<T> = Result<T, EvalError>;
