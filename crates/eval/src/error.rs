//! Evaluation errors.

use asl_core::Span;
use std::fmt;

/// Why an evaluation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalErrorKind {
    /// `UNIQUE` applied to an empty set — usually means the property is
    /// not applicable in this context (e.g. no timing recorded for a run).
    EmptySet,
    /// `UNIQUE` applied to a set with more than one element.
    Ambiguous,
    /// Division by zero.
    DivByZero,
    /// Dynamic type mismatch (should be prevented by the checker).
    Type,
    /// Unknown name (should be prevented by the checker).
    Unknown,
    /// Call-depth limit exceeded.
    Recursion,
    /// Anything else.
    Other,
}

/// An evaluation error with context.
#[derive(Debug, Clone)]
pub struct EvalError {
    /// Machine-readable kind.
    pub kind: EvalErrorKind,
    /// Human-readable message.
    pub message: String,
    /// Source span of the deepest expression that failed, when known.
    /// Diagnostic metadata only — excluded from equality (see below).
    pub span: Option<Span>,
}

/// Equality compares `(kind, message)` only. The span is diagnostic
/// metadata: the interpreter and the compiled engine may attribute the
/// same failure to slightly different (nested) expressions, and the
/// interpreter≡compiled equivalence suite must not care.
impl PartialEq for EvalError {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.message == other.message
    }
}

impl EvalError {
    /// Construct an error.
    pub fn new(kind: EvalErrorKind, message: impl Into<String>) -> Self {
        EvalError {
            kind,
            message: message.into(),
            span: None,
        }
    }

    /// Attach a source span, replacing any existing one.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach a source span only if none is present yet. Used while an
    /// error bubbles out of nested expressions so the *deepest* (most
    /// precise) span wins.
    pub fn or_span(mut self, span: Span) -> Self {
        if self.span.is_none() && span != Span::default() {
            self.span = Some(span);
        }
        self
    }

    /// True if this error means "property not applicable in this context"
    /// rather than "specification bug" (COSY skips such contexts).
    pub fn is_not_applicable(&self) -> bool {
        matches!(self.kind, EvalErrorKind::EmptySet)
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

impl std::error::Error for EvalError {}

/// Result alias.
pub type EvalResult<T> = Result<T, EvalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_span() {
        let a = EvalError::new(EvalErrorKind::DivByZero, "division by zero");
        let b = a.clone().with_span(Span::new(10, 14));
        assert_eq!(a, b);
    }

    #[test]
    fn or_span_keeps_deepest() {
        let e = EvalError::new(EvalErrorKind::Type, "bad")
            .or_span(Span::new(5, 9))
            .or_span(Span::new(0, 100));
        assert_eq!(e.span, Some(Span::new(5, 9)));
    }

    #[test]
    fn or_span_ignores_default_span() {
        let e = EvalError::new(EvalErrorKind::Type, "bad").or_span(Span::default());
        assert_eq!(e.span, None);
    }
}
