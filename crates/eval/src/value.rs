//! Runtime values of the ASL interpreter.

use asl_core::intern::Symbol;
use std::cmp::Ordering;
use std::fmt;

/// A reference to a data-model object: interned class name plus arena
/// index. `ObjRef` is 8 bytes and `Copy`-cheap to clone; comparing two
/// references is two integer compares (no string traffic on the hot path).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjRef {
    /// The object's class (as named in the ASL data model), interned.
    pub class: Symbol,
    /// Arena index within that class.
    pub index: u32,
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.class, self.index)
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// `DateTime` (microseconds since the epoch).
    DateTime(i64),
    /// Enum variant: (enum name, variant name), both interned — comparing
    /// enum tags is an integer compare.
    Enum(Symbol, Symbol),
    /// Object reference.
    Obj(ObjRef),
    /// A set of values (objects in practice).
    Set(Vec<Value>),
    /// Absent object reference (e.g. the parent of a root region). ASL has
    /// no null literal; `Null` only arises from the data and compares
    /// unequal to everything except itself.
    Null,
}

impl Value {
    /// Object helper. Accepts a pre-interned [`Symbol`] (free) or a string
    /// (interned on the spot).
    pub fn obj(class: impl Into<Symbol>, index: u32) -> Value {
        Value::Obj(ObjRef {
            class: class.into(),
            index,
        })
    }

    /// A `Region` reference from a perfdata id.
    pub fn region(id: perfdata::RegionId) -> Value {
        Value::obj(crate::cosy_model::syms().region, id.0)
    }

    /// A `TestRun` reference from a perfdata id.
    pub fn run(id: perfdata::TestRunId) -> Value {
        Value::obj(crate::cosy_model::syms().test_run, id.0)
    }

    /// A `FunctionCall` reference from a perfdata id.
    pub fn call(id: perfdata::CallId) -> Value {
        Value::obj(crate::cosy_model::syms().function_call, id.0)
    }

    /// Numeric view (int widens to float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Set view.
    pub fn as_set(&self) -> Option<&[Value]> {
        match self {
            Value::Set(v) => Some(v),
            _ => None,
        }
    }

    /// ASL equality (`==`): numerics compare by value, objects by identity,
    /// `Null` equals only `Null`.
    pub fn asl_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (a, b) => a == b,
        }
    }

    /// ASL ordering for `<`, `<=`, `>`, `>=`, MIN/MAX aggregates.
    pub fn asl_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::DateTime(a), Value::DateTime(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "String",
            Value::DateTime(_) => "DateTime",
            Value::Enum(..) => "enum",
            Value::Obj(_) => "object",
            Value::Set(_) => "set",
            Value::Null => "null",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::DateTime(t) => write!(f, "DateTime({t})"),
            Value::Enum(_, v) => write!(f, "{v}"),
            Value::Obj(o) => write!(f, "{o}"),
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asl_eq_mixed_numerics() {
        assert!(Value::Int(3).asl_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).asl_eq(&Value::Float(3.5)));
    }

    #[test]
    fn object_identity_equality() {
        assert!(Value::obj("Region", 1).asl_eq(&Value::obj("Region", 1)));
        assert!(!Value::obj("Region", 1).asl_eq(&Value::obj("Region", 2)));
        assert!(!Value::obj("Region", 1).asl_eq(&Value::obj("TestRun", 1)));
    }

    #[test]
    fn null_equals_only_null() {
        assert!(Value::Null.asl_eq(&Value::Null));
        assert!(!Value::Null.asl_eq(&Value::obj("Region", 0)));
        assert!(!Value::Null.asl_eq(&Value::Int(0)));
    }

    #[test]
    fn ordering_covers_datetimes() {
        assert_eq!(
            Value::DateTime(5).asl_cmp(&Value::DateTime(9)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::obj("A", 0).asl_cmp(&Value::obj("A", 1)), None);
    }
}
