//! Shared ASL operator semantics.
//!
//! Both evaluation engines — the tree-walking [`crate::Interpreter`]
//! (the reference oracle) and the compiled-IR executor in
//! [`crate::compile`] — delegate every value-level operation here, so the
//! two paths cannot drift apart: same numeric promotion rules, same
//! error kinds, same messages.

use crate::error::{EvalError, EvalErrorKind, EvalResult};
use crate::interp::ObjectModel;
use crate::value::Value;
use asl_core::ast::{AggOp, BinOp, UnOp};

/// "`op` applied to `<type>`" type error.
pub fn type_err(op: &str, v: &Value) -> EvalError {
    EvalError::new(
        EvalErrorKind::Type,
        format!("{op} applied to {}", v.type_name()),
    )
}

/// Coerce both operands to numbers or fail with the operator's message.
pub fn both_numbers(l: &Value, r: &Value, op: &str) -> EvalResult<(f64, f64)> {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(EvalError::new(
            EvalErrorKind::Type,
            format!(
                "operator `{op}` requires numbers, found {} and {}",
                l.type_name(),
                r.type_name()
            ),
        )),
    }
}

/// Unary operator semantics.
pub fn unary(op: UnOp, v: Value) -> EvalResult<Value> {
    match op {
        UnOp::Neg => match v {
            Value::Int(x) => Ok(Value::Int(-x)),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(EvalError::new(
                EvalErrorKind::Type,
                format!("cannot negate {}", other.type_name()),
            )),
        },
        UnOp::Not => match v {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(EvalError::new(
                EvalErrorKind::Type,
                format!("NOT applied to {}", other.type_name()),
            )),
        },
    }
}

/// Strict (non-short-circuit) binary operator semantics: comparisons,
/// arithmetic, `%`. `AND`/`OR` must be handled by the caller (they
/// short-circuit and must not evaluate both operands first).
pub fn binary_strict(op: BinOp, l: Value, r: Value) -> EvalResult<Value> {
    match op {
        BinOp::Eq => Ok(Value::Bool(l.asl_eq(&r))),
        BinOp::Ne => Ok(Value::Bool(!l.asl_eq(&r))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = l.asl_cmp(&r).ok_or_else(|| {
                EvalError::new(
                    EvalErrorKind::Type,
                    format!("cannot order {} and {}", l.type_name(), r.type_name()),
                )
            })?;
            let b = match op {
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::Le => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                _ => unreachable!(),
            })),
            _ => {
                let (a, b) = both_numbers(&l, &r, op.symbol())?;
                Ok(Value::Float(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    _ => unreachable!(),
                }))
            }
        },
        // `/` always yields float (see the checker's documented rule).
        BinOp::Div => {
            let (a, b) = both_numbers(&l, &r, "/")?;
            if b == 0.0 {
                return Err(EvalError::new(EvalErrorKind::DivByZero, "division by zero"));
            }
            Ok(Value::Float(a / b))
        }
        BinOp::Mod => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(EvalError::new(EvalErrorKind::DivByZero, "modulo by zero"))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => Err(EvalError::new(
                EvalErrorKind::Type,
                "`%` requires integer operands",
            )),
        },
        BinOp::And | BinOp::Or => unreachable!("logical operators short-circuit in the caller"),
    }
}

/// Fold one more argument into the n-ary `MAX(a, b, …)`/`MIN(a, b, …)`
/// builtin: incomparable values keep the current best (matching the
/// interpreter's historical behavior — the checker rules them out anyway).
pub fn fold_builtin_minmax(is_max: bool, best: Option<Value>, v: Value) -> Option<Value> {
    Some(match best {
        None => v,
        Some(b) => {
            let keep_new = match v.asl_cmp(&b) {
                Some(std::cmp::Ordering::Greater) => is_max,
                Some(std::cmp::Ordering::Less) => !is_max,
                _ => false,
            };
            if keep_new {
                v
            } else {
                b
            }
        }
    })
}

/// Combine the collected values of a quantified aggregate.
pub fn combine_aggregate(op: AggOp, vals: Vec<Value>) -> EvalResult<Value> {
    match op {
        AggOp::Count => Ok(Value::Int(vals.len() as i64)),
        AggOp::Sum => {
            // Empty sums are zero — `SUM(tt.Time WHERE …)` over a region
            // without matching typed timings must yield 0 so the
            // condition `> 0` is simply false (paper's SyncCost).
            if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                let mut acc = 0i64;
                for v in &vals {
                    if let Value::Int(x) = v {
                        acc = acc.wrapping_add(*x);
                    }
                }
                Ok(Value::Int(acc))
            } else {
                let mut acc = 0.0;
                for v in &vals {
                    acc += v.as_f64().ok_or_else(|| {
                        EvalError::new(
                            EvalErrorKind::Type,
                            format!("SUM over {} value", v.type_name()),
                        )
                    })?;
                }
                Ok(Value::Float(acc))
            }
        }
        AggOp::Avg => {
            if vals.is_empty() {
                return Err(EvalError::new(
                    EvalErrorKind::EmptySet,
                    "AVG of an empty set",
                ));
            }
            let mut acc = 0.0;
            for v in &vals {
                acc += v.as_f64().ok_or_else(|| {
                    EvalError::new(
                        EvalErrorKind::Type,
                        format!("AVG over {} value", v.type_name()),
                    )
                })?;
            }
            Ok(Value::Float(acc / vals.len() as f64))
        }
        AggOp::Min | AggOp::Max => {
            let mut best: Option<Value> = None;
            for v in vals {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = v.asl_cmp(&b).ok_or_else(|| {
                            EvalError::new(EvalErrorKind::Type, "MIN/MAX over incomparable values")
                        })?;
                        let keep_new = match ord {
                            std::cmp::Ordering::Greater => op == AggOp::Max,
                            std::cmp::Ordering::Less => op == AggOp::Min,
                            std::cmp::Ordering::Equal => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.ok_or_else(|| {
                EvalError::new(
                    EvalErrorKind::EmptySet,
                    format!("{} of an empty set", op.keyword()),
                )
            })
        }
    }
}

/// Attribute access on an arbitrary value: objects delegate to the data
/// source, everything else reproduces the interpreter's error messages.
pub fn attr_on<M: ObjectModel>(data: &M, v: &Value, attr: &str) -> EvalResult<Value> {
    match v {
        Value::Obj(obj) => data.attr(obj, attr),
        Value::Null => Err(EvalError::new(
            EvalErrorKind::Type,
            format!("attribute `{attr}` accessed on a null reference"),
        )),
        other => Err(EvalError::new(
            EvalErrorKind::Type,
            format!("attribute `{attr}` accessed on {} value", other.type_name()),
        )),
    }
}
