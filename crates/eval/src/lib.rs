//! # `asl-eval` — the ASL interpreter
//!
//! Direct evaluation of ASL performance properties over the performance
//! database — the "fetch the data components and evaluate the expressions
//! in the analysis tool" strategy of §5 of the paper (the alternative, full
//! translation to SQL, lives in `asl-sql`; both must agree, which is
//! enforced by cross-backend tests).
//!
//! The interpreter is generic over an [`ObjectModel`]: any data source that
//! can answer attribute lookups for the classes of a checked specification.
//! [`CosyData`] implements it for the [`perfdata::Store`], exposing exactly
//! the class and attribute names of the paper's §4.1 data model
//! ([`COSY_DATA_MODEL`]).
//!
//! ```
//! use asl_eval::{CosyData, Interpreter, Value, COSY_DATA_MODEL};
//! use asl_core::parse_and_check;
//!
//! let src = format!("{COSY_DATA_MODEL}\n
//!     PROPERTY MeasuredCost(Region r, TestRun t, Region Basis) {{
//!         LET float Cost = Summary(r,t).Ovhd;
//!         IN CONDITION: Cost > 0; CONFIDENCE: 1;
//!         SEVERITY: Cost / Duration(Basis,t);
//!     }}");
//! let spec = parse_and_check(&src).unwrap();
//!
//! let mut store = perfdata::Store::new();
//! let model = apprentice_sim::archetypes::particle_mc(1);
//! let machine = apprentice_sim::MachineModel::t3e_900();
//! let v = apprentice_sim::simulate_program(&mut store, &model, &machine, &[1, 8]);
//! let run = store.versions[v.index()].runs[1];
//! let main = store.main_region(v).unwrap();
//!
//! let data = CosyData::new(&store);
//! let interp = Interpreter::new(&spec, &data).unwrap();
//! let outcome = interp.eval_property("MeasuredCost", &[
//!     Value::region(main), Value::run(run), Value::region(main),
//! ]).unwrap();
//! assert!(outcome.holds);
//! assert!(outcome.severity > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cosy_model;
pub mod error;
pub mod interp;
pub mod value;

pub use cosy_model::{CosyData, COSY_DATA_MODEL};
pub use error::{EvalError, EvalErrorKind};
pub use interp::{Interpreter, ObjectModel, PropertyOutcome};
pub use value::{ObjRef, Value};
