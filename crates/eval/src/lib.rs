//! # `asl-eval` — ASL evaluation engines
//!
//! Client-side evaluation of ASL performance properties over the
//! performance database — the "fetch the data components and evaluate the
//! expressions in the analysis tool" strategy of §5 of the paper (the
//! alternative, full translation to SQL, lives in `asl-sql`; all engines
//! must agree, which is enforced by cross-backend tests).
//!
//! ## The lower → execute pipeline
//!
//! Evaluation is a three-stage pipeline:
//!
//! ```text
//! ASL source ──parse──▶ AST ──check──▶ CheckedSpec ──compile──▶ CompiledSpec (IR)
//!                                          │                        │
//!                                    Interpreter              CompiledEvaluator
//!                                 (reference oracle)            (production)
//! ```
//!
//! 1. `asl-core` parses and type-checks the specification into a
//!    [`asl_core::CheckedSpec`].
//! 2. [`compile`](crate::compile::compile) lowers every constant, helper
//!    function and property **once** into a flat, slot-indexed IR
//!    ([`CompiledSpec`]): identifiers become register slots / constant-pool
//!    indices / function ids, enum tags and class names become interned
//!    `u32` symbols, and `x IN obj.Set WITH x.Attr == key` filters become
//!    indexed loads the data source can answer in O(matches).
//! 3. [`CompiledEvaluator`] executes the IR against an [`ObjectModel`] —
//!    this is the engine the batch and online analyzers run.
//!
//! The tree-walking [`Interpreter`] implements the same semantics directly
//! on the AST and is kept as the **reference oracle**: equivalence tests
//! (`tests/compiled_equiv.rs`) and the cross-backend suites evaluate both
//! engines and require identical outcomes, severities and error kinds.
//! Both engines delegate all value-level operations to the shared
//! [`mod@ops`] module, so their semantics cannot drift.
//!
//! The interpreter and the compiled evaluator are generic over an
//! [`ObjectModel`]: any data source that can answer attribute lookups for
//! the classes of a checked specification. [`CosyData`] implements it for
//! the [`perfdata::Store`], exposing exactly the class and attribute names
//! of the paper's §4.1 data model ([`COSY_DATA_MODEL`]), and serves the
//! compiled engine's indexed loads from the store's secondary maps.
//!
//! ```
//! use asl_eval::{CosyData, Interpreter, Value, COSY_DATA_MODEL};
//! use asl_core::parse_and_check;
//!
//! let src = format!("{COSY_DATA_MODEL}\n
//!     PROPERTY MeasuredCost(Region r, TestRun t, Region Basis) {{
//!         LET float Cost = Summary(r,t).Ovhd;
//!         IN CONDITION: Cost > 0; CONFIDENCE: 1;
//!         SEVERITY: Cost / Duration(Basis,t);
//!     }}");
//! let spec = parse_and_check(&src).unwrap();
//!
//! let mut store = perfdata::Store::new();
//! let model = apprentice_sim::archetypes::particle_mc(1);
//! let machine = apprentice_sim::MachineModel::t3e_900();
//! let v = apprentice_sim::simulate_program(&mut store, &model, &machine, &[1, 8]);
//! let run = store.versions[v.index()].runs[1];
//! let main = store.main_region(v).unwrap();
//!
//! let data = CosyData::new(&store);
//! let interp = Interpreter::new(&spec, &data).unwrap();
//! let outcome = interp.eval_property("MeasuredCost", &[
//!     Value::region(main), Value::run(run), Value::region(main),
//! ]).unwrap();
//! assert!(outcome.holds);
//! assert!(outcome.severity > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compile;
pub mod cosy_model;
pub mod error;
pub mod interp;
pub mod ops;
pub mod value;

pub use compile::{
    cache_counters, compile, fn_memo_counters, CompiledArm, CompiledEvaluator, CompiledSpec,
    ConstIr, FnIr, Ir, NodeRef, PropCost, PropIr, SourceCtx,
};
pub use cosy_model::{filter_memo_counters, native_index, CosyData, COSY_DATA_MODEL};
pub use error::{EvalError, EvalErrorKind};
pub use interp::{Interpreter, ObjectModel, PropertyOutcome};
pub use value::{ObjRef, Value};
