//! Property-based tests of the simulator's physical invariants across
//! randomized workloads and machine configurations.

use apprentice_sim::program::SkewPattern;
use apprentice_sim::{simulate_region, CommProfile, MachineModel, Workload};
use perfdata::TimingType;
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        1u64..200,
        0.0f64..0.05,
        0.001f64..2.0,
        0.0f64..0.8,
        prop_oneof![
            Just(SkewPattern::Random),
            Just(SkewPattern::Linear),
            Just(SkewPattern::SingleHot)
        ],
        0.0f64..3.0, // barriers
        0.0f64..8.0, // ptp msgs
        0.0f64..4.0, // collectives
        0.0f64..2.0, // io ops
    )
        .prop_map(
            |(passes, serial, parallel, imb, skew, barriers, ptp, coll, io)| Workload {
                passes,
                serial_work: serial,
                parallel_work: parallel,
                imbalance: imb,
                skew,
                comm: CommProfile {
                    barriers,
                    ptp_msgs: ptp,
                    ptp_bytes: 4096.0,
                    collectives: coll,
                    collective_bytes: 1024.0,
                    collective_kind: None,
                    shmem_ops: 0.0,
                    shmem_bytes: 0.0,
                    io_ops: io,
                    io_bytes: 1e5,
                    io_read_fraction: 0.5,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn all_times_non_negative(w in workload_strategy(), pe in 1u32..64, seed in 0u64..1000) {
        let m = MachineModel::t3e_900();
        let sim = simulate_region(&w, &[], &m, pe, seed, 1, false);
        prop_assert!(sim.compute.iter().all(|c| *c >= 0.0));
        for (ty, v) in &sim.overheads {
            prop_assert!(v.iter().all(|x| *x >= 0.0), "negative time in {ty:?}");
        }
    }

    #[test]
    fn parallel_work_is_conserved(w in workload_strategy(), pe in 1u32..64, seed in 0u64..1000) {
        // With zero contention, the summed compute equals
        // passes * (serial*P + parallel), for any skew pattern.
        let mut m = MachineModel::ideal();
        m.contention_coeff = 0.0;
        let sim = simulate_region(&w, &[], &m, pe, seed, 2, false);
        let expected = w.passes as f64
            * (w.serial_work * pe as f64 + w.parallel_work);
        let total = sim.total_compute();
        prop_assert!(
            (total - expected).abs() <= 1e-9 * expected.max(1.0),
            "total {total} vs expected {expected}"
        );
    }

    #[test]
    fn barrier_wait_zero_for_slowest_pe(w in workload_strategy(), pe in 2u32..64, seed in 0u64..1000) {
        prop_assume!(w.comm.barriers > 0.0);
        let m = MachineModel::ideal();
        let sim = simulate_region(&w, &[], &m, pe, seed, 3, false);
        if let Some((_, barrier)) = sim
            .overheads
            .iter()
            .find(|(ty, _)| *ty == TimingType::Barrier)
        {
            let min = barrier.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(min.abs() < 1e-12, "slowest PE must wait ~0, got {min}");
        }
    }

    #[test]
    fn overheads_grow_with_pe_count(w in workload_strategy(), seed in 0u64..1000) {
        prop_assume!(w.comm.barriers > 0.0 && w.imbalance > 0.1);
        let m = MachineModel::t3e_900();
        let small = simulate_region(&w, &[], &m, 4, seed, 4, false);
        let large = simulate_region(&w, &[], &m, 64, seed, 4, false);
        // Summed compute is ~conserved, so overhead share cannot shrink a lot.
        prop_assert!(
            large.total_overhead() >= small.total_overhead() * 0.5,
            "{} vs {}",
            small.total_overhead(),
            large.total_overhead()
        );
    }

    #[test]
    fn simulation_is_pure(w in workload_strategy(), pe in 1u32..32, seed in 0u64..1000) {
        let m = MachineModel::t3e_900();
        let a = simulate_region(&w, &[], &m, pe, seed, 5, false);
        let b = simulate_region(&w, &[], &m, pe, seed, 5, false);
        prop_assert_eq!(a, b);
    }
}
