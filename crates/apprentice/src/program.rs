//! Synthetic program models: region trees with workload laws.
//!
//! A [`ProgramModel`] is the simulator's stand-in for an instrumented
//! application: functions containing nested regions (the paper's
//! "subprograms, loops, if-blocks, subroutine calls, and arbitrary basic
//! blocks"), where each region carries a [`Workload`] describing how much
//! serial and parallel computation it performs and which communication /
//! I/O operations it issues per pass.

use crate::noise;
use perfdata::{RegionKind, TimingType};
use serde::{Deserialize, Serialize};

/// Communication and I/O issued by a region, per pass and per PE.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommProfile {
    /// Barrier operations per pass.
    pub barriers: f64,
    /// Point-to-point messages per pass per PE (e.g. halo exchanges).
    pub ptp_msgs: f64,
    /// Bytes per point-to-point message.
    pub ptp_bytes: f64,
    /// Collective operations per pass.
    pub collectives: f64,
    /// Bytes per collective.
    pub collective_bytes: f64,
    /// Which collective the region uses (`Reduce`, `AllReduce`, `AllToAll`…).
    /// `None` defaults to `AllReduce`.
    pub collective_kind: Option<TimingType>,
    /// One-sided (SHMEM) operations per pass per PE.
    pub shmem_ops: f64,
    /// Bytes per one-sided operation.
    pub shmem_bytes: f64,
    /// I/O operations per pass per PE.
    pub io_ops: f64,
    /// I/O bytes per pass per PE.
    pub io_bytes: f64,
    /// Fraction of I/O that is reads (the rest is writes), in `[0, 1]`.
    pub io_read_fraction: f64,
}

impl CommProfile {
    /// A profile with no communication at all.
    pub fn none() -> Self {
        CommProfile::default()
    }

    /// True if the region performs any barrier operations (such regions get
    /// a call site to the `barrier` routine, which is what the paper's
    /// `LoadImbalance` property is evaluated on).
    pub fn has_barrier(&self) -> bool {
        self.barriers > 0.0
    }
}

/// The workload law of one region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Times the region body executes during the program run.
    pub passes: u64,
    /// Seconds of *replicated* (serial, unparallelizable) work per pass.
    /// Every PE performs this work, so the summed cost grows linearly with
    /// the PE count — the classic source of unmeasured cost.
    pub serial_work: f64,
    /// Seconds of perfectly divisible work per pass at one PE.
    pub parallel_work: f64,
    /// Load-imbalance strength in `[0, 1)`: per-PE work multipliers are
    /// spread by `±imbalance` (normalized so total work is preserved).
    pub imbalance: f64,
    /// Skew pattern of the imbalance.
    pub skew: SkewPattern,
    /// Communication/I/O profile.
    pub comm: CommProfile,
}

impl Workload {
    /// A compute-only workload with no imbalance and no communication.
    pub fn compute(passes: u64, parallel_work: f64) -> Self {
        Workload {
            passes,
            serial_work: 0.0,
            parallel_work,
            imbalance: 0.0,
            skew: SkewPattern::Random,
            comm: CommProfile::none(),
        }
    }

    /// An empty workload (structural regions that only contain children).
    pub fn empty() -> Self {
        Workload::compute(0, 0.0)
    }
}

/// How load imbalance is distributed over the PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkewPattern {
    /// Independent pseudo-random per-PE multipliers (particle clustering).
    Random,
    /// Linearly increasing load with the PE index (bad block distribution).
    Linear,
    /// One hot PE carries the extra load (master bottleneck).
    SingleHot,
}

/// The per-PE work multiplier for a region: deterministic in
/// `(seed, region, pe)`, with mean exactly 1 over the PE set after
/// normalization (done by the simulator).
pub fn raw_skew(
    pattern: SkewPattern,
    imbalance: f64,
    seed: u64,
    region: u64,
    pe: u32,
    no_pe: u32,
) -> f64 {
    if imbalance == 0.0 || no_pe <= 1 {
        return 1.0;
    }
    let x = match pattern {
        SkewPattern::Random => noise::signed_noise(seed, region, pe as u64, 17),
        SkewPattern::Linear => {
            // -1 at PE 0 .. +1 at the last PE.
            2.0 * pe as f64 / (no_pe - 1).max(1) as f64 - 1.0
        }
        SkewPattern::SingleHot => {
            if pe == (noise::hash3(seed, region, 23) % no_pe as u64) as u32 {
                1.0
            } else {
                -1.0 / (no_pe as f64 - 1.0)
            }
        }
    };
    (1.0 + imbalance * x).max(0.05)
}

/// A call site inside a region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallModel {
    /// Name of the called function (e.g. `"barrier"`, `"mpi_allreduce"`).
    pub callee: String,
    /// Calls per pass of the enclosing region, per PE.
    pub count_per_pass: f64,
    /// Relative spread of the per-PE call count (0 for SPMD-regular codes).
    pub count_imbalance: f64,
}

/// A region of the synthetic program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionNode {
    /// Region kind (subprogram, loop, if-block, call site, basic block).
    pub kind: RegionKind,
    /// Region name (unique within the program, used in reports).
    pub name: String,
    /// Source line range occupied by the region.
    pub lines: (u32, u32),
    /// The region's own workload (exclusive of children).
    pub workload: Workload,
    /// Nested regions.
    pub children: Vec<RegionNode>,
    /// Call sites contained directly in this region.
    pub calls: Vec<CallModel>,
}

impl RegionNode {
    /// Count of nodes in this subtree (including self).
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(RegionNode::subtree_size)
            .sum::<usize>()
    }

    /// Depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(RegionNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// Iterate over the subtree in pre-order.
    pub fn walk(&self) -> Vec<&RegionNode> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.walk());
        }
        out
    }
}

/// A function of the synthetic program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionModel {
    /// Function name.
    pub name: String,
    /// The subprogram region (root of the function's region tree).
    pub root: RegionNode,
}

/// A complete synthetic application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramModel {
    /// Application name.
    pub name: String,
    /// Simulation seed: all per-PE noise derives from it.
    pub seed: u64,
    /// Functions; `functions[0]` is `main`.
    pub functions: Vec<FunctionModel>,
    /// Names of runtime routines called by the program (e.g. `barrier`);
    /// these become `Function` objects with call sites but no regions of
    /// their own.
    pub runtime_routines: Vec<String>,
}

impl ProgramModel {
    /// Total region count across all functions.
    pub fn region_count(&self) -> usize {
        self.functions.iter().map(|f| f.root.subtree_size()).sum()
    }

    /// A structural sketch of the program, stored as its "source code".
    pub fn source_sketch(&self) -> String {
        let mut out = String::new();
        for f in &self.functions {
            out.push_str(&format!("subroutine {}\n", f.name));
            sketch_region(&f.root, 1, &mut out);
            out.push_str("end\n");
        }
        out
    }
}

fn sketch_region(r: &RegionNode, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    out.push_str(&format!(
        "{pad}! {} {} lines {}..{} passes {}\n",
        r.kind.name(),
        r.name,
        r.lines.0,
        r.lines.1,
        r.workload.passes
    ));
    for c in &r.calls {
        out.push_str(&format!("{pad}  call {}\n", c.callee));
    }
    for c in &r.children {
        sketch_region(c, indent + 1, out);
    }
}

/// Parameterized random program generator (for stress tests and the parse /
/// scale benchmarks). Uses the same deterministic noise as the simulator.
#[derive(Debug, Clone)]
pub struct ProgramGenerator {
    /// Seed for structure and workloads.
    pub seed: u64,
    /// Number of functions besides `main`.
    pub functions: usize,
    /// Maximum region-tree depth per function.
    pub max_depth: usize,
    /// Maximum children per region.
    pub max_fanout: usize,
    /// Base parallel work per leaf pass in seconds.
    pub base_work: f64,
    /// Probability (in `[0,1]`) that a region communicates.
    pub comm_probability: f64,
}

impl Default for ProgramGenerator {
    fn default() -> Self {
        ProgramGenerator {
            seed: 1,
            functions: 4,
            max_depth: 4,
            max_fanout: 3,
            base_work: 0.02,
            comm_probability: 0.5,
        }
    }
}

impl ProgramGenerator {
    /// Generate a program model.
    pub fn generate(&self) -> ProgramModel {
        let mut functions = Vec::new();
        let mut next_region = 0u64;
        for fi in 0..=self.functions {
            let name = if fi == 0 {
                "main".to_string()
            } else {
                format!("sub_{fi}")
            };
            let root = self.gen_region(&name, fi as u64, 0, &mut next_region);
            functions.push(FunctionModel { name, root });
        }
        ProgramModel {
            name: format!("generated_{}", self.seed),
            seed: self.seed,
            functions,
            runtime_routines: vec!["barrier".to_string(), "global_sum".to_string()],
        }
    }

    fn gen_region(&self, fname: &str, fi: u64, depth: usize, counter: &mut u64) -> RegionNode {
        let rid = *counter;
        *counter += 1;
        let h = noise::hash3(self.seed, fi * 1000 + rid, depth as u64);
        let kind = if depth == 0 {
            RegionKind::Subprogram
        } else {
            match h % 4 {
                0 => RegionKind::Loop,
                1 => RegionKind::IfBlock,
                2 => RegionKind::BasicBlock,
                _ => RegionKind::Loop,
            }
        };
        let passes = 1 + (h >> 8) % 50;
        let wants_comm = noise::unit(noise::hash3(self.seed, rid, 77)) < self.comm_probability;
        let comm = if wants_comm && depth > 0 {
            CommProfile {
                barriers: ((h >> 16) % 3) as f64,
                ptp_msgs: ((h >> 20) % 8) as f64,
                ptp_bytes: 1024.0 * (1 + (h >> 24) % 64) as f64,
                collectives: ((h >> 32) % 2) as f64,
                collective_bytes: 512.0,
                collective_kind: None,
                shmem_ops: 0.0,
                shmem_bytes: 0.0,
                io_ops: 0.0,
                io_bytes: 0.0,
                io_read_fraction: 0.5,
            }
        } else {
            CommProfile::none()
        };
        let has_barrier = comm.has_barrier();
        let imbalance = noise::unit(noise::hash3(self.seed, rid, 99)) * 0.4;
        let n_children = if depth >= self.max_depth {
            0
        } else {
            ((h >> 40) % (self.max_fanout as u64 + 1)) as usize
        };
        let line0 = 1 + (rid * 10) as u32;
        let children = (0..n_children)
            .map(|_| self.gen_region(fname, fi, depth + 1, counter))
            .collect();
        RegionNode {
            kind,
            name: format!("{fname}:{}@{line0}", kind.name()),
            lines: (line0, line0 + 9),
            workload: Workload {
                passes,
                serial_work: if depth == 0 {
                    self.base_work * 0.1
                } else {
                    0.0
                },
                parallel_work: self.base_work * (1.0 + noise::unit(h)),
                imbalance,
                skew: SkewPattern::Random,
                comm,
            },
            children,
            calls: if has_barrier {
                vec![CallModel {
                    callee: "barrier".to_string(),
                    count_per_pass: 1.0,
                    count_imbalance: 0.0,
                }]
            } else {
                Vec::new()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let g = ProgramGenerator::default();
        assert_eq!(g.generate(), g.generate());
    }

    #[test]
    fn generator_respects_depth_bound() {
        let g = ProgramGenerator {
            max_depth: 2,
            ..Default::default()
        };
        let m = g.generate();
        for f in &m.functions {
            assert!(f.root.depth() <= 3, "{} too deep", f.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramGenerator {
            seed: 1,
            ..Default::default()
        }
        .generate();
        let b = ProgramGenerator {
            seed: 2,
            ..Default::default()
        }
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn walk_visits_all_nodes() {
        let g = ProgramGenerator::default();
        let m = g.generate();
        let total: usize = m.functions.iter().map(|f| f.root.walk().len()).sum();
        assert_eq!(total, m.region_count());
    }

    #[test]
    fn raw_skew_balanced_case() {
        assert_eq!(raw_skew(SkewPattern::Random, 0.0, 1, 2, 3, 16), 1.0);
        assert_eq!(raw_skew(SkewPattern::Linear, 0.5, 1, 2, 0, 1), 1.0);
    }

    #[test]
    fn raw_skew_linear_monotone() {
        let lo = raw_skew(SkewPattern::Linear, 0.4, 1, 2, 0, 8);
        let hi = raw_skew(SkewPattern::Linear, 0.4, 1, 2, 7, 8);
        assert!(lo < hi);
        assert!((lo - 0.6).abs() < 1e-12);
        assert!((hi - 1.4).abs() < 1e-12);
    }

    #[test]
    fn raw_skew_single_hot_has_one_peak() {
        let no_pe = 16;
        let vals: Vec<f64> = (0..no_pe)
            .map(|pe| raw_skew(SkewPattern::SingleHot, 0.5, 9, 4, pe, no_pe))
            .collect();
        let hot = vals.iter().filter(|v| **v > 1.2).count();
        assert_eq!(hot, 1, "{vals:?}");
    }

    #[test]
    fn source_sketch_mentions_functions() {
        let m = ProgramGenerator::default().generate();
        let sketch = m.source_sketch();
        assert!(sketch.contains("subroutine main"));
    }
}
