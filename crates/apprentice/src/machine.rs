//! Machine model: per-operation costs of the simulated parallel computer.
//!
//! Defaults approximate the Cray T3E-900 installed at FZ Jülich when the
//! paper was written (450 MHz Alpha EV5 processors, ~3D torus with very low
//! latency, hardware barrier support, a shared parallel filesystem).
//! Absolute values matter less than their relative magnitudes: the
//! reproduced experiments compare *shapes* (who wins, how costs scale with
//! the processor count), not absolute seconds.

use serde::{Deserialize, Serialize};

/// Per-operation cost parameters of the simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Processor clock speed in MHz (stored in `TestRun.Clockspeed`).
    pub clockspeed_mhz: u32,
    /// Point-to-point message latency in seconds.
    pub ptp_latency: f64,
    /// Point-to-point bandwidth in bytes/second.
    pub ptp_bandwidth: f64,
    /// Base cost of one barrier operation in seconds (hardware barrier).
    pub barrier_base: f64,
    /// Additional barrier cost per log2(PE) level in seconds.
    pub barrier_per_level: f64,
    /// Latency per collective stage in seconds.
    pub collective_latency: f64,
    /// Collective bandwidth in bytes/second (per stage).
    pub collective_bandwidth: f64,
    /// One-sided (SHMEM) operation latency in seconds.
    pub shmem_latency: f64,
    /// One-sided bandwidth in bytes/second.
    pub shmem_bandwidth: f64,
    /// Per-operation I/O latency in seconds (metadata, seeks).
    pub io_latency: f64,
    /// Aggregate filesystem bandwidth in bytes/second, shared by all PEs
    /// (contention makes per-PE effective bandwidth shrink with PE count).
    pub io_bandwidth: f64,
    /// Cost of packing/unpacking one byte of message buffer, in seconds.
    pub pack_cost_per_byte: f64,
    /// Instrumentation (monitoring) overhead per region pass, in seconds.
    /// Apprentice records this separately so tools can subtract it.
    pub instr_per_pass: f64,
    /// Runtime startup cost in seconds (charged to the main region, grows
    /// logarithmically with the PE count).
    pub startup_base: f64,
    /// Runtime shutdown cost in seconds.
    pub shutdown_base: f64,
    /// Memory-contention slowdown coefficient: compute time is inflated by
    /// `1 + coeff * ln(PE)` to model shared-resource pressure. This is an
    /// *unmeasured* cost — it appears in no overhead category, exactly the
    /// kind of cost the paper's `UnmeasuredCost` property flags.
    pub contention_coeff: f64,
}

impl MachineModel {
    /// A Cray T3E-900-like machine (450 MHz).
    pub fn t3e_900() -> Self {
        MachineModel {
            clockspeed_mhz: 450,
            ptp_latency: 10e-6,
            ptp_bandwidth: 300e6,
            barrier_base: 3e-6,
            barrier_per_level: 0.5e-6,
            collective_latency: 12e-6,
            collective_bandwidth: 250e6,
            shmem_latency: 2e-6,
            shmem_bandwidth: 350e6,
            io_latency: 250e-6,
            io_bandwidth: 120e6,
            pack_cost_per_byte: 1.2e-9,
            instr_per_pass: 1.5e-6,
            startup_base: 0.01,
            shutdown_base: 0.004,
            contention_coeff: 0.004,
        }
    }

    /// A machine with zero overhead costs — useful in tests to isolate the
    /// compute/imbalance model.
    pub fn ideal() -> Self {
        MachineModel {
            clockspeed_mhz: 450,
            ptp_latency: 0.0,
            ptp_bandwidth: f64::INFINITY,
            barrier_base: 0.0,
            barrier_per_level: 0.0,
            collective_latency: 0.0,
            collective_bandwidth: f64::INFINITY,
            shmem_latency: 0.0,
            shmem_bandwidth: f64::INFINITY,
            io_latency: 0.0,
            io_bandwidth: f64::INFINITY,
            pack_cost_per_byte: 0.0,
            instr_per_pass: 0.0,
            startup_base: 0.0,
            shutdown_base: 0.0,
            contention_coeff: 0.0,
        }
    }

    /// Cost of one point-to-point message of `bytes` bytes.
    pub fn ptp_cost(&self, bytes: f64) -> f64 {
        self.ptp_latency + bytes / self.ptp_bandwidth
    }

    /// Cost of one barrier across `pe` processors.
    pub fn barrier_cost(&self, pe: u32) -> f64 {
        self.barrier_base + self.barrier_per_level * log2_ceil(pe)
    }

    /// Cost of one collective of `bytes` bytes across `pe` processors
    /// (log-tree algorithm; zero stages on a single PE).
    pub fn collective_cost(&self, bytes: f64, pe: u32) -> f64 {
        log2_ceil(pe) * (self.collective_latency + bytes / self.collective_bandwidth)
    }

    /// Cost of one one-sided operation of `bytes` bytes.
    pub fn shmem_cost(&self, bytes: f64) -> f64 {
        self.shmem_latency + bytes / self.shmem_bandwidth
    }

    /// Per-PE time to move `bytes_per_pe` bytes of file data when `pe`
    /// processors share the filesystem, plus `ops` operation latencies.
    pub fn io_cost(&self, bytes_per_pe: f64, ops: f64, pe: u32) -> f64 {
        ops * self.io_latency + bytes_per_pe * pe as f64 / self.io_bandwidth
    }

    /// Compute-time inflation factor from memory contention at `pe` PEs.
    pub fn contention_factor(&self, pe: u32) -> f64 {
        1.0 + self.contention_coeff * (pe as f64).ln()
    }
}

/// `ceil(log2(pe))` as f64, with `log2_ceil(1) == 0`.
pub fn log2_ceil(pe: u32) -> f64 {
    if pe <= 1 {
        0.0
    } else {
        (32 - (pe - 1).leading_zeros()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0.0);
        assert_eq!(log2_ceil(2), 1.0);
        assert_eq!(log2_ceil(3), 2.0);
        assert_eq!(log2_ceil(4), 2.0);
        assert_eq!(log2_ceil(5), 3.0);
        assert_eq!(log2_ceil(128), 7.0);
    }

    #[test]
    fn collective_free_on_one_pe() {
        let m = MachineModel::t3e_900();
        assert_eq!(m.collective_cost(1e6, 1), 0.0);
        assert!(m.collective_cost(1e6, 2) > 0.0);
    }

    #[test]
    fn barrier_grows_with_pe() {
        let m = MachineModel::t3e_900();
        assert!(m.barrier_cost(64) > m.barrier_cost(2));
        assert!(m.barrier_cost(2) > 0.0);
    }

    #[test]
    fn io_contention_scales_with_pe() {
        let m = MachineModel::t3e_900();
        let t4 = m.io_cost(1e6, 1.0, 4);
        let t64 = m.io_cost(1e6, 1.0, 64);
        assert!(t64 > t4 * 4.0, "I/O contention must grow: {t4} vs {t64}");
    }

    #[test]
    fn ideal_machine_has_no_overheads() {
        let m = MachineModel::ideal();
        assert_eq!(m.ptp_cost(1e9), 0.0);
        assert_eq!(m.barrier_cost(1024), 0.0);
        assert_eq!(m.io_cost(1e9, 10.0, 128), 0.0);
        assert_eq!(m.contention_factor(128), 1.0);
    }

    #[test]
    fn contention_grows_logarithmically() {
        let m = MachineModel::t3e_900();
        let f1 = m.contention_factor(1);
        let f2 = m.contention_factor(2);
        let f3 = m.contention_factor(3);
        assert_eq!(f1, 1.0);
        assert!(f2 > 1.0);
        // ln is concave: consecutive increments shrink.
        assert!((f3 - f2) < (f2 - f1));
    }
}
