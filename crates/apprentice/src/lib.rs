//! # `apprentice-sim` — synthetic performance-data supply tool
//!
//! The paper's COSY prototype consumes summary data produced by **Cray MPP
//! Apprentice** from instrumented runs on a Cray T3E. Neither the machine
//! nor the tool is available, so this crate substitutes both (see DESIGN.md
//! §2): it models a parallel application as a tree of regions with workload
//! laws, simulates its execution on a configurable machine model for any
//! processor count, and summarizes the per-process results exactly the way
//! Apprentice does — summed-over-processes exclusive/inclusive/overhead
//! times per region, per-type overhead timings (25 categories), and per-call
//! statistics (min/max/mean/stddev with the extremal PE memorized).
//!
//! The simulation is **deterministic**: all per-PE variation derives from a
//! counter-based hash of `(seed, region, pe)`, so the same inputs always
//! produce the same database, regardless of thread scheduling. Per-PE
//! timelines are computed in parallel with rayon and reduced in index order.
//!
//! ```
//! use apprentice_sim::{archetypes, MachineModel, simulate_program};
//! use perfdata::Store;
//!
//! let model = archetypes::particle_mc(42);
//! let machine = MachineModel::t3e_900();
//! let mut store = Store::new();
//! let version = simulate_program(&mut store, &model, &machine, &[1, 4, 16]);
//! assert_eq!(store.versions[version.index()].runs.len(), 3);
//! assert!(perfdata::validate(&store).is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod archetypes;
pub mod machine;
pub mod noise;
pub mod program;
pub mod simulate;
pub mod summary;

pub use machine::MachineModel;
pub use program::{CallModel, CommProfile, ProgramGenerator, ProgramModel, RegionNode, Workload};
pub use simulate::{simulate_region, simulate_run, RegionSim, RunSim};
pub use summary::{simulate_program, summarize_run};
