//! Application archetypes used throughout the experiments.
//!
//! Three synthetic codes with distinct bottleneck signatures, standing in
//! for the real T3E workloads the paper's tool analyzed:
//!
//! * [`stencil3d`] — a well-balanced halo-exchange stencil solver: small
//!   serial fraction, neighbor point-to-point traffic, one global residual
//!   reduction per iteration. Scales well; its eventual bottleneck is the
//!   collective and the replicated setup code.
//! * [`particle_mc`] — a particle Monte-Carlo code with strong random load
//!   imbalance resolved at explicit barriers: the textbook `SyncCost` /
//!   `LoadImbalance` case of §4.2.
//! * [`spectral_io`] — a spectral transform code with all-to-all transposes
//!   and heavy checkpoint I/O on a shared filesystem: collective and I/O
//!   bound at scale.
//!
//! All three have a `main` function whose root region is the COSY ranking
//! basis, plus a few numerical subroutines.

use crate::program::{
    CallModel, CommProfile, FunctionModel, ProgramModel, RegionNode, SkewPattern, Workload,
};
use perfdata::{RegionKind, TimingType};

fn region(
    kind: RegionKind,
    name: &str,
    lines: (u32, u32),
    workload: Workload,
    children: Vec<RegionNode>,
    calls: Vec<CallModel>,
) -> RegionNode {
    RegionNode {
        kind,
        name: name.to_string(),
        lines,
        workload,
        children,
        calls,
    }
}

fn barrier_call(count_per_pass: f64) -> CallModel {
    CallModel {
        callee: "barrier".to_string(),
        count_per_pass,
        count_imbalance: 0.0,
    }
}

/// A well-balanced 3-D stencil solver (halo exchange + residual reduction).
pub fn stencil3d(seed: u64) -> ProgramModel {
    let sweep = region(
        RegionKind::Loop,
        "smooth:loop@31",
        (31, 58),
        Workload {
            passes: 400,
            serial_work: 0.0,
            parallel_work: 0.045,
            imbalance: 0.03,
            skew: SkewPattern::Random,
            comm: CommProfile::none(),
        },
        vec![],
        vec![],
    );
    let halo = region(
        RegionKind::BasicBlock,
        "smooth:block@60",
        (60, 74),
        Workload {
            passes: 400,
            serial_work: 0.0,
            parallel_work: 0.002,
            imbalance: 0.0,
            skew: SkewPattern::Random,
            comm: CommProfile {
                ptp_msgs: 6.0, // six faces of the local block
                ptp_bytes: 8.0 * 1024.0,
                ..CommProfile::none()
            },
        },
        vec![],
        vec![],
    );
    let residual = region(
        RegionKind::BasicBlock,
        "smooth:block@76",
        (76, 82),
        Workload {
            passes: 400,
            serial_work: 0.0,
            parallel_work: 0.004,
            imbalance: 0.02,
            skew: SkewPattern::Random,
            comm: CommProfile {
                collectives: 1.0,
                collective_bytes: 8.0,
                collective_kind: Some(TimingType::AllReduce),
                ..CommProfile::none()
            },
        },
        vec![],
        vec![CallModel {
            callee: "global_sum".to_string(),
            count_per_pass: 1.0,
            count_imbalance: 0.0,
        }],
    );
    let smooth_root = region(
        RegionKind::Subprogram,
        "smooth",
        (20, 90),
        Workload::empty(),
        vec![sweep, halo, residual],
        vec![],
    );

    let setup = region(
        RegionKind::BasicBlock,
        "main:block@12",
        (12, 30),
        Workload {
            passes: 1,
            serial_work: 0.08, // replicated grid setup: an unmeasured cost
            parallel_work: 1.2,
            imbalance: 0.0,
            skew: SkewPattern::Random,
            comm: CommProfile::none(),
        },
        vec![],
        vec![],
    );
    let output = region(
        RegionKind::BasicBlock,
        "main:block@95",
        (95, 105),
        Workload {
            passes: 1,
            serial_work: 0.0,
            parallel_work: 0.01,
            imbalance: 0.0,
            skew: SkewPattern::Random,
            comm: CommProfile {
                io_ops: 4.0,
                io_bytes: 0.2e6,
                io_read_fraction: 0.0,
                ..CommProfile::none()
            },
        },
        vec![],
        vec![],
    );
    let main_root = region(
        RegionKind::Subprogram,
        "main",
        (1, 110),
        Workload::empty(),
        vec![setup, output],
        vec![],
    );

    ProgramModel {
        name: "stencil3d".to_string(),
        seed,
        functions: vec![
            FunctionModel {
                name: "main".to_string(),
                root: main_root,
            },
            FunctionModel {
                name: "smooth".to_string(),
                root: smooth_root,
            },
        ],
        runtime_routines: vec!["barrier".to_string(), "global_sum".to_string()],
    }
}

/// A particle Monte-Carlo code with strong random imbalance at barriers.
pub fn particle_mc(seed: u64) -> ProgramModel {
    let move_particles = region(
        RegionKind::Loop,
        "step:loop@22",
        (22, 47),
        Workload {
            passes: 250,
            serial_work: 0.0,
            parallel_work: 0.08,
            imbalance: 0.45, // strong clustering
            skew: SkewPattern::Random,
            comm: CommProfile {
                barriers: 1.0,
                ..CommProfile::none()
            },
        },
        vec![],
        vec![barrier_call(1.0)],
    );
    let tally = region(
        RegionKind::BasicBlock,
        "step:block@50",
        (50, 61),
        Workload {
            passes: 250,
            serial_work: 0.0,
            parallel_work: 0.006,
            imbalance: 0.05,
            skew: SkewPattern::Random,
            comm: CommProfile {
                collectives: 1.0,
                collective_bytes: 4096.0,
                collective_kind: Some(TimingType::Reduce),
                ..CommProfile::none()
            },
        },
        vec![],
        vec![],
    );
    let step_root = region(
        RegionKind::Subprogram,
        "step",
        (15, 70),
        Workload::empty(),
        vec![move_particles, tally],
        vec![],
    );

    let source_gen = region(
        RegionKind::BasicBlock,
        "main:block@8",
        (8, 18),
        Workload {
            passes: 1,
            serial_work: 0.4,
            parallel_work: 0.8,
            imbalance: 0.1,
            skew: SkewPattern::SingleHot,
            comm: CommProfile {
                barriers: 1.0,
                ..CommProfile::none()
            },
        },
        vec![],
        vec![barrier_call(1.0)],
    );
    let main_root = region(
        RegionKind::Subprogram,
        "main",
        (1, 90),
        Workload::empty(),
        vec![source_gen],
        vec![],
    );

    ProgramModel {
        name: "particle_mc".to_string(),
        seed,
        functions: vec![
            FunctionModel {
                name: "main".to_string(),
                root: main_root,
            },
            FunctionModel {
                name: "step".to_string(),
                root: step_root,
            },
        ],
        runtime_routines: vec!["barrier".to_string()],
    }
}

/// A spectral transform code: all-to-all transposes + checkpoint I/O.
pub fn spectral_io(seed: u64) -> ProgramModel {
    let fft = region(
        RegionKind::Loop,
        "transform:loop@18",
        (18, 39),
        Workload {
            passes: 120,
            serial_work: 0.001,
            parallel_work: 0.11,
            imbalance: 0.04,
            skew: SkewPattern::Random,
            comm: CommProfile::none(),
        },
        vec![],
        vec![],
    );
    let transpose = region(
        RegionKind::BasicBlock,
        "transform:block@41",
        (41, 52),
        Workload {
            passes: 120,
            serial_work: 0.0,
            parallel_work: 0.004,
            imbalance: 0.0,
            skew: SkewPattern::Random,
            comm: CommProfile {
                collectives: 2.0,
                collective_bytes: 256.0 * 1024.0,
                collective_kind: Some(TimingType::AllToAll),
                ..CommProfile::none()
            },
        },
        vec![],
        vec![CallModel {
            callee: "transpose".to_string(),
            count_per_pass: 2.0,
            count_imbalance: 0.0,
        }],
    );
    let transform_root = region(
        RegionKind::Subprogram,
        "transform",
        (10, 60),
        Workload::empty(),
        vec![fft, transpose],
        vec![],
    );

    let checkpoint = region(
        RegionKind::IfBlock,
        "main:if@33",
        (33, 44),
        Workload {
            passes: 12,
            serial_work: 0.002,
            parallel_work: 0.002,
            imbalance: 0.0,
            skew: SkewPattern::Random,
            comm: CommProfile {
                io_ops: 8.0,
                io_bytes: 4e6,
                io_read_fraction: 0.1,
                ..CommProfile::none()
            },
        },
        vec![],
        vec![CallModel {
            callee: "checkpoint".to_string(),
            count_per_pass: 1.0,
            count_imbalance: 0.0,
        }],
    );
    let init_read = region(
        RegionKind::BasicBlock,
        "main:block@9",
        (9, 20),
        Workload {
            passes: 1,
            serial_work: 0.15,
            parallel_work: 0.05,
            imbalance: 0.0,
            skew: SkewPattern::Random,
            comm: CommProfile {
                io_ops: 16.0,
                io_bytes: 8e6,
                io_read_fraction: 1.0,
                ..CommProfile::none()
            },
        },
        vec![],
        vec![],
    );
    let main_root = region(
        RegionKind::Subprogram,
        "main",
        (1, 80),
        Workload::empty(),
        vec![init_read, checkpoint],
        vec![],
    );

    ProgramModel {
        name: "spectral_io".to_string(),
        seed,
        functions: vec![
            FunctionModel {
                name: "main".to_string(),
                root: main_root,
            },
            FunctionModel {
                name: "transform".to_string(),
                root: transform_root,
            },
        ],
        runtime_routines: vec![
            "barrier".to_string(),
            "transpose".to_string(),
            "checkpoint".to_string(),
        ],
    }
}

/// All three archetypes with the given seed.
pub fn all(seed: u64) -> Vec<ProgramModel> {
    vec![stencil3d(seed), particle_mc(seed), spectral_io(seed)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;
    use crate::summary::simulate_program;
    use perfdata::{validate, OverheadCategory, Store};

    fn dominant_category(model: &ProgramModel, no_pe: u32) -> OverheadCategory {
        let machine = MachineModel::t3e_900();
        let mut store = Store::new();
        simulate_program(&mut store, model, &machine, &[no_pe]);
        let mut per_cat: std::collections::HashMap<OverheadCategory, f64> = Default::default();
        for t in &store.typed_timings {
            if t.ty.category() != OverheadCategory::Runtime {
                *per_cat.entry(t.ty.category()).or_default() += t.time;
            }
        }
        per_cat
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0
    }

    #[test]
    fn all_archetypes_produce_valid_stores() {
        for model in all(3) {
            let machine = MachineModel::t3e_900();
            let mut store = Store::new();
            simulate_program(&mut store, &model, &machine, &[1, 8]);
            let v = validate(&store);
            assert!(v.is_empty(), "{}: {v:?}", model.name);
        }
    }

    #[test]
    fn particle_mc_is_synchronization_bound() {
        assert_eq!(
            dominant_category(&particle_mc(7), 32),
            OverheadCategory::Synchronization
        );
    }

    #[test]
    fn spectral_io_is_io_or_collective_bound_at_scale() {
        let cat = dominant_category(&spectral_io(7), 64);
        assert!(
            matches!(cat, OverheadCategory::Io | OverheadCategory::Collective),
            "unexpected dominant category {cat:?}"
        );
    }

    #[test]
    fn stencil_scales_better_than_particle() {
        let machine = MachineModel::t3e_900();
        let lost = |model: &ProgramModel| {
            let mut store = Store::new();
            let v = simulate_program(&mut store, model, &machine, &[1, 32]);
            let main = store.main_region(v).unwrap();
            let runs = store.versions[v.index()].runs.clone();
            let d1 = store.duration(main, runs[0]).unwrap();
            let d32 = store.duration(main, runs[1]).unwrap();
            (d32 - d1) / d1
        };
        let stencil_loss = lost(&stencil3d(3));
        let particle_loss = lost(&particle_mc(3));
        assert!(
            particle_loss > stencil_loss * 1.5,
            "stencil {stencil_loss} vs particle {particle_loss}"
        );
    }
}
