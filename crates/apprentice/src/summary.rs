//! Apprentice-style summarization: turn per-PE simulation results into the
//! summed-over-processes records of the COSY data model.
//!
//! §3 of the paper: "After program execution Apprentice is started.
//! Apprentice then computes summary data for program regions … The resulting
//! information is written to a file and transferred into the database." This
//! module is that pipeline: [`build_static`] creates the static structure
//! (functions, regions, call sites), [`summarize_run`] adds the dynamic
//! records of one test run, and [`simulate_program`] drives both for a PE
//! sweep.

use crate::machine::MachineModel;
use crate::program::ProgramModel;
use crate::simulate::simulate_run;
use perfdata::{CallId, CallTiming, DateTime, FunctionId, RegionId, Store, TestRunId, VersionId};

/// Mapping from model order to store ids, produced by [`build_static`].
#[derive(Debug, Clone)]
pub struct ModelIndex {
    /// One entry per function in model order.
    pub functions: Vec<FunctionId>,
    /// `regions[fi][ri]` is the store id of pre-order region `ri` of
    /// function `fi`.
    pub regions: Vec<Vec<RegionId>>,
    /// `calls[fi][ri]` lists the store ids of the call sites of that region
    /// in model order.
    pub calls: Vec<Vec<Vec<CallId>>>,
}

/// Create the static structure of a program version in the store.
pub fn build_static(
    store: &mut Store,
    model: &ProgramModel,
    compiled_at: DateTime,
) -> (VersionId, ModelIndex) {
    let program = store
        .programs
        .iter()
        .position(|p| p.name == model.name)
        .map(|i| perfdata::ProgramId(i as u32))
        .unwrap_or_else(|| store.add_program(model.name.clone()));
    let version = store.add_version(program, compiled_at, model.source_sketch());

    // Functions first (call sites need callee ids).
    let mut functions = Vec::new();
    for f in &model.functions {
        functions.push(store.add_function(version, f.name.clone()));
    }
    let mut routine_ids = Vec::new();
    for r in &model.runtime_routines {
        routine_ids.push((r.clone(), store.add_function(version, r.clone())));
    }
    let find_callee = |name: &str| -> Option<FunctionId> {
        routine_ids
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
            .or_else(|| {
                model
                    .functions
                    .iter()
                    .position(|f| f.name == name)
                    .map(|i| functions[i])
            })
    };

    let mut regions = Vec::new();
    let mut calls = Vec::new();
    for (fi, f) in model.functions.iter().enumerate() {
        let mut region_ids = Vec::new();
        let mut call_ids = Vec::new();
        // Pre-order walk with parent tracking.
        struct Frame<'a> {
            node: &'a crate::program::RegionNode,
            parent: Option<RegionId>,
        }
        let mut stack = vec![Frame {
            node: &f.root,
            parent: None,
        }];
        // An explicit stack would visit in reversed-child order; recurse
        // instead to match `RegionNode::walk` exactly.
        fn visit(
            store: &mut Store,
            function: FunctionId,
            node: &crate::program::RegionNode,
            parent: Option<RegionId>,
            find_callee: &dyn Fn(&str) -> Option<FunctionId>,
            region_ids: &mut Vec<RegionId>,
            call_ids: &mut Vec<Vec<CallId>>,
        ) {
            let rid = store.add_region(function, parent, node.kind, node.name.clone(), node.lines);
            region_ids.push(rid);
            let mut sites = Vec::new();
            for cm in &node.calls {
                if let Some(callee) = find_callee(&cm.callee) {
                    sites.push(store.add_call(function, callee, rid));
                }
            }
            call_ids.push(sites);
            for c in &node.children {
                visit(
                    store,
                    function,
                    c,
                    Some(rid),
                    find_callee,
                    region_ids,
                    call_ids,
                );
            }
        }
        let root_frame = stack.pop().expect("one frame");
        visit(
            store,
            functions[fi],
            root_frame.node,
            root_frame.parent,
            &find_callee,
            &mut region_ids,
            &mut call_ids,
        );
        regions.push(region_ids);
        calls.push(call_ids);
    }

    (
        version,
        ModelIndex {
            functions,
            regions,
            calls,
        },
    )
}

/// Per-PE statistics helper: min/max/mean/stddev and extremal indexes.
fn stats(values: &[f64]) -> (f64, f64, f64, f64, u32, u32) {
    debug_assert!(!values.is_empty());
    let n = values.len() as f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let (mut min_i, mut max_i) = (0u32, 0u32);
    let mut sum = 0.0;
    for (i, &v) in values.iter().enumerate() {
        if v < min {
            min = v;
            min_i = i as u32;
        }
        if v > max {
            max = v;
            max_i = i as u32;
        }
        sum += v;
    }
    let mean = sum / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (min, max, mean, var.sqrt(), min_i, max_i)
}

/// Simulate one run and write its Apprentice summary records to the store.
pub fn summarize_run(
    store: &mut Store,
    index: &ModelIndex,
    version: VersionId,
    model: &ProgramModel,
    machine: &MachineModel,
    no_pe: u32,
    start: DateTime,
) -> TestRunId {
    let run = store.add_run(version, start, no_pe, machine.clockspeed_mhz);
    let sim = simulate_run(model, machine, no_pe);

    // Pass 1: bottom-up inclusive times per function. Regions are in
    // pre-order; a child always has a larger index than its parent, so a
    // reverse sweep accumulates children before parents. The measured
    // overhead (`Ovhd`) is accumulated the same way: a region's overhead
    // covers its whole subtree, so `MeasuredCost` on an enclosing region
    // accounts for the measured costs of everything it contains.
    let mut incls: Vec<Vec<f64>> = Vec::with_capacity(sim.functions.len());
    let mut ovhds: Vec<Vec<f64>> = Vec::with_capacity(sim.functions.len());
    for (fi, fsim) in sim.functions.iter().enumerate() {
        let f = &model.functions[fi];
        let n = f.root.walk().len();
        debug_assert_eq!(n, fsim.regions.len());

        // children_of[i] = indexes (in pre-order) of direct children.
        let mut children_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        {
            fn assign(
                node: &crate::program::RegionNode,
                parent: Option<usize>,
                next: &mut usize,
                children_of: &mut [Vec<usize>],
            ) {
                let me = *next;
                *next += 1;
                if let Some(p) = parent {
                    children_of[p].push(me);
                }
                for c in &node.children {
                    assign(c, Some(me), next, children_of);
                }
            }
            let mut next = 0;
            assign(&f.root, None, &mut next, &mut children_of);
        }

        let mut incl = vec![0.0f64; n];
        let mut ovhd = vec![0.0f64; n];
        for i in (0..n).rev() {
            let own = fsim.regions[i].total_own();
            let kids: f64 = children_of[i].iter().map(|c| incl[*c]).sum();
            incl[i] = own + kids;
            let own_ov = fsim.regions[i].total_overhead();
            let kids_ov: f64 = children_of[i].iter().map(|c| ovhd[*c]).sum();
            ovhd[i] = own_ov + kids_ov;
        }
        incls.push(incl);
        ovhds.push(ovhd);
    }

    // The dynamic call tree is rooted at `main`: every other function is
    // (transitively) called from it, so its inclusive time (and measured
    // overhead) is attributed to main's root region. This makes
    // `Duration(main, t)` the whole-program duration the paper's ranking
    // basis requires.
    let called_time: f64 = (1..incls.len()).map(|fi| incls[fi][0]).sum();
    let called_ovhd: f64 = (1..ovhds.len()).map(|fi| ovhds[fi][0]).sum();
    if let Some(main_incl) = incls.get_mut(0).and_then(|v| v.first_mut()) {
        *main_incl += called_time;
    }
    if let Some(main_ovhd) = ovhds.get_mut(0).and_then(|v| v.first_mut()) {
        *main_ovhd += called_ovhd;
    }

    // Pass 2: write the summary records.
    for (fi, fsim) in sim.functions.iter().enumerate() {
        let incl = &incls[fi];
        let ovhd = &ovhds[fi];
        for (ri, rsim) in fsim.regions.iter().enumerate() {
            let rid = index.regions[fi][ri];
            let excl = rsim.total_compute();
            store.add_total_timing(rid, run, excl, incl[ri], ovhd[ri]);
            for (ty, per_pe) in &rsim.overheads {
                let t: f64 = per_pe.iter().sum();
                if t > 0.0 {
                    store.add_typed_timing(rid, run, *ty, t);
                }
            }
            for (ci, csim) in rsim.calls.iter().enumerate() {
                let Some(&call_id) = index.calls[fi][ri].get(ci) else {
                    continue;
                };
                let (min_c, max_c, mean_c, sd_c, min_ci, max_ci) = stats(&csim.counts);
                let (min_t, max_t, mean_t, sd_t, min_ti, max_ti) = stats(&csim.times);
                store.add_call_timing(CallTiming {
                    call: call_id,
                    run,
                    min_count: min_c,
                    max_count: max_c,
                    mean_count: mean_c,
                    stdev_count: sd_c,
                    min_count_pe: min_ci,
                    max_count_pe: max_ci,
                    min_time: min_t,
                    max_time: max_t,
                    mean_time: mean_t,
                    stdev_time: sd_t,
                    min_time_pe: min_ti,
                    max_time_pe: max_ti,
                });
            }
        }
    }
    run
}

/// Full pipeline: build the static structure and run the PE sweep.
/// Returns the created version id.
pub fn simulate_program(
    store: &mut Store,
    model: &ProgramModel,
    machine: &MachineModel,
    pe_counts: &[u32],
) -> VersionId {
    let (version, index) = build_static(store, model, DateTime::from_secs(946_684_800));
    for (i, &no_pe) in pe_counts.iter().enumerate() {
        let start = DateTime::from_secs(946_684_800 + 3600 * (i as i64 + 1));
        summarize_run(store, &index, version, model, machine, no_pe, start);
    }
    version
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetypes;
    use perfdata::validate;

    #[test]
    fn full_pipeline_produces_valid_store() {
        let model = archetypes::particle_mc(5);
        let machine = MachineModel::t3e_900();
        let mut store = Store::new();
        let v = simulate_program(&mut store, &model, &machine, &[1, 2, 4, 8]);
        let violations = validate(&store);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(store.versions[v.index()].runs.len(), 4);
        assert!(store.total_timings.len() >= 4 * model.region_count());
    }

    #[test]
    fn duration_is_monotone_in_overheads() {
        // With overheads the summed duration at high PE counts must exceed
        // the 1-PE duration (lost cycles > 0) for an imbalanced code.
        let model = archetypes::particle_mc(5);
        let machine = MachineModel::t3e_900();
        let mut store = Store::new();
        let v = simulate_program(&mut store, &model, &machine, &[1, 16]);
        let main = store.main_region(v).unwrap();
        let runs = store.versions[v.index()].runs.clone();
        let d1 = store.duration(main, runs[0]).unwrap();
        let d16 = store.duration(main, runs[1]).unwrap();
        assert!(
            d16 > d1 * 1.01,
            "imbalanced code must lose cycles: {d1} vs {d16}"
        );
    }

    #[test]
    fn stats_helper() {
        let (min, max, mean, sd, min_i, max_i) = stats(&[3.0, 1.0, 2.0]);
        assert_eq!(min, 1.0);
        assert_eq!(max, 3.0);
        assert_eq!(mean, 2.0);
        assert_eq!(min_i, 1);
        assert_eq!(max_i, 0);
        assert!((sd - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn static_structure_matches_model() {
        let model = archetypes::stencil3d(1);
        let mut store = Store::new();
        let (v, index) = build_static(&mut store, &model, DateTime::from_secs(0));
        assert_eq!(index.functions.len(), model.functions.len());
        let total_regions: usize = index.regions.iter().map(Vec::len).sum();
        assert_eq!(total_regions, model.region_count());
        // Runtime routines become functions too.
        assert_eq!(
            store.versions[v.index()].functions.len(),
            model.functions.len() + model.runtime_routines.len()
        );
    }

    #[test]
    fn barrier_calls_get_call_timings() {
        let model = archetypes::particle_mc(5);
        let machine = MachineModel::t3e_900();
        let mut store = Store::new();
        simulate_program(&mut store, &model, &machine, &[8]);
        // The barrier routine must have call sites with statistics.
        let barrier_fn = store
            .functions
            .iter()
            .find(|f| f.name == "barrier")
            .expect("barrier routine exists");
        assert!(!barrier_fn.calls.is_empty());
        for &c in &barrier_fn.calls {
            assert!(!store.calls[c.index()].sums.is_empty());
        }
    }

    #[test]
    fn two_versions_of_same_program_share_program_object() {
        let model = archetypes::stencil3d(1);
        let machine = MachineModel::t3e_900();
        let mut store = Store::new();
        simulate_program(&mut store, &model, &machine, &[2]);
        simulate_program(&mut store, &model, &machine, &[2]);
        assert_eq!(store.programs.len(), 1);
        assert_eq!(store.programs[0].versions.len(), 2);
    }
}
