//! The execution simulator: per-PE timelines for every region.
//!
//! For each region and each processing element the simulator computes the
//! exclusive compute time and the time spent in each of the 25 overhead
//! categories, from the region's [`Workload`] and the [`MachineModel`]:
//!
//! * **compute**: `passes · (serial + parallel/P · skew(pe))`, inflated by
//!   the memory-contention factor. The skew multipliers are normalized to
//!   mean 1 so total parallel work is preserved across PE counts; the
//!   replicated serial part grows linearly in total when summed over PEs.
//! * **synchronization wait**: processors arriving early at a barrier (or a
//!   synchronizing collective) wait for the slowest one:
//!   `wait(pe) = max_q compute(q) − compute(pe)`, charged to the `Barrier`
//!   (or collective) category — this is how load imbalance becomes visible
//!   as synchronization cost, the causal chain behind the paper's
//!   `LoadImbalance` refinement of `SyncCost`.
//! * **messages / collectives / SHMEM / I/O**: latency-bandwidth models;
//!   collectives pay `⌈log₂ P⌉` stages; the filesystem is shared, so I/O
//!   time grows with the PE count (contention).
//! * **instrumentation**: a fixed cost per pass, recorded in the
//!   `Instrumentation` category and included in the region's `Ovhd` — the
//!   "instrumentation overhead" the paper lists among the stored data.

use crate::machine::MachineModel;
use crate::noise;
use crate::program::{raw_skew, CallModel, ProgramModel, RegionNode, Workload};
use perfdata::TimingType;
use rayon::prelude::*;

/// Per-PE simulation result of one call site.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSim {
    /// Callee function name.
    pub callee: String,
    /// Pass count per PE.
    pub counts: Vec<f64>,
    /// Time spent in the callee per PE, in seconds.
    pub times: Vec<f64>,
}

/// Per-PE simulation result of one region (exclusive of children).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSim {
    /// Unique region number used for noise streams.
    pub region_uid: u64,
    /// Exclusive compute seconds per PE.
    pub compute: Vec<f64>,
    /// Overhead seconds per (type, PE); only categories with nonzero time
    /// appear.
    pub overheads: Vec<(TimingType, Vec<f64>)>,
    /// Call-site statistics.
    pub calls: Vec<CallSim>,
}

impl RegionSim {
    /// Total overhead of one PE across all categories.
    pub fn overhead_of(&self, pe: usize) -> f64 {
        self.overheads.iter().map(|(_, v)| v[pe]).sum()
    }

    /// Summed (over PEs) exclusive compute time.
    pub fn total_compute(&self) -> f64 {
        self.compute.iter().sum()
    }

    /// Summed (over PEs) overhead time.
    pub fn total_overhead(&self) -> f64 {
        self.overheads
            .iter()
            .map(|(_, v)| v.iter().sum::<f64>())
            .sum()
    }

    /// Summed (over PEs) own time: compute + overhead, children excluded.
    pub fn total_own(&self) -> f64 {
        self.total_compute() + self.total_overhead()
    }
}

/// Simulation result of one function: `RegionSim`s in pre-order.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSim {
    /// Function name.
    pub name: String,
    /// One entry per region, in the same pre-order as `RegionNode::walk`.
    pub regions: Vec<RegionSim>,
}

/// Simulation result of one whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSim {
    /// Processor count of the run.
    pub no_pe: u32,
    /// One entry per function, in model order.
    pub functions: Vec<FunctionSim>,
}

/// Simulate one region for `no_pe` processors.
///
/// `is_main_root` charges runtime startup/shutdown to the region (used for
/// the root region of `main`).
pub fn simulate_region(
    w: &Workload,
    calls: &[CallModel],
    machine: &MachineModel,
    no_pe: u32,
    seed: u64,
    region_uid: u64,
    is_main_root: bool,
) -> RegionSim {
    let p = no_pe as usize;
    let passes = w.passes as f64;

    // ---- compute, with normalized skew ---------------------------------
    let raw: Vec<f64> = (0..no_pe)
        .map(|pe| raw_skew(w.skew, w.imbalance, seed, region_uid, pe, no_pe))
        .collect();
    let mean_raw = raw.iter().sum::<f64>() / p as f64;
    let contention = machine.contention_factor(no_pe);
    let compute: Vec<f64> = raw
        .iter()
        .map(|r| {
            passes * (w.serial_work + w.parallel_work / p as f64 * (r / mean_raw)) * contention
        })
        .collect();
    let max_compute = compute.iter().copied().fold(0.0, f64::max);

    let mut overheads: Vec<(TimingType, Vec<f64>)> = Vec::new();
    let mut add = |ty: TimingType, v: Vec<f64>| {
        if v.iter().any(|x| *x > 0.0) {
            overheads.push((ty, v));
        }
    };

    let c = &w.comm;

    // ---- synchronization wait ------------------------------------------
    // The imbalance penalty is paid at the first synchronizing construct.
    let sync_kind = if c.barriers > 0.0 {
        Some(TimingType::Barrier)
    } else if c.collectives > 0.0 {
        Some(c.collective_kind.unwrap_or(TimingType::AllReduce))
    } else {
        None
    };
    let mut barrier_time = vec![0.0; p];
    let mut wait_time = vec![0.0; p];
    if let Some(kind) = sync_kind {
        for pe in 0..p {
            wait_time[pe] = max_compute - compute[pe];
        }
        if kind == TimingType::Barrier {
            let op = c.barriers * passes * machine.barrier_cost(no_pe);
            for pe in 0..p {
                barrier_time[pe] = op + wait_time[pe];
            }
            add(TimingType::Barrier, barrier_time.clone());
        }
    }

    // ---- collectives -----------------------------------------------------
    if c.collectives > 0.0 {
        let kind = c.collective_kind.unwrap_or(TimingType::AllReduce);
        let per_pe = c.collectives * passes * machine.collective_cost(c.collective_bytes, no_pe);
        let mut v = vec![per_pe; p];
        if sync_kind == Some(kind) {
            // The collective is the synchronizing construct: fold the wait in.
            for pe in 0..p {
                v[pe] += wait_time[pe];
            }
        }
        add(kind, v);
    }

    // ---- point-to-point --------------------------------------------------
    if c.ptp_msgs > 0.0 && no_pe > 1 {
        let base = c.ptp_msgs * passes * machine.ptp_cost(c.ptp_bytes);
        let jitter = |pe: u32, stream: u64| {
            1.0 + 0.1 * noise::signed_noise(seed, region_uid, pe as u64, stream)
        };
        add(
            TimingType::PtpSend,
            (0..no_pe).map(|pe| 0.45 * base * jitter(pe, 31)).collect(),
        );
        add(
            TimingType::PtpRecv,
            (0..no_pe).map(|pe| 0.45 * base * jitter(pe, 37)).collect(),
        );
        add(
            TimingType::PtpWait,
            (0..no_pe).map(|pe| 0.10 * base * jitter(pe, 41)).collect(),
        );
        let pack = c.ptp_msgs * passes * c.ptp_bytes * machine.pack_cost_per_byte;
        add(TimingType::BufferPack, vec![pack; p]);
        add(TimingType::BufferUnpack, vec![pack; p]);
    }

    // ---- one-sided -------------------------------------------------------
    if c.shmem_ops > 0.0 && no_pe > 1 {
        let base = c.shmem_ops * passes * machine.shmem_cost(c.shmem_bytes);
        add(TimingType::ShmemPut, vec![0.45 * base; p]);
        add(TimingType::ShmemGet, vec![0.45 * base; p]);
        add(TimingType::ShmemWait, vec![0.10 * base; p]);
    }

    // ---- I/O --------------------------------------------------------------
    if c.io_ops > 0.0 || c.io_bytes > 0.0 {
        let total = machine.io_cost(c.io_bytes * passes, c.io_ops * passes, no_pe);
        let rf = c.io_read_fraction.clamp(0.0, 1.0);
        add(TimingType::IoRead, vec![0.85 * total * rf; p]);
        add(TimingType::IoWrite, vec![0.85 * total * (1.0 - rf); p]);
        add(TimingType::IoOpen, vec![0.05 * total; p]);
        add(TimingType::IoClose, vec![0.05 * total; p]);
        add(TimingType::IoSeek, vec![0.05 * total; p]);
    }

    // ---- runtime ----------------------------------------------------------
    if is_main_root {
        let levels = 1.0 + 0.3 * crate::machine::log2_ceil(no_pe);
        add(TimingType::Startup, vec![machine.startup_base * levels; p]);
        add(
            TimingType::Shutdown,
            vec![machine.shutdown_base * levels; p],
        );
    }
    if w.passes > 0 {
        add(
            TimingType::Instrumentation,
            vec![machine.instr_per_pass * passes; p],
        );
    }

    // ---- call sites --------------------------------------------------------
    let find_type = |ty: TimingType| -> Option<&Vec<f64>> {
        overheads.iter().find(|(t, _)| *t == ty).map(|(_, v)| v)
    };
    let calls_sim: Vec<CallSim> = calls
        .iter()
        .enumerate()
        .map(|(ci, cm)| {
            let counts: Vec<f64> = (0..no_pe)
                .map(|pe| {
                    let n = 1.0
                        + cm.count_imbalance
                            * noise::signed_noise(seed, region_uid, pe as u64, 61 + ci as u64);
                    (cm.count_per_pass * passes * n).max(0.0)
                })
                .collect();
            // Route the callee's time to the matching overhead category.
            let source = match cm.callee.as_str() {
                "barrier" => find_type(TimingType::Barrier),
                "global_sum" | "allreduce" => find_type(TimingType::AllReduce),
                "transpose" | "alltoall" => find_type(TimingType::AllToAll),
                "checkpoint" => find_type(TimingType::IoWrite),
                _ => find_type(TimingType::PtpSend),
            };
            let times: Vec<f64> = match source {
                Some(v) => v.clone(),
                // Unattributed callee: charge a nominal per-call cost.
                None => counts.iter().map(|n| n * 1e-6).collect(),
            };
            CallSim {
                callee: cm.callee.clone(),
                counts,
                times,
            }
        })
        .collect();

    RegionSim {
        region_uid,
        compute,
        overheads,
        calls: calls_sim,
    }
}

/// Simulate a whole program run at `no_pe` processors. Regions are simulated
/// in parallel (rayon), results are assembled in deterministic pre-order.
pub fn simulate_run(model: &ProgramModel, machine: &MachineModel, no_pe: u32) -> RunSim {
    // Flatten all regions so rayon can process them in one parallel pass.
    struct Job<'a> {
        func: usize,
        node: &'a RegionNode,
        uid: u64,
        is_main_root: bool,
    }
    let mut jobs = Vec::new();
    let mut uid = 0u64;
    for (fi, f) in model.functions.iter().enumerate() {
        for (ri, node) in f.root.walk().into_iter().enumerate() {
            jobs.push(Job {
                func: fi,
                node,
                uid,
                is_main_root: fi == 0 && ri == 0,
            });
            uid += 1;
        }
    }

    let sims: Vec<RegionSim> = jobs
        .par_iter()
        .map(|j| {
            simulate_region(
                &j.node.workload,
                &j.node.calls,
                machine,
                no_pe,
                model.seed,
                j.uid,
                j.is_main_root,
            )
        })
        .collect();

    let mut functions: Vec<FunctionSim> = model
        .functions
        .iter()
        .map(|f| FunctionSim {
            name: f.name.clone(),
            regions: Vec::new(),
        })
        .collect();
    for (j, sim) in jobs.iter().zip(sims) {
        functions[j.func].regions.push(sim);
    }
    RunSim { no_pe, functions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetypes;
    use crate::program::{CommProfile, SkewPattern};

    fn balanced_workload() -> Workload {
        Workload {
            passes: 10,
            serial_work: 0.0,
            parallel_work: 1.0,
            imbalance: 0.0,
            skew: SkewPattern::Random,
            comm: CommProfile::none(),
        }
    }

    #[test]
    fn perfect_scaling_without_overheads() {
        let m = MachineModel::ideal();
        let w = balanced_workload();
        let s1 = simulate_region(&w, &[], &m, 1, 0, 0, false);
        let s8 = simulate_region(&w, &[], &m, 8, 0, 0, false);
        let t1 = s1.total_compute();
        let t8 = s8.total_compute();
        // Total work is conserved: summed compute equal across PE counts.
        assert!((t1 - t8).abs() < 1e-9, "{t1} vs {t8}");
        // Per-PE time shrinks by 8.
        assert!((s8.compute[0] - s1.compute[0] / 8.0).abs() < 1e-9);
    }

    #[test]
    fn replicated_serial_work_grows() {
        let m = MachineModel::ideal();
        let w = Workload {
            serial_work: 0.1,
            ..balanced_workload()
        };
        let s1 = simulate_region(&w, &[], &m, 1, 0, 0, false);
        let s8 = simulate_region(&w, &[], &m, 8, 0, 0, false);
        // 10 passes * 0.1s on every PE: summed cost grows linearly.
        assert!((s8.total_compute() - s1.total_compute() - 7.0 * 10.0 * 0.1).abs() < 1e-9);
    }

    #[test]
    fn imbalance_preserves_total_work() {
        let m = MachineModel::ideal();
        let w = Workload {
            imbalance: 0.4,
            ..balanced_workload()
        };
        let s8 = simulate_region(&w, &[], &m, 8, 3, 5, false);
        assert!((s8.total_compute() - 10.0).abs() < 1e-9);
        // But per-PE times differ.
        let min = s8.compute.iter().copied().fold(f64::INFINITY, f64::min);
        let max = s8.compute.iter().copied().fold(0.0, f64::max);
        assert!(max > min * 1.05);
    }

    #[test]
    fn barrier_wait_equals_imbalance_gap() {
        let m = MachineModel::ideal();
        let w = Workload {
            imbalance: 0.4,
            skew: SkewPattern::Linear,
            comm: CommProfile {
                barriers: 1.0,
                ..CommProfile::none()
            },
            ..balanced_workload()
        };
        let s = simulate_region(&w, &[], &m, 4, 3, 5, false);
        let barrier = s
            .overheads
            .iter()
            .find(|(t, _)| *t == TimingType::Barrier)
            .map(|(_, v)| v)
            .unwrap();
        let max_c = s.compute.iter().copied().fold(0.0, f64::max);
        for (pe, b) in barrier.iter().enumerate() {
            assert!((b - (max_c - s.compute[pe])).abs() < 1e-12, "pe {pe}");
        }
        // The slowest PE waits zero.
        assert!(barrier.iter().any(|b| *b < 1e-12));
    }

    #[test]
    fn no_ptp_on_single_pe() {
        let m = MachineModel::t3e_900();
        let w = Workload {
            comm: CommProfile {
                ptp_msgs: 4.0,
                ptp_bytes: 8192.0,
                ..CommProfile::none()
            },
            ..balanced_workload()
        };
        let s1 = simulate_region(&w, &[], &m, 1, 0, 0, false);
        assert!(s1
            .overheads
            .iter()
            .all(|(t, _)| !matches!(t, TimingType::PtpSend | TimingType::PtpRecv)));
        let s4 = simulate_region(&w, &[], &m, 4, 0, 0, false);
        assert!(s4
            .overheads
            .iter()
            .any(|(t, _)| matches!(t, TimingType::PtpSend)));
    }

    #[test]
    fn io_contention_grows_with_pe() {
        let m = MachineModel::t3e_900();
        let w = Workload {
            comm: CommProfile {
                io_ops: 2.0,
                io_bytes: 1e6,
                io_read_fraction: 0.5,
                ..CommProfile::none()
            },
            ..balanced_workload()
        };
        let io_total = |no_pe: u32| {
            simulate_region(&w, &[], &m, no_pe, 0, 0, false)
                .overheads
                .iter()
                .filter(|(t, _)| t.category() == perfdata::OverheadCategory::Io)
                .map(|(_, v)| v.iter().sum::<f64>())
                .sum::<f64>()
        };
        // Summed I/O time grows superlinearly in PE count (shared fs).
        assert!(io_total(16) > io_total(4) * 4.0);
    }

    #[test]
    fn startup_charged_only_to_main_root() {
        let m = MachineModel::t3e_900();
        let w = balanced_workload();
        let root = simulate_region(&w, &[], &m, 4, 0, 0, true);
        let inner = simulate_region(&w, &[], &m, 4, 0, 1, false);
        assert!(root
            .overheads
            .iter()
            .any(|(t, _)| *t == TimingType::Startup));
        assert!(!inner
            .overheads
            .iter()
            .any(|(t, _)| *t == TimingType::Startup));
    }

    #[test]
    fn barrier_call_times_match_barrier_overhead() {
        let m = MachineModel::t3e_900();
        let w = Workload {
            imbalance: 0.3,
            skew: SkewPattern::Linear,
            comm: CommProfile {
                barriers: 2.0,
                ..CommProfile::none()
            },
            ..balanced_workload()
        };
        let calls = vec![CallModel {
            callee: "barrier".to_string(),
            count_per_pass: 2.0,
            count_imbalance: 0.0,
        }];
        let s = simulate_region(&w, &calls, &m, 8, 1, 2, false);
        let barrier = s
            .overheads
            .iter()
            .find(|(t, _)| *t == TimingType::Barrier)
            .map(|(_, v)| v.clone())
            .unwrap();
        assert_eq!(s.calls[0].times, barrier);
        assert_eq!(s.calls[0].counts[0], 2.0 * 10.0);
    }

    #[test]
    fn run_simulation_is_deterministic_and_parallel_safe() {
        let model = archetypes::stencil3d(7);
        let m = MachineModel::t3e_900();
        let a = simulate_run(&model, &m, 16);
        let b = simulate_run(&model, &m, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn contention_inflates_compute() {
        let mut m = MachineModel::ideal();
        m.contention_coeff = 0.01;
        let w = balanced_workload();
        let s8 = simulate_region(&w, &[], &m, 8, 0, 0, false);
        // Total compute is inflated by 1 + 0.01*ln(8).
        let expect = 10.0 * (1.0 + 0.01 * 8.0f64.ln());
        assert!((s8.total_compute() - expect).abs() < 1e-9);
    }
}
