//! Deterministic counter-based noise.
//!
//! All per-PE variation in the simulator comes from hashing the tuple
//! `(seed, region, pe, stream)` with SplitMix64. This keeps runs perfectly
//! reproducible under any parallel schedule — a requirement for the
//! cross-backend equality tests (interpreter vs SQL) and for criterion
//! benches that must measure the same workload every iteration.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a tuple of values into a single u64.
#[inline]
pub fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(seed ^ splitmix64(a ^ splitmix64(b)))
}

/// Uniform value in `[0, 1)` from a hash.
#[inline]
pub fn unit(h: u64) -> f64 {
    // 53 random mantissa bits.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform value in `[-1, 1)` derived from `(seed, region, pe, stream)`.
#[inline]
pub fn signed_noise(seed: u64, region: u64, pe: u64, stream: u64) -> f64 {
    2.0 * unit(hash3(
        seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407),
        region,
        pe,
    )) - 1.0
}

/// Approximately standard-normal value (sum of 4 uniforms, Irwin–Hall),
/// deterministic in its inputs. Adequate for workload perturbations.
#[inline]
pub fn gaussian_noise(seed: u64, region: u64, pe: u64, stream: u64) -> f64 {
    let mut acc = 0.0;
    for i in 0..4 {
        acc += signed_noise(seed, region, pe, stream.wrapping_add(i * 0x9E37));
    }
    // Var of one U(-1,1) is 1/3; of the sum of 4 it is 4/3.
    acc / (4.0f64 / 3.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
    }

    #[test]
    fn unit_range() {
        for i in 0..1000 {
            let u = unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn signed_noise_range_and_balance() {
        let mut sum = 0.0;
        let n = 10_000;
        for pe in 0..n {
            let v = signed_noise(7, 3, pe, 1);
            assert!((-1.0..1.0).contains(&v));
            sum += v;
        }
        // Mean should be near zero.
        assert!((sum / n as f64).abs() < 0.02, "mean {}", sum / n as f64);
    }

    #[test]
    fn gaussian_noise_moments() {
        let n = 20_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for pe in 0..n {
            let v = gaussian_noise(11, 5, pe, 2);
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn streams_are_independent() {
        assert_ne!(signed_noise(1, 2, 3, 0), signed_noise(1, 2, 3, 1),);
    }
}
