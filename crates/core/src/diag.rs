//! Diagnostics produced by the ASL front-end.

use crate::span::{SourceMap, Span};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advice that does not block acceptance of the specification.
    Warning,
    /// The specification is invalid.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single message attached to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class of the message.
    pub severity: Severity,
    /// Where in the source the problem was detected.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
        }
    }

    /// Render the diagnostic as `line:col: severity: message` using a map.
    pub fn render(&self, map: &SourceMap) -> String {
        format!(
            "{}: {}: {}",
            map.locate(self.span.start),
            self.severity,
            self.message
        )
    }
}

/// An ordered collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Append an error at `span`.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(span, message));
    }

    /// Append a warning at `span`.
    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(span, message));
    }

    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// True if no diagnostics were recorded at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of recorded diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Iterate over diagnostics in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Consume and return the underlying vector.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }

    /// Render all diagnostics against the given source, one per line.
    pub fn render(&self, source: &str) -> String {
        let map = SourceMap::new(source);
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render(&map));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.items {
            writeln!(f, "{}: {} (at {})", d.severity, d.message, d.span)?;
        }
        Ok(())
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Self {
        Diagnostics { items: vec![d] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_errors_distinguishes_warnings() {
        let mut ds = Diagnostics::new();
        ds.warning(Span::new(0, 1), "just a warning");
        assert!(!ds.has_errors());
        ds.error(Span::new(1, 2), "a real error");
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn render_includes_position() {
        let src = "ab\ncd";
        let mut ds = Diagnostics::new();
        ds.error(Span::new(3, 4), "bad token");
        let rendered = ds.render(src);
        assert!(rendered.contains("2:1: error: bad token"), "{rendered}");
    }

    #[test]
    fn display_lists_all() {
        let mut ds = Diagnostics::new();
        ds.error(Span::new(0, 1), "one");
        ds.error(Span::new(1, 2), "two");
        let s = ds.to_string();
        assert!(s.contains("one") && s.contains("two"));
    }
}
