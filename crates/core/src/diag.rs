//! Diagnostics produced by the ASL front-end.

use crate::span::{SourceMap, Span};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advice that does not block acceptance of the specification.
    Warning,
    /// The specification is invalid.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single message attached to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class of the message.
    pub severity: Severity,
    /// Where in the source the problem was detected.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
        }
    }

    /// Render the diagnostic as `line:col: severity: message` using a map.
    pub fn render(&self, map: &SourceMap) -> String {
        format!(
            "{}: {}: {}",
            map.locate(self.span.start),
            self.severity,
            self.message
        )
    }

    /// Render the diagnostic as a rustc-style caret snippet:
    ///
    /// ```text
    /// warning: confidence constant 1.5 lies outside [0, 1]
    ///   --> 4:18
    ///    |
    ///  4 |     CONFIDENCE 1.5;
    ///    |                ^^^
    /// ```
    ///
    /// The source line is taken from `source`; `map` must have been built
    /// from the same text. Spans past the end of the source degrade to the
    /// plain one-line rendering rather than panicking.
    pub fn render_snippet(&self, source: &str, map: &SourceMap) -> String {
        let loc = map.locate(self.span.start);
        let mut out = format!("{}: {}\n  --> {}\n", self.severity, self.message, loc);
        let start = self.span.start as usize;
        if start > source.len() || !source.is_char_boundary(start) {
            return out;
        }
        let line_start = start - (loc.col as usize - 1);
        let line_end = source[line_start..]
            .find('\n')
            .map(|i| line_start + i)
            .unwrap_or(source.len());
        let line_text = &source[line_start..line_end];
        // Width of the caret run: the spanned bytes that fall on this line,
        // but at least one caret so point spans stay visible.
        let span_on_line = (self.span.end as usize).min(line_end).saturating_sub(start);
        let carets = span_on_line.max(1);
        let gutter = loc.line.to_string();
        let pad = " ".repeat(gutter.len());
        out.push_str(&format!("{pad} |\n{gutter} | {line_text}\n{pad} | "));
        out.push_str(&" ".repeat(loc.col as usize - 1));
        out.push_str(&"^".repeat(carets));
        out.push('\n');
        out
    }
}

/// An ordered collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Append an error at `span`.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(span, message));
    }

    /// Append a warning at `span`.
    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(span, message));
    }

    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// True if no diagnostics were recorded at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of recorded diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Iterate over diagnostics in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Consume and return the underlying vector.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }

    /// Render all diagnostics against the given source, one per line.
    pub fn render(&self, source: &str) -> String {
        let map = SourceMap::new(source);
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render(&map));
            out.push('\n');
        }
        out
    }

    /// Render all diagnostics as caret snippets separated by blank lines.
    pub fn render_snippets(&self, source: &str) -> String {
        let map = SourceMap::new(source);
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render_snippet(source, &map));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.items {
            writeln!(f, "{}: {} (at {})", d.severity, d.message, d.span)?;
        }
        Ok(())
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Self {
        Diagnostics { items: vec![d] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_errors_distinguishes_warnings() {
        let mut ds = Diagnostics::new();
        ds.warning(Span::new(0, 1), "just a warning");
        assert!(!ds.has_errors());
        ds.error(Span::new(1, 2), "a real error");
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn render_includes_position() {
        let src = "ab\ncd";
        let mut ds = Diagnostics::new();
        ds.error(Span::new(3, 4), "bad token");
        let rendered = ds.render(src);
        assert!(rendered.contains("2:1: error: bad token"), "{rendered}");
    }

    #[test]
    fn snippet_renders_caret_under_span() {
        let src = "PROPERTY P\n  CONFIDENCE 1.5;\nEND";
        let map = SourceMap::new(src);
        let d = Diagnostic::warning(Span::new(24, 27), "constant out of range");
        let s = d.render_snippet(src, &map);
        assert!(s.contains("warning: constant out of range"), "{s}");
        assert!(s.contains("--> 2:14"), "{s}");
        assert!(s.contains("2 |   CONFIDENCE 1.5;"), "{s}");
        assert!(s.contains("|              ^^^"), "{s}");
    }

    #[test]
    fn snippet_point_span_gets_one_caret() {
        let src = "abc";
        let map = SourceMap::new(src);
        let d = Diagnostic::error(Span::point(1), "here");
        let s = d.render_snippet(src, &map);
        assert!(s.ends_with(" ^\n"), "{s}");
        assert!(!s.contains("^^"), "{s}");
    }

    #[test]
    fn snippet_out_of_range_span_degrades_gracefully() {
        let src = "ab";
        let map = SourceMap::new(src);
        let d = Diagnostic::error(Span::new(50, 60), "past the end");
        let s = d.render_snippet(src, &map);
        assert!(s.contains("error: past the end"), "{s}");
    }

    #[test]
    fn display_lists_all() {
        let mut ds = Diagnostics::new();
        ds.error(Span::new(0, 1), "one");
        ds.error(Span::new(1, 2), "two");
        let s = ds.to_string();
        assert!(s.contains("one") && s.contains("two"));
    }
}
