//! Recursive-descent parser for ASL.
//!
//! Implements the property grammar of Figure 1 of the paper and the class
//! syntax of its §4.1 examples, plus the documented extensions (enums,
//! `EXISTS`/`FORALL`, `COUNT`, comments).
//!
//! ## Disambiguation notes
//!
//! The paper's grammar has two ambiguities the parser resolves with bounded
//! lookahead:
//!
//! * **Condition identifiers vs parenthesized expressions.** `(c1) x > 0`
//!   starts a condition labelled `c1`, whereas `(x) > 0` is a parenthesized
//!   expression. A `(Ident)` prefix is only treated as a condition id when
//!   the token *after* the closing paren can start an expression (identifier,
//!   literal, `(`, `{`, `NOT`, `-`, or an aggregate keyword), not when it is
//!   a binary operator.
//! * **`MAX` combiner vs `MAX` aggregate.** `SEVERITY: MAX((c1)->e1, (c2)->e2);`
//!   uses the arm combiner; `SEVERITY: MAX(s.T WHERE s IN r.X);` is the
//!   aggregate. The combiner form is chosen iff a `->` occurs at parenthesis
//!   depth 1 before the matching `)`.
//!
//! Top-level `OR`-separated unlabelled conditions (allowed by Figure 1) fold
//! into a single boolean `OR` expression; this is semantically identical
//! because unlabelled conditions cannot be referenced by guards.

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parse an ASL source string into a [`Specification`].
pub fn parse(source: &str) -> Result<Specification, Diagnostics> {
    let tokens = lex(source)?;
    let mut p = Parser::new(tokens);
    let spec = p.specification();
    if p.diags.has_errors() {
        Err(p.diags)
    } else {
        Ok(spec)
    }
}

/// Parse a single expression (used by tests and by the SQL lowering tests).
pub fn parse_expr(source: &str) -> Result<Expr, Diagnostics> {
    let tokens = lex(source)?;
    let mut p = Parser::new(tokens);
    let e = p.expr();
    p.expect(&TokenKind::Eof);
    if p.diags.has_errors() {
        Err(p.diags)
    } else {
        Ok(e)
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Diagnostics,
}

/// A top-level item starting with `Type Name`: function or constant.
enum ItemFC {
    Function(FunctionDecl),
    Const(ConstDecl),
}

/// Dummy expression inserted at error sites so parsing can continue.
fn error_expr(span: Span) -> Expr {
    Expr::new(ExprKind::IntLit(0), span)
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            diags: Diagnostics::new(),
        }
    }

    // ---- token utilities ------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> bool {
        if self.eat(kind) {
            true
        } else {
            let found = self.peek().describe();
            let span = self.span();
            self.diags.push(Diagnostic::error(
                span,
                format!("expected {}, found {}", kind.describe(), found),
            ));
            false
        }
    }

    fn ident(&mut self) -> Option<Ident> {
        if let TokenKind::Ident(name) = self.peek().clone() {
            let span = self.span();
            self.bump();
            Some(Ident::new(name, span))
        } else {
            let span = self.span();
            let found = self.peek().describe();
            self.diags.push(Diagnostic::error(
                span,
                format!("expected identifier, found {found}"),
            ));
            None
        }
    }

    /// Skip forward to a plausible item boundary after an error.
    fn synchronize_item(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    if depth <= 1 {
                        self.bump();
                        self.eat(&TokenKind::Semi);
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::Class | TokenKind::Enum | TokenKind::Property if depth == 0 => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- items ----------------------------------------------------------

    fn specification(&mut self) -> Specification {
        let mut spec = Specification::default();
        while !self.at(&TokenKind::Eof) {
            let before = self.pos;
            let errors_before = self.diags.len();
            match self.peek() {
                TokenKind::Class => {
                    if let Some(c) = self.class_decl() {
                        spec.classes.push(c);
                    }
                }
                TokenKind::Enum => {
                    if let Some(e) = self.enum_decl() {
                        spec.enums.push(e);
                    }
                }
                TokenKind::Property => {
                    if let Some(p) = self.property_decl() {
                        spec.properties.push(p);
                    }
                }
                TokenKind::Ident(_) | TokenKind::Setof => {
                    // `Type Name(params) = …;` is a function;
                    // `Type Name = …;` is a global constant (extension).
                    match self.function_or_const() {
                        Some(ItemFC::Function(f)) => spec.functions.push(f),
                        Some(ItemFC::Const(c)) => spec.constants.push(c),
                        None => {}
                    }
                }
                other => {
                    let msg = format!(
                        "expected `class`, `enum`, `PROPERTY` or a function definition, found {}",
                        other.describe()
                    );
                    let span = self.span();
                    self.diags.push(Diagnostic::error(span, msg));
                    self.bump();
                }
            }
            if self.diags.len() > errors_before {
                self.synchronize_item();
            }
            if self.pos == before && !self.at(&TokenKind::Eof) {
                // Safety net: guarantee progress.
                self.bump();
            }
        }
        spec
    }

    fn type_expr(&mut self) -> Option<TypeExpr> {
        let start = self.span();
        if self.eat(&TokenKind::Setof) {
            let elem = self.ident()?;
            let span = start.merge(elem.span);
            Some(TypeExpr {
                kind: TypeExprKind::Setof(elem.name),
                span,
            })
        } else {
            let name = self.ident()?;
            Some(TypeExpr {
                span: name.span,
                kind: TypeExprKind::Named(name.name),
            })
        }
    }

    fn class_decl(&mut self) -> Option<ClassDecl> {
        let start = self.span();
        self.expect(&TokenKind::Class);
        let name = self.ident()?;
        let base = if self.eat(&TokenKind::Extends) {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect(&TokenKind::LBrace);
        let mut attrs = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let astart = self.span();
            let ty = self.type_expr()?;
            let aname = self.ident()?;
            self.expect(&TokenKind::Semi);
            attrs.push(AttrDecl {
                ty,
                name: aname,
                span: astart.merge(self.prev_span()),
            });
        }
        self.expect(&TokenKind::RBrace);
        self.eat(&TokenKind::Semi); // tolerate `};`
        Some(ClassDecl {
            name,
            base,
            attrs,
            span: start.merge(self.prev_span()),
        })
    }

    fn enum_decl(&mut self) -> Option<EnumDecl> {
        let start = self.span();
        self.expect(&TokenKind::Enum);
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace);
        let mut variants = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            variants.push(self.ident()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RBrace);
        self.eat(&TokenKind::Semi);
        Some(EnumDecl {
            name,
            variants,
            span: start.merge(self.prev_span()),
        })
    }

    fn param_list(&mut self) -> Option<Vec<Param>> {
        self.expect(&TokenKind::LParen);
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let pstart = self.span();
                let ty = self.type_expr()?;
                let name = self.ident()?;
                params.push(Param {
                    ty,
                    name,
                    span: pstart.merge(self.prev_span()),
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen);
        Some(params)
    }

    fn function_or_const(&mut self) -> Option<ItemFC> {
        let start = self.span();
        let ret_ty = self.type_expr()?;
        let name = self.ident()?;
        if self.at(&TokenKind::Assign) {
            self.bump();
            let value = self.expr();
            self.expect(&TokenKind::Semi);
            return Some(ItemFC::Const(ConstDecl {
                ty: ret_ty,
                name,
                value,
                span: start.merge(self.prev_span()),
            }));
        }
        let params = self.param_list()?;
        self.expect(&TokenKind::Assign);
        let body = self.expr();
        self.expect(&TokenKind::Semi);
        Some(ItemFC::Function(FunctionDecl {
            ret_ty,
            name,
            params,
            body,
            span: start.merge(self.prev_span()),
        }))
    }

    // ---- properties -----------------------------------------------------

    fn property_decl(&mut self) -> Option<PropertyDecl> {
        let start = self.span();
        self.expect(&TokenKind::Property);
        let name = self.ident()?;
        let params = self.param_list()?;
        self.expect(&TokenKind::LBrace);

        let mut lets = Vec::new();
        if self.eat(&TokenKind::Let) {
            loop {
                let lstart = self.span();
                let ty = self.type_expr()?;
                let lname = self.ident()?;
                self.expect(&TokenKind::Assign);
                let value = self.expr();
                lets.push(LetDef {
                    ty,
                    name: lname,
                    value,
                    span: lstart.merge(self.prev_span()),
                });
                // Definitions are `;`-separated; the list ends at `IN`.
                let had_semi = self.eat(&TokenKind::Semi);
                if self.eat(&TokenKind::In) {
                    break;
                }
                if !had_semi {
                    let span = self.span();
                    let found = self.peek().describe();
                    self.diags.push(Diagnostic::error(
                        span,
                        format!("expected `;` or `IN` after LET definition, found {found}"),
                    ));
                    return None;
                }
            }
        }

        self.expect(&TokenKind::Condition);
        self.expect(&TokenKind::Colon);
        let conditions = self.condition_list();
        self.expect(&TokenKind::Semi);

        self.expect(&TokenKind::Confidence);
        self.expect(&TokenKind::Colon);
        let confidence = self.arm_spec();
        self.expect(&TokenKind::Semi);

        self.expect(&TokenKind::Severity);
        self.expect(&TokenKind::Colon);
        let severity = self.arm_spec();
        self.expect(&TokenKind::Semi);

        self.expect(&TokenKind::RBrace);
        self.eat(&TokenKind::Semi); // Figure 1 writes `};`; plain `}` accepted too

        Some(PropertyDecl {
            name,
            params,
            lets,
            conditions,
            confidence,
            severity,
            span: start.merge(self.prev_span()),
        })
    }

    /// Is the upcoming `( Ident )` a condition-id prefix (as opposed to a
    /// parenthesized variable expression)?
    fn at_cond_id(&self) -> bool {
        if !matches!(self.peek(), TokenKind::LParen) {
            return false;
        }
        if !matches!(self.peek_at(1), TokenKind::Ident(_)) {
            return false;
        }
        if !matches!(self.peek_at(2), TokenKind::RParen) {
            return false;
        }
        // `(x) > 0` must parse as expression: only accept the prefix when an
        // expression *starts* right after the `)`.
        matches!(
            self.peek_at(3),
            TokenKind::Ident(_)
                | TokenKind::Int(_)
                | TokenKind::Float(_)
                | TokenKind::Str(_)
                | TokenKind::True
                | TokenKind::False
                | TokenKind::LParen
                | TokenKind::LBrace
                | TokenKind::Not
                | TokenKind::Minus
                | TokenKind::Unique
                | TokenKind::Sum
                | TokenKind::Min
                | TokenKind::Max
                | TokenKind::Avg
                | TokenKind::Count
                | TokenKind::Exists
                | TokenKind::Forall
        )
    }

    fn condition_list(&mut self) -> Vec<Condition> {
        let mut conditions = Vec::new();
        loop {
            let cstart = self.span();
            let id = if self.at_cond_id() {
                self.bump(); // (
                let id = self.ident();
                self.bump(); // )
                id
            } else {
                None
            };
            // When the condition is labelled, a top-level `OR` followed by a
            // new label starts the next condition; inside the expression the
            // usual OR still binds.
            let expr = self.or_expr_stopping_at_labelled_or();
            conditions.push(Condition {
                id,
                span: cstart.merge(expr.span),
                expr,
            });
            if self.at(&TokenKind::Or) && self.lookahead_labelled_or() {
                self.bump(); // OR
                continue;
            }
            break;
        }
        conditions
    }

    /// Check whether `OR` at the current position is followed by a
    /// condition-id prefix, i.e. separates two labelled conditions.
    fn lookahead_labelled_or(&self) -> bool {
        debug_assert!(self.at(&TokenKind::Or));
        matches!(self.peek_at(1), TokenKind::LParen)
            && matches!(self.peek_at(2), TokenKind::Ident(_))
            && matches!(self.peek_at(3), TokenKind::RParen)
            && !matches!(
                self.peek_at(4),
                TokenKind::Semi
                    | TokenKind::Eof
                    | TokenKind::Star
                    | TokenKind::Slash
                    | TokenKind::Plus
                    | TokenKind::Minus
                    | TokenKind::EqEq
                    | TokenKind::NotEq
                    | TokenKind::Lt
                    | TokenKind::Le
                    | TokenKind::Gt
                    | TokenKind::Ge
            )
    }

    /// Parse an OR-level expression, but stop before an `OR` that separates
    /// labelled conditions.
    fn or_expr_stopping_at_labelled_or(&mut self) -> Expr {
        let mut lhs = self.and_expr();
        while self.at(&TokenKind::Or) {
            if self.lookahead_labelled_or() {
                break;
            }
            self.bump();
            let rhs = self.and_expr();
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        lhs
    }

    fn arm_spec(&mut self) -> ArmSpec {
        let start = self.span();
        // `MAX(...)` combiner iff a `->` occurs at depth 1 before the close.
        if self.at(&TokenKind::Max)
            && matches!(self.peek_at(1), TokenKind::LParen)
            && self.max_paren_contains_arrow()
        {
            self.bump(); // MAX
            self.bump(); // (
            let mut arms = Vec::new();
            loop {
                arms.push(self.arm());
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen);
            ArmSpec {
                is_max: true,
                arms,
                span: start.merge(self.prev_span()),
            }
        } else {
            let arm = self.arm();
            ArmSpec {
                is_max: false,
                span: start.merge(arm.span),
                arms: vec![arm],
            }
        }
    }

    /// Lookahead: does the parenthesized group after `MAX` contain a `->` at
    /// depth 1 (making it the arm-list combiner rather than an aggregate)?
    fn max_paren_contains_arrow(&self) -> bool {
        let mut i = self.pos + 1; // at `(`
        let mut depth = 0usize;
        while i < self.tokens.len() {
            match &self.tokens[i].kind {
                TokenKind::LParen | TokenKind::LBrace => depth += 1,
                TokenKind::RParen | TokenKind::RBrace => {
                    if depth == 1 {
                        return false;
                    }
                    depth -= 1;
                }
                TokenKind::Arrow if depth == 1 => return true,
                TokenKind::Eof => return false,
                _ => {}
            }
            i += 1;
        }
        false
    }

    fn arm(&mut self) -> Arm {
        let start = self.span();
        // `(cond-id) -> expr`
        if matches!(self.peek(), TokenKind::LParen)
            && matches!(self.peek_at(1), TokenKind::Ident(_))
            && matches!(self.peek_at(2), TokenKind::RParen)
            && matches!(self.peek_at(3), TokenKind::Arrow)
        {
            self.bump(); // (
            let guard = self.ident();
            self.bump(); // )
            self.bump(); // ->
            let expr = self.expr();
            Arm {
                guard,
                span: start.merge(expr.span),
                expr,
            }
        } else {
            let expr = self.expr();
            Arm {
                guard: None,
                span: start.merge(expr.span),
                expr,
            }
        }
    }

    // ---- expressions ------------------------------------------------------

    /// Full expression (OR precedence level).
    pub(crate) fn expr(&mut self) -> Expr {
        let mut lhs = self.and_expr();
        while self.eat(&TokenKind::Or) {
            let rhs = self.and_expr();
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        lhs
    }

    fn and_expr(&mut self) -> Expr {
        let mut lhs = self.not_expr();
        while self.eat(&TokenKind::And) {
            let rhs = self.not_expr();
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        lhs
    }

    fn not_expr(&mut self) -> Expr {
        if self.at(&TokenKind::Not) {
            let start = self.span();
            self.bump();
            let inner = self.not_expr();
            let span = start.merge(inner.span);
            Expr::new(ExprKind::Unary(UnOp::Not, Box::new(inner)), span)
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Expr {
        let lhs = self.additive();
        let op = match self.peek() {
            TokenKind::EqEq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.additive();
            let span = lhs.span.merge(rhs.span);
            Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span)
        } else {
            lhs
        }
    }

    fn additive(&mut self) -> Expr {
        let mut lhs = self.multiplicative();
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative();
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        lhs
    }

    fn multiplicative(&mut self) -> Expr {
        let mut lhs = self.unary();
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary();
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        lhs
    }

    fn unary(&mut self) -> Expr {
        if self.at(&TokenKind::Minus) {
            let start = self.span();
            self.bump();
            let inner = self.unary();
            let span = start.merge(inner.span);
            Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(inner)), span)
        } else {
            self.postfix()
        }
    }

    fn postfix(&mut self) -> Expr {
        let mut e = self.primary();
        loop {
            if self.eat(&TokenKind::Dot) {
                if let Some(attr) = self.ident() {
                    let span = e.span.merge(attr.span);
                    e = Expr::new(ExprKind::Attr(Box::new(e), attr), span);
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        e
    }

    fn primary(&mut self) -> Expr {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Expr::new(ExprKind::IntLit(v), start)
            }
            TokenKind::Float(v) => {
                self.bump();
                Expr::new(ExprKind::FloatLit(v), start)
            }
            TokenKind::Str(s) => {
                self.bump();
                Expr::new(ExprKind::StrLit(s), start)
            }
            TokenKind::True => {
                self.bump();
                Expr::new(ExprKind::BoolLit(true), start)
            }
            TokenKind::False => {
                self.bump();
                Expr::new(ExprKind::BoolLit(false), start)
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr();
                self.expect(&TokenKind::RParen);
                Expr::new(inner.kind, start.merge(self.prev_span()))
            }
            TokenKind::LBrace => self.set_comprehension(),
            TokenKind::Unique => {
                self.bump();
                self.expect(&TokenKind::LParen);
                let inner = self.expr();
                self.expect(&TokenKind::RParen);
                Expr::new(
                    ExprKind::Unique(Box::new(inner)),
                    start.merge(self.prev_span()),
                )
            }
            TokenKind::Sum => self.aggregate(AggOp::Sum),
            TokenKind::Min => self.aggregate(AggOp::Min),
            TokenKind::Max => self.aggregate(AggOp::Max),
            TokenKind::Avg => self.aggregate(AggOp::Avg),
            TokenKind::Count => self.aggregate(AggOp::Count),
            TokenKind::Exists => self.quantifier(Quant::Exists),
            TokenKind::Forall => self.quantifier(Quant::Forall),
            TokenKind::Ident(name) => {
                self.bump();
                let id = Ident::new(name, start);
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr());
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen);
                    Expr::new(ExprKind::Call(id, args), start.merge(self.prev_span()))
                } else {
                    Expr::new(ExprKind::Var(id.name), start)
                }
            }
            other => {
                self.diags.push(Diagnostic::error(
                    start,
                    format!("expected expression, found {}", other.describe()),
                ));
                self.bump();
                error_expr(start)
            }
        }
    }

    /// `{ binder IN source WITH pred }`
    fn set_comprehension(&mut self) -> Expr {
        let start = self.span();
        self.expect(&TokenKind::LBrace);
        let binder = match self.ident() {
            Some(b) => b,
            None => {
                self.synchronize_brace();
                return error_expr(start);
            }
        };
        self.expect(&TokenKind::In);
        // The source set is parsed at comparison level so a following
        // `WITH`/`AND` is not swallowed.
        let source = self.comparison();
        self.expect(&TokenKind::With);
        let pred = self.expr();
        self.expect(&TokenKind::RBrace);
        Expr::new(
            ExprKind::SetComp {
                binder,
                source: Box::new(source),
                pred: Box::new(pred),
            },
            start.merge(self.prev_span()),
        )
    }

    fn synchronize_brace(&mut self) {
        let mut depth = 1usize;
        while depth > 0 && !self.at(&TokenKind::Eof) {
            match self.peek() {
                TokenKind::LBrace => depth += 1,
                TokenKind::RBrace => depth -= 1,
                _ => {}
            }
            self.bump();
        }
    }

    /// `AGG( value WHERE binder IN source [AND pred] )`, or for `COUNT` and
    /// `MIN`/`MAX` also the plain forms `COUNT(set)` / `MAX(a, b, …)`.
    fn aggregate(&mut self, op: AggOp) -> Expr {
        let start = self.span();
        let kw = self.bump(); // keyword
        self.expect(&TokenKind::LParen);

        // Does this parenthesized group contain a WHERE at depth 1?
        let has_where = {
            let mut i = self.pos;
            let mut depth = 1usize;
            let mut found = false;
            while i < self.tokens.len() {
                match &self.tokens[i].kind {
                    TokenKind::LParen | TokenKind::LBrace => depth += 1,
                    TokenKind::RParen | TokenKind::RBrace => {
                        if depth == 1 {
                            break;
                        }
                        depth -= 1;
                    }
                    TokenKind::Where if depth == 1 => {
                        found = true;
                        break;
                    }
                    TokenKind::Eof => break,
                    _ => {}
                }
                i += 1;
            }
            found
        };

        if has_where {
            let value = self.expr();
            self.expect(&TokenKind::Where);
            let binder = match self.ident() {
                Some(b) => b,
                None => {
                    let _ = kw;
                    return error_expr(start);
                }
            };
            self.expect(&TokenKind::In);
            let source = self.comparison();
            let pred = if self.eat(&TokenKind::And) {
                Some(Box::new(self.expr()))
            } else {
                None
            };
            self.expect(&TokenKind::RParen);
            Expr::new(
                ExprKind::Aggregate {
                    op,
                    value: Box::new(value),
                    binder,
                    source: Box::new(source),
                    pred,
                },
                start.merge(self.prev_span()),
            )
        } else {
            // Plain forms: COUNT(set) is set cardinality; MAX/MIN with
            // multiple arguments are the n-ary numeric builtins.
            let mut args = Vec::new();
            if !self.at(&TokenKind::RParen) {
                loop {
                    args.push(self.expr());
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen);
            let span = start.merge(self.prev_span());
            match (op, args.len()) {
                (AggOp::Count, 1) => {
                    Expr::new(ExprKind::CountSet(Box::new(args.pop().unwrap())), span)
                }
                _ => {
                    let name = Ident::new(op.keyword(), start);
                    Expr::new(ExprKind::Call(name, args), span)
                }
            }
        }
    }

    /// `EXISTS( binder IN source WITH pred )`
    fn quantifier(&mut self, q: Quant) -> Expr {
        let start = self.span();
        self.bump(); // keyword
        self.expect(&TokenKind::LParen);
        let binder = match self.ident() {
            Some(b) => b,
            None => return error_expr(start),
        };
        self.expect(&TokenKind::In);
        let source = self.comparison();
        self.expect(&TokenKind::With);
        let pred = self.expr();
        self.expect(&TokenKind::RParen);
        Expr::new(
            ExprKind::Quantifier {
                q,
                binder,
                source: Box::new(source),
                pred: Box::new(pred),
            },
            start.merge(self.prev_span()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Specification {
        match parse(src) {
            Ok(s) => s,
            Err(d) => panic!("parse failed:\n{}", d.render(src)),
        }
    }

    #[test]
    fn parses_paper_data_model_classes() {
        let spec = parse_ok(
            r#"
            class Program { String Name; setof ProgVersion Versions; }
            class ProgVersion {
                DateTime Compilation;
                setof Function Functions;
                setof TestRun Runs;
                SourceCode Code;
            }
            class TestRun { DateTime Start; int NoPe; int Clockspeed; }
            "#,
        );
        assert_eq!(spec.classes.len(), 3);
        let pv = spec.class("ProgVersion").unwrap();
        assert_eq!(pv.attrs.len(), 4);
        assert_eq!(pv.attrs[1].name.name, "Functions");
        assert!(matches!(
            pv.attrs[1].ty.kind,
            TypeExprKind::Setof(ref n) if n == "Function"
        ));
    }

    #[test]
    fn parses_inheritance() {
        let spec = parse_ok("class A { int x; } class B extends A { float y; }");
        assert_eq!(spec.class("B").unwrap().base.as_ref().unwrap().name, "A");
    }

    #[test]
    fn parses_enum() {
        let spec = parse_ok("enum TimingType { Barrier, IoRead, IoWrite }");
        let e = spec.enum_decl("TimingType").unwrap();
        assert_eq!(e.variants.len(), 3);
        assert_eq!(e.variants[0].name, "Barrier");
    }

    #[test]
    fn parses_paper_helper_functions() {
        let spec = parse_ok(
            r#"
            TotalTiming Summary(Region r, TestRun t) =
                UNIQUE({s IN r.TotTimes WITH s.Run==t});
            float Duration(Region r, TestRun t) = Summary(r,t).Incl;
            "#,
        );
        assert_eq!(spec.functions.len(), 2);
        let dur = spec.function("Duration").unwrap();
        assert_eq!(dur.params.len(), 2);
        // Body is Attr(Call(Summary, ..), Incl)
        match &dur.body.kind {
            ExprKind::Attr(base, attr) => {
                assert_eq!(attr.name, "Incl");
                assert!(matches!(base.kind, ExprKind::Call(ref id, _) if id.name == "Summary"));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn parses_sublinear_speedup_property_from_paper() {
        let spec = parse_ok(
            r#"
            Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
                LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
                        MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
                    float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run)
                IN
                CONDITION: TotalCost>0; CONFIDENCE: 1;
                SEVERITY: TotalCost/Duration(Basis,t);
            }
            "#,
        );
        let p = spec.property("SublinearSpeedup").unwrap();
        assert_eq!(p.params.len(), 3);
        assert_eq!(p.lets.len(), 2);
        assert_eq!(p.lets[0].name.name, "MinPeSum");
        assert_eq!(p.conditions.len(), 1);
        assert!(!p.confidence.is_max);
        assert!(!p.severity.is_max);
        // The nested MIN ... WHERE must parse as an aggregate.
        fn find_aggregate(e: &Expr) -> bool {
            match &e.kind {
                ExprKind::Aggregate { op: AggOp::Min, .. } => true,
                ExprKind::Unique(inner) => find_aggregate(inner),
                ExprKind::SetComp { pred, source, .. } => {
                    find_aggregate(pred) || find_aggregate(source)
                }
                ExprKind::Binary(_, a, b) => find_aggregate(a) || find_aggregate(b),
                _ => false,
            }
        }
        assert!(find_aggregate(&p.lets[0].value));
    }

    #[test]
    fn parses_sync_cost_aggregate_with_two_predicates() {
        let spec = parse_ok(
            r#"
            Property SyncCost(Region r, TestRun t, Region Basis) {
                LET float Barrier = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
                        AND tt.Type == Barrier);
                IN CONDITION: Barrier > 0; CONFIDENCE: 1;
                SEVERITY: Barrier / Duration(Basis,t);
            }
            "#,
        );
        let p = spec.property("SyncCost").unwrap();
        match &p.lets[0].value.kind {
            ExprKind::Aggregate {
                op: AggOp::Sum,
                pred: Some(pred),
                ..
            } => {
                // pred must be the conjunction `tt.Run==t AND tt.Type == Barrier`.
                assert!(matches!(pred.kind, ExprKind::Binary(BinOp::And, _, _)));
            }
            other => panic!("expected SUM aggregate, got {other:?}"),
        }
    }

    #[test]
    fn labelled_conditions_with_guarded_max() {
        let spec = parse_ok(
            r#"
            PROPERTY TwoWay(Region r) {
                CONDITION: (hi) Cost(r) > 100 OR (lo) Cost(r) > 10;
                CONFIDENCE: MAX((hi) -> 1, (lo) -> 0.5);
                SEVERITY: MAX((hi) -> Cost(r), (lo) -> Cost(r) / 10);
            }
            "#,
        );
        let p = spec.property("TwoWay").unwrap();
        assert_eq!(p.conditions.len(), 2);
        assert_eq!(p.conditions[0].id.as_ref().unwrap().name, "hi");
        assert_eq!(p.conditions[1].id.as_ref().unwrap().name, "lo");
        assert!(p.confidence.is_max);
        assert_eq!(p.confidence.arms.len(), 2);
        assert_eq!(p.severity.arms[1].guard.as_ref().unwrap().name, "lo");
    }

    #[test]
    fn unlabelled_or_folds_into_one_condition() {
        let spec = parse_ok(
            r#"
            PROPERTY AnyCost(Region r) {
                CONDITION: A(r) > 0 OR B(r) > 0;
                CONFIDENCE: 1;
                SEVERITY: 1;
            }
            "#,
        );
        let p = spec.property("AnyCost").unwrap();
        assert_eq!(p.conditions.len(), 1);
        assert!(matches!(
            p.conditions[0].expr.kind,
            ExprKind::Binary(BinOp::Or, _, _)
        ));
    }

    #[test]
    fn parenthesized_expression_is_not_a_cond_id() {
        let spec = parse_ok(
            r#"
            PROPERTY Paren(Region r) {
                CONDITION: (x) > 0;
                CONFIDENCE: 1;
                SEVERITY: x;
            }
            "#,
        );
        let p = spec.property("Paren").unwrap();
        assert_eq!(p.conditions.len(), 1);
        assert!(p.conditions[0].id.is_none());
        assert!(matches!(
            p.conditions[0].expr.kind,
            ExprKind::Binary(BinOp::Gt, _, _)
        ));
    }

    #[test]
    fn severity_max_aggregate_is_not_arm_combiner() {
        let spec = parse_ok(
            r#"
            PROPERTY AggSev(Region r, TestRun t) {
                CONDITION: TRUE;
                CONFIDENCE: 1;
                SEVERITY: MAX(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t);
            }
            "#,
        );
        let p = spec.property("AggSev").unwrap();
        assert!(!p.severity.is_max);
        assert!(matches!(
            p.severity.arms[0].expr.kind,
            ExprKind::Aggregate { op: AggOp::Max, .. }
        ));
    }

    #[test]
    fn property_end_accepts_brace_semi() {
        // Figure 1 ends properties with `};`
        parse_ok("PROPERTY P(Region r) { CONDITION: TRUE; CONFIDENCE: 1; SEVERITY: 1; };");
        parse_ok("PROPERTY P(Region r) { CONDITION: TRUE; CONFIDENCE: 1; SEVERITY: 1; }");
    }

    #[test]
    fn exists_and_forall_extensions() {
        let e = parse_expr("EXISTS(s IN r.TotTimes WITH s.Incl > 0)").unwrap();
        assert!(matches!(
            e.kind,
            ExprKind::Quantifier {
                q: Quant::Exists,
                ..
            }
        ));
        let e = parse_expr("FORALL(s IN r.TotTimes WITH s.Incl >= 0)").unwrap();
        assert!(matches!(
            e.kind,
            ExprKind::Quantifier {
                q: Quant::Forall,
                ..
            }
        ));
    }

    #[test]
    fn count_set_form() {
        let e = parse_expr("COUNT(r.TotTimes)").unwrap();
        assert!(matches!(e.kind, ExprKind::CountSet(_)));
        let e = parse_expr("COUNT(s.Incl WHERE s IN r.TotTimes AND s.Incl > 0)").unwrap();
        assert!(matches!(
            e.kind,
            ExprKind::Aggregate {
                op: AggOp::Count,
                ..
            }
        ));
    }

    #[test]
    fn nary_max_without_where_is_call() {
        let e = parse_expr("MAX(a, b, c)").unwrap();
        match e.kind {
            ExprKind::Call(id, args) => {
                assert_eq!(id.name, "MAX");
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("precedence broken: {other:?}"),
        }
        let e = parse_expr("a OR b AND c").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Or, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::And, _, _)));
            }
            other => panic!("precedence broken: {other:?}"),
        }
    }

    #[test]
    fn unary_minus_and_not() {
        let e = parse_expr("-a * b").unwrap();
        // (-a) * b
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Mul, _, _)));
        let e = parse_expr("NOT a AND b").unwrap();
        // (NOT a) AND b
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn deep_attribute_chain() {
        let e = parse_expr("sum.Run.NoPe").unwrap();
        match e.kind {
            ExprKind::Attr(inner, attr) => {
                assert_eq!(attr.name, "NoPe");
                assert!(matches!(inner.kind, ExprKind::Attr(_, _)));
            }
            other => panic!("expected attr chain, got {other:?}"),
        }
    }

    #[test]
    fn error_on_garbage_top_level() {
        assert!(parse("class A { int x; } ; ; 42").is_err());
    }

    #[test]
    fn error_recovery_reports_multiple_items() {
        let err = parse(
            r#"
            class Good { int x; }
            class Bad1 { int ; }
            class Bad2 { setof ; }
            "#,
        )
        .unwrap_err();
        assert!(err.len() >= 2, "expected at least two errors, got {err}");
    }

    #[test]
    fn missing_semicolon_in_property_is_error() {
        assert!(
            parse("PROPERTY P(Region r) { CONDITION: TRUE CONFIDENCE: 1; SEVERITY: 1; }").is_err()
        );
    }

    #[test]
    fn constant_declaration_parses() {
        let spec = parse_ok("float ImbalanceThreshold = 0.25; int Limit = 3 + 4;");
        assert_eq!(spec.constants.len(), 2);
        assert_eq!(spec.constants[0].name.name, "ImbalanceThreshold");
        assert!(matches!(
            spec.constants[1].value.kind,
            ExprKind::Binary(BinOp::Add, _, _)
        ));
        assert!(spec.functions.is_empty());
    }

    #[test]
    fn constant_and_function_disambiguate() {
        let spec = parse_ok("float C = 1.0; float F(Region r) = C;");
        assert_eq!(spec.constants.len(), 1);
        assert_eq!(spec.functions.len(), 1);
    }

    #[test]
    fn load_imbalance_property_parses() {
        let spec = parse_ok(
            r#"
            Property LoadImbalance(FunctionCall Call, TestRun t, Region Basis) {
                LET CallTiming ct = UNIQUE ({c IN Call.Sums WITH c.Run == t});
                    float Dev = ct.StdevTime;
                    float Mean = ct.MeanTime;
                IN CONDITION: Dev > ImbalanceThreshold * Mean; CONFIDENCE: 1;
                SEVERITY: Mean / Duration(Basis,t);
            }
            "#,
        );
        let p = spec.property("LoadImbalance").unwrap();
        assert_eq!(p.lets.len(), 3);
        assert_eq!(p.params[0].ty.to_string(), "FunctionCall");
    }
}
