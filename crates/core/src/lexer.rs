//! Hand-written lexer for ASL.
//!
//! Produces a `Vec<Token>` with byte-accurate spans. Comments (`// …` to end
//! of line and `/* … */` block comments) and ASCII whitespace separate
//! tokens. Numeric literals follow the usual `123`, `1.5`, `1e-3`, `2.5E+4`
//! forms; a `.` not followed by a digit terminates an integer so that
//! attribute access such as `Summary(r,t).Incl` lexes correctly.

use crate::diag::{Diagnostic, Diagnostics};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenize a full source string.
///
/// On success returns the token stream terminated by a single
/// [`TokenKind::Eof`] token. Lexical errors (stray characters, unterminated
/// strings/comments, malformed numbers) are collected and returned together.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostics> {
    let mut lx = Lexer::new(source);
    lx.run();
    if lx.diags.has_errors() {
        Err(lx.diags)
    } else {
        Ok(lx.tokens)
    }
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
    diags: Diagnostics,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::with_capacity(src.len() / 4),
            diags: Diagnostics::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens
            .push(Token::new(kind, Span::new(start as u32, self.pos as u32)));
    }

    fn run(&mut self) {
        while let Some(b) = self.peek() {
            let start = self.pos;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.block_comment(start);
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(start),
                b'0'..=b'9' => self.number(start),
                b'"' => self.string(start),
                b'{' => {
                    self.pos += 1;
                    self.push(TokenKind::LBrace, start);
                }
                b'}' => {
                    self.pos += 1;
                    self.push(TokenKind::RBrace, start);
                }
                b'(' => {
                    self.pos += 1;
                    self.push(TokenKind::LParen, start);
                }
                b')' => {
                    self.pos += 1;
                    self.push(TokenKind::RParen, start);
                }
                b';' => {
                    self.pos += 1;
                    self.push(TokenKind::Semi, start);
                }
                b',' => {
                    self.pos += 1;
                    self.push(TokenKind::Comma, start);
                }
                b'.' => {
                    self.pos += 1;
                    self.push(TokenKind::Dot, start);
                }
                b':' => {
                    self.pos += 1;
                    self.push(TokenKind::Colon, start);
                }
                b'+' => {
                    self.pos += 1;
                    self.push(TokenKind::Plus, start);
                }
                b'-' => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        self.push(TokenKind::Arrow, start);
                    } else {
                        self.push(TokenKind::Minus, start);
                    }
                }
                b'*' => {
                    self.pos += 1;
                    self.push(TokenKind::Star, start);
                }
                b'/' => {
                    self.pos += 1;
                    self.push(TokenKind::Slash, start);
                }
                b'%' => {
                    self.pos += 1;
                    self.push(TokenKind::Percent, start);
                }
                b'=' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.push(TokenKind::EqEq, start);
                    } else {
                        self.push(TokenKind::Assign, start);
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.push(TokenKind::NotEq, start);
                    } else {
                        self.diags.push(Diagnostic::error(
                            Span::new(start as u32, self.pos as u32),
                            "unexpected `!`; did you mean `!=` or `NOT`?",
                        ));
                    }
                }
                b'<' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.push(TokenKind::Le, start);
                    } else if self.peek() == Some(b'>') {
                        // SQL-style inequality accepted as an alias.
                        self.pos += 1;
                        self.push(TokenKind::NotEq, start);
                    } else {
                        self.push(TokenKind::Lt, start);
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.push(TokenKind::Ge, start);
                    } else {
                        self.push(TokenKind::Gt, start);
                    }
                }
                other => {
                    self.pos += 1;
                    self.diags.push(Diagnostic::error(
                        Span::new(start as u32, self.pos as u32),
                        format!("unexpected character `{}`", other as char),
                    ));
                }
            }
        }
        let at = self.pos as u32;
        self.tokens
            .push(Token::new(TokenKind::Eof, Span::point(at)));
    }

    fn block_comment(&mut self, start: usize) {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek2()) {
                (Some(b'*'), Some(b'/')) => {
                    self.pos += 2;
                    depth -= 1;
                }
                (Some(b'/'), Some(b'*')) => {
                    self.pos += 2;
                    depth += 1;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => {
                    self.diags.push(Diagnostic::error(
                        Span::new(start as u32, self.pos as u32),
                        "unterminated block comment",
                    ));
                    return;
                }
            }
        }
    }

    fn ident(&mut self, start: usize) {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.push(kind, start);
    }

    fn number(&mut self, start: usize) {
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        // Fractional part: only if `.` is followed by a digit, so that
        // `x.Incl`-style attribute access still works after an integer.
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|b| b.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                is_float = true;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                // Not an exponent after all (e.g. `1e` followed by ident char).
                self.pos = save;
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            match text.parse::<f64>() {
                Ok(v) => self.push(TokenKind::Float(v), start),
                Err(_) => self.diags.push(Diagnostic::error(
                    Span::new(start as u32, self.pos as u32),
                    format!("malformed float literal `{text}`"),
                )),
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => self.push(TokenKind::Int(v), start),
                Err(_) => self.diags.push(Diagnostic::error(
                    Span::new(start as u32, self.pos as u32),
                    format!("integer literal `{text}` out of range"),
                )),
            }
        }
    }

    fn string(&mut self, start: usize) {
        self.pos += 1; // opening quote
                       // Accumulate raw bytes so multi-byte UTF-8 sequences survive, then
                       // validate once at the end.
        let mut value: Vec<u8> = Vec::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => value.push(b'\n'),
                    Some(b't') => value.push(b'\t'),
                    Some(b'\\') => value.push(b'\\'),
                    Some(b'"') => value.push(b'"'),
                    Some(other) => {
                        self.diags.push(Diagnostic::error(
                            Span::new(self.pos as u32 - 2, self.pos as u32),
                            format!("unknown escape `\\{}`", other as char),
                        ));
                    }
                    None => {
                        self.diags.push(Diagnostic::error(
                            Span::new(start as u32, self.pos as u32),
                            "unterminated string literal",
                        ));
                        return;
                    }
                },
                Some(b'\n') | None => {
                    self.diags.push(Diagnostic::error(
                        Span::new(start as u32, self.pos as u32),
                        "unterminated string literal",
                    ));
                    return;
                }
                Some(b) => value.push(b),
            }
        }
        match String::from_utf8(value) {
            Ok(s) => self.push(TokenKind::Str(s), start),
            Err(_) => self.diags.push(Diagnostic::error(
                Span::new(start as u32, self.pos as u32),
                "string literal is not valid UTF-8",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_class_declaration() {
        let ks = kinds("class Program { String Name; }");
        assert_eq!(
            ks,
            vec![
                TokenKind::Class,
                TokenKind::Ident("Program".into()),
                TokenKind::LBrace,
                TokenKind::Ident("String".into()),
                TokenKind::Ident("Name".into()),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn attribute_access_after_call() {
        let ks = kinds("Summary(r,t).Incl");
        assert!(ks.contains(&TokenKind::Dot));
        assert!(ks.contains(&TokenKind::Ident("Incl".into())));
    }

    #[test]
    fn integer_then_dot_ident_is_not_float() {
        let ks = kinds("1.x");
        assert_eq!(
            ks,
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn float_forms() {
        assert_eq!(kinds("1.5")[0], TokenKind::Float(1.5));
        assert_eq!(kinds("2e3")[0], TokenKind::Float(2000.0));
        assert_eq!(kinds("2.5E+1")[0], TokenKind::Float(25.0));
        assert_eq!(kinds("7")[0], TokenKind::Int(7));
    }

    #[test]
    fn operators() {
        let ks = kinds("== != <= >= < > = -> + - * / %");
        assert_eq!(
            ks[..ks.len() - 1],
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Assign,
                TokenKind::Arrow,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
            ]
        );
    }

    #[test]
    fn sql_style_inequality_alias() {
        assert_eq!(kinds("a <> b")[1], TokenKind::NotEq);
    }

    #[test]
    fn line_and_block_comments_are_skipped() {
        let ks = kinds("a // comment\n b /* block /* nested */ still */ c");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("a /* never closed").is_err());
    }

    #[test]
    fn string_literals_with_escapes() {
        let ks = kinds(r#""hello \"world\"\n""#);
        assert_eq!(ks[0], TokenKind::Str("hello \"world\"\n".into()));
    }

    #[test]
    fn utf8_string_literals_survive() {
        let ks = kinds("\"Jülich T3E — λ\"");
        assert_eq!(ks[0], TokenKind::Str("Jülich T3E — λ".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn keywords_in_context() {
        let ks = kinds("PROPERTY P(Region r) { CONDITION: TRUE; }");
        assert_eq!(ks[0], TokenKind::Property);
        assert!(ks.contains(&TokenKind::Condition));
        assert!(ks.contains(&TokenKind::True));
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
        assert_eq!(toks[2].span, Span::point(5));
    }

    #[test]
    fn stray_character_is_error() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn paper_aggregate_expression_lexes() {
        // From the SyncCost property of the paper.
        let src = "SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t AND tt.Type == Barrier)";
        let ks = kinds(src);
        assert_eq!(ks[0], TokenKind::Sum);
        assert!(ks.contains(&TokenKind::Where));
        assert!(ks.contains(&TokenKind::In));
        assert!(ks.contains(&TokenKind::And));
    }

    #[test]
    fn int_out_of_range_is_error() {
        assert!(lex("99999999999999999999999999").is_err());
    }
}
