//! Semantic types and the resolved data-model metadata.

use serde::Serialize;
use std::collections::HashMap;
use std::fmt;

/// A resolved ASL type.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Type {
    /// `int`
    Int,
    /// `float`
    Float,
    /// `bool`
    Bool,
    /// `String`
    Str,
    /// `DateTime`
    DateTime,
    /// A class type, by name.
    Class(String),
    /// An enum type, by name.
    Enum(String),
    /// `setof T`
    Set(Box<Type>),
    /// Poison type produced after an error; compatible with everything so a
    /// single mistake does not cascade.
    Error,
}

impl Type {
    /// True for `int` / `float`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Float | Type::Error)
    }

    /// True if values of this type are ordered (`<`, `<=`, …).
    pub fn is_ordered(&self) -> bool {
        matches!(
            self,
            Type::Int | Type::Float | Type::Str | Type::DateTime | Type::Error
        )
    }

    /// Resolve a builtin type name (`int`, `float`, `bool`, `String`,
    /// `DateTime`). Returns `None` for user-defined names.
    pub fn builtin(name: &str) -> Option<Type> {
        Some(match name {
            "int" => Type::Int,
            "float" => Type::Float,
            "bool" | "boolean" => Type::Bool,
            "String" => Type::Str,
            "DateTime" => Type::DateTime,
            _ => return None,
        })
    }

    /// The element type if this is a set.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Set(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Bool => write!(f, "bool"),
            Type::Str => write!(f, "String"),
            Type::DateTime => write!(f, "DateTime"),
            Type::Class(n) => write!(f, "{n}"),
            Type::Enum(n) => write!(f, "{n}"),
            Type::Set(t) => write!(f, "setof {t}"),
            Type::Error => write!(f, "<error>"),
        }
    }
}

/// A resolved attribute of a class.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttrInfo {
    /// Attribute name.
    pub name: String,
    /// Resolved attribute type.
    pub ty: Type,
    /// Name of the class that declared the attribute (differs from the
    /// queried class for inherited attributes).
    pub declared_in: String,
}

/// Resolved information about a class.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClassInfo {
    /// Class name.
    pub name: String,
    /// Direct superclass, if any.
    pub base: Option<String>,
    /// Attributes declared directly on this class (not inherited).
    pub own_attrs: Vec<AttrInfo>,
}

/// Resolved information about an enum.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EnumInfo {
    /// Enum name.
    pub name: String,
    /// Variants in declaration order.
    pub variants: Vec<String>,
}

impl EnumInfo {
    /// Index of a variant within the declaration order.
    pub fn variant_index(&self, variant: &str) -> Option<usize> {
        self.variants.iter().position(|v| v == variant)
    }
}

/// Signature of a helper function.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub ret: Type,
}

/// Signature of a property (its context parameters).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PropSig {
    /// Property name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, Type)>,
    /// Condition identifiers declared by the property, in order.
    pub condition_ids: Vec<String>,
}

/// The resolved data-model metadata of a checked specification: class
/// hierarchy, enums, function and property signatures. This is the interface
/// both the interpreter (`asl-eval`) and the SQL compiler (`asl-sql`) build
/// on.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Model {
    /// All classes by name.
    pub classes: HashMap<String, ClassInfo>,
    /// All enums by name.
    pub enums: HashMap<String, EnumInfo>,
    /// Map from (globally unique) variant name to owning enum name.
    pub variant_owner: HashMap<String, String>,
    /// Global constants by name (extension).
    pub constants: HashMap<String, Type>,
    /// Helper-function signatures by name.
    pub functions: HashMap<String, FnSig>,
    /// Property signatures by name.
    pub properties: HashMap<String, PropSig>,
}

impl Model {
    /// Resolve a type annotation name into a semantic type.
    pub fn named_type(&self, name: &str) -> Option<Type> {
        if let Some(b) = Type::builtin(name) {
            return Some(b);
        }
        if self.classes.contains_key(name) {
            return Some(Type::Class(name.to_string()));
        }
        if self.enums.contains_key(name) {
            return Some(Type::Enum(name.to_string()));
        }
        None
    }

    /// Look up an attribute on a class, walking the inheritance chain.
    pub fn attr(&self, class: &str, attr: &str) -> Option<&AttrInfo> {
        let mut cur = Some(class);
        while let Some(cname) = cur {
            let ci = self.classes.get(cname)?;
            if let Some(a) = ci.own_attrs.iter().find(|a| a.name == attr) {
                return Some(a);
            }
            cur = ci.base.as_deref();
        }
        None
    }

    /// All attributes of a class, base-class attributes first.
    pub fn all_attrs(&self, class: &str) -> Vec<&AttrInfo> {
        let mut chain = Vec::new();
        let mut cur = Some(class);
        while let Some(cname) = cur {
            match self.classes.get(cname) {
                Some(ci) => {
                    chain.push(ci);
                    cur = ci.base.as_deref();
                }
                None => break,
            }
        }
        chain
            .iter()
            .rev()
            .flat_map(|ci| ci.own_attrs.iter())
            .collect()
    }

    /// True if `sub` equals `sup` or transitively extends it.
    pub fn is_subclass(&self, sub: &str, sup: &str) -> bool {
        let mut cur = Some(sub);
        while let Some(cname) = cur {
            if cname == sup {
                return true;
            }
            cur = self.classes.get(cname).and_then(|ci| ci.base.as_deref());
        }
        false
    }

    /// Can a value of type `from` be used where `to` is expected?
    /// Allows `int → float` widening and subclass-to-superclass references.
    pub fn assignable(&self, from: &Type, to: &Type) -> bool {
        match (from, to) {
            (Type::Error, _) | (_, Type::Error) => true,
            (a, b) if a == b => true,
            (Type::Int, Type::Float) => true,
            (Type::Class(a), Type::Class(b)) => self.is_subclass(a, b),
            (Type::Set(a), Type::Set(b)) => self.assignable(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with_hierarchy() -> Model {
        let mut m = Model::default();
        m.classes.insert(
            "Base".into(),
            ClassInfo {
                name: "Base".into(),
                base: None,
                own_attrs: vec![AttrInfo {
                    name: "Id".into(),
                    ty: Type::Int,
                    declared_in: "Base".into(),
                }],
            },
        );
        m.classes.insert(
            "Derived".into(),
            ClassInfo {
                name: "Derived".into(),
                base: Some("Base".into()),
                own_attrs: vec![AttrInfo {
                    name: "Extra".into(),
                    ty: Type::Float,
                    declared_in: "Derived".into(),
                }],
            },
        );
        m
    }

    #[test]
    fn builtin_names() {
        assert_eq!(Type::builtin("int"), Some(Type::Int));
        assert_eq!(Type::builtin("String"), Some(Type::Str));
        assert_eq!(Type::builtin("Region"), None);
    }

    #[test]
    fn attr_lookup_walks_inheritance() {
        let m = model_with_hierarchy();
        assert_eq!(m.attr("Derived", "Id").unwrap().ty, Type::Int);
        assert_eq!(m.attr("Derived", "Extra").unwrap().ty, Type::Float);
        assert!(m.attr("Base", "Extra").is_none());
    }

    #[test]
    fn all_attrs_base_first() {
        let m = model_with_hierarchy();
        let names: Vec<_> = m.all_attrs("Derived").iter().map(|a| &a.name).collect();
        assert_eq!(names, ["Id", "Extra"]);
    }

    #[test]
    fn subclass_relation() {
        let m = model_with_hierarchy();
        assert!(m.is_subclass("Derived", "Base"));
        assert!(m.is_subclass("Base", "Base"));
        assert!(!m.is_subclass("Base", "Derived"));
    }

    #[test]
    fn assignability() {
        let m = model_with_hierarchy();
        assert!(m.assignable(&Type::Int, &Type::Float));
        assert!(!m.assignable(&Type::Float, &Type::Int));
        assert!(m.assignable(&Type::Class("Derived".into()), &Type::Class("Base".into())));
        assert!(!m.assignable(&Type::Class("Base".into()), &Type::Class("Derived".into())));
        assert!(m.assignable(
            &Type::Set(Box::new(Type::Class("Derived".into()))),
            &Type::Set(Box::new(Type::Class("Base".into())))
        ));
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Set(Box::new(Type::Float)).to_string(), "setof float");
        assert_eq!(Type::Class("Region".into()).to_string(), "Region");
    }
}
