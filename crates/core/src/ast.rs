//! Abstract syntax tree for ASL specifications.
//!
//! A [`Specification`] holds the two sections described in §4 of the paper:
//! the **data model** (classes and enums) and the **performance properties**
//! (helper functions and property declarations). The expression grammar
//! covers everything used in the paper's examples — set comprehensions,
//! `UNIQUE`, quantified aggregates (`SUM(e WHERE x IN s AND p)`), attribute
//! chains, calls, arithmetic and boolean operators — plus the documented
//! extensions `EXISTS`/`FORALL` and `COUNT`.

use crate::span::Span;
use serde::Serialize;
use std::fmt;

/// An identifier with its source location.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Ident {
    /// The identifier text.
    pub name: String,
    /// Source location.
    pub span: Span,
}

impl Ident {
    /// Construct an identifier.
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident {
            name: name.into(),
            span,
        }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A syntactic type annotation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TypeExpr {
    /// The shape of the annotation.
    pub kind: TypeExprKind,
    /// Source location.
    pub span: Span,
}

/// Shape of a type annotation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TypeExprKind {
    /// A named type: builtin (`int`, `float`, `bool`, `String`, `DateTime`),
    /// class, or enum.
    Named(String),
    /// `setof T` — a set of named-type elements.
    Setof(String),
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TypeExprKind::Named(n) => write!(f, "{n}"),
            TypeExprKind::Setof(n) => write!(f, "setof {n}"),
        }
    }
}

/// A complete ASL specification (data model + properties).
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct Specification {
    /// Class declarations of the data model section.
    pub classes: Vec<ClassDecl>,
    /// Enumeration declarations (e.g. `TimingType`).
    pub enums: Vec<EnumDecl>,
    /// Global constant definitions (extension; e.g. the tool-defined
    /// `ImbalanceThreshold` referenced by the paper's `LoadImbalance`).
    pub constants: Vec<ConstDecl>,
    /// Helper function definitions (e.g. `Summary`, `Duration`).
    pub functions: Vec<FunctionDecl>,
    /// Performance property declarations.
    pub properties: Vec<PropertyDecl>,
}

/// A global constant: `Type Name = expr;`
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConstDecl {
    /// Declared type.
    pub ty: TypeExpr,
    /// Constant name.
    pub name: Ident,
    /// Defining expression (evaluated once; may reference earlier
    /// constants but not data-model objects).
    pub value: Expr,
    /// Full declaration span.
    pub span: Span,
}

/// `class Name [extends Base] { attrs… }`
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClassDecl {
    /// Class name.
    pub name: Ident,
    /// Optional superclass (single inheritance, §4.1).
    pub base: Option<Ident>,
    /// Attribute declarations in source order.
    pub attrs: Vec<AttrDecl>,
    /// Full declaration span.
    pub span: Span,
}

/// A single attribute inside a class body: `Type Name;`
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttrDecl {
    /// Declared type.
    pub ty: TypeExpr,
    /// Attribute name.
    pub name: Ident,
    /// Declaration span.
    pub span: Span,
}

/// `enum Name { A, B, C }`
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EnumDecl {
    /// Enum type name.
    pub name: Ident,
    /// Variant names in declaration order.
    pub variants: Vec<Ident>,
    /// Full declaration span.
    pub span: Span,
}

/// A typed parameter: `Region r`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Param {
    /// Parameter type.
    pub ty: TypeExpr,
    /// Parameter name.
    pub name: Ident,
    /// Declaration span.
    pub span: Span,
}

/// A helper function: `RetType Name(params) = expr;`
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FunctionDecl {
    /// Declared return type.
    pub ret_ty: TypeExpr,
    /// Function name.
    pub name: Ident,
    /// Parameter list.
    pub params: Vec<Param>,
    /// Defining expression.
    pub body: Expr,
    /// Full declaration span.
    pub span: Span,
}

/// A performance property declaration (Figure 1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PropertyDecl {
    /// Property name.
    pub name: Ident,
    /// Context parameters (e.g. `Region r, TestRun t, Region Basis`).
    pub params: Vec<Param>,
    /// `LET` definitions, in scope for the three sections below.
    pub lets: Vec<LetDef>,
    /// The `CONDITION:` section — one or more (possibly named) conditions.
    pub conditions: Vec<Condition>,
    /// The `CONFIDENCE:` section.
    pub confidence: ArmSpec,
    /// The `SEVERITY:` section.
    pub severity: ArmSpec,
    /// Full declaration span.
    pub span: Span,
}

/// A `LET` binding: `Type Name = expr;`
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LetDef {
    /// Declared type of the binding.
    pub ty: TypeExpr,
    /// Bound name.
    pub name: Ident,
    /// Bound expression.
    pub value: Expr,
    /// Declaration span.
    pub span: Span,
}

/// One condition of a property, optionally labelled with a condition id.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Condition {
    /// Condition identifier, referenced by guarded confidence/severity arms.
    pub id: Option<Ident>,
    /// The boolean predicate.
    pub expr: Expr,
    /// Source span.
    pub span: Span,
}

/// A confidence or severity section: either a single expression or
/// `MAX( arm, arm, … )` where each arm may be guarded by a condition id.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ArmSpec {
    /// True if written with the `MAX( … )` combiner.
    pub is_max: bool,
    /// The arms (a single unguarded arm when `is_max` is false).
    pub arms: Vec<Arm>,
    /// Source span of the section.
    pub span: Span,
}

/// One arm of a confidence/severity section: `[(cond-id) ->] expr`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Arm {
    /// Optional guard naming a condition id.
    pub guard: Option<Ident>,
    /// The arithmetic expression of this arm.
    pub expr: Expr,
    /// Source span.
    pub span: Span,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// Source text of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// True for `+ - * / %`.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    /// True for `== != < <= > >=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for `AND` / `OR`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Boolean negation `NOT e`.
    Not,
}

/// Aggregate operators usable in the quantified form
/// `AGG(value WHERE binder IN source [AND pred])`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AggOp {
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG` (extension)
    Avg,
    /// `COUNT` (extension)
    Count,
}

impl AggOp {
    /// Keyword text.
    pub fn keyword(self) -> &'static str {
        match self {
            AggOp::Sum => "SUM",
            AggOp::Min => "MIN",
            AggOp::Max => "MAX",
            AggOp::Avg => "AVG",
            AggOp::Count => "COUNT",
        }
    }
}

/// Quantifiers (documented extension beyond the paper's examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Quant {
    /// `EXISTS(x IN s WITH p)`
    Exists,
    /// `FORALL(x IN s WITH p)`
    Forall,
}

impl Quant {
    /// Keyword text.
    pub fn keyword(self) -> &'static str {
        match self {
            Quant::Exists => "EXISTS",
            Quant::Forall => "FORALL",
        }
    }
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Expr {
    /// The expression node.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Construct an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// String literal.
    StrLit(String),
    /// Boolean literal.
    BoolLit(bool),
    /// Variable reference (parameter, LET binding, binder, or enum variant).
    Var(String),
    /// Attribute access `base.Attr`.
    Attr(Box<Expr>, Ident),
    /// Function call `Name(args…)`. Also used for the n-ary numeric
    /// builtins `MAX`/`MIN` when written without a `WHERE` clause.
    Call(Ident, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Set comprehension `{ binder IN source WITH pred }`.
    SetComp {
        /// The bound element variable.
        binder: Ident,
        /// The set being filtered.
        source: Box<Expr>,
        /// The filter predicate (binder in scope).
        pred: Box<Expr>,
    },
    /// `UNIQUE(set)` — the single element of a singleton set.
    Unique(Box<Expr>),
    /// Quantified aggregate `AGG(value WHERE binder IN source [AND pred])`.
    Aggregate {
        /// Which aggregate.
        op: AggOp,
        /// Value expression (binder in scope).
        value: Box<Expr>,
        /// The bound element variable.
        binder: Ident,
        /// The set being aggregated over.
        source: Box<Expr>,
        /// Optional additional predicate (binder in scope).
        pred: Option<Box<Expr>>,
    },
    /// `EXISTS` / `FORALL` quantifier over a set.
    Quantifier {
        /// Which quantifier.
        q: Quant,
        /// The bound element variable.
        binder: Ident,
        /// The set quantified over.
        source: Box<Expr>,
        /// The predicate (binder in scope).
        pred: Box<Expr>,
    },
    /// `COUNT(set)` — cardinality of a set expression.
    CountSet(Box<Expr>),
}

impl Specification {
    /// Find a class declaration by name.
    pub fn class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes.iter().find(|c| c.name.name == name)
    }

    /// Find an enum declaration by name.
    pub fn enum_decl(&self, name: &str) -> Option<&EnumDecl> {
        self.enums.iter().find(|e| e.name.name == name)
    }

    /// Find a helper function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDecl> {
        self.functions.iter().find(|f| f.name.name == name)
    }

    /// Find a global constant by name.
    pub fn constant(&self, name: &str) -> Option<&ConstDecl> {
        self.constants.iter().find(|c| c.name.name == name)
    }

    /// Find a property by name.
    pub fn property(&self, name: &str) -> Option<&PropertyDecl> {
        self.properties.iter().find(|p| p.name.name == name)
    }

    /// Merge another specification into this one (used to layer a property
    /// suite on top of a shared data model).
    pub fn extend(&mut self, other: Specification) {
        self.classes.extend(other.classes);
        self.enums.extend(other.enums);
        self.constants.extend(other.constants);
        self.functions.extend(other.functions);
        self.properties.extend(other.properties);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Add.is_arithmetic());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::And.is_logical());
        assert_eq!(BinOp::Le.symbol(), "<=");
    }

    #[test]
    fn spec_lookup_helpers() {
        let mut spec = Specification::default();
        spec.classes.push(ClassDecl {
            name: Ident::new("Region", Span::default()),
            base: None,
            attrs: vec![],
            span: Span::default(),
        });
        assert!(spec.class("Region").is_some());
        assert!(spec.class("Nope").is_none());
    }

    #[test]
    fn spec_extend_merges() {
        let mut a = Specification::default();
        a.classes.push(ClassDecl {
            name: Ident::new("A", Span::default()),
            base: None,
            attrs: vec![],
            span: Span::default(),
        });
        let mut b = Specification::default();
        b.enums.push(EnumDecl {
            name: Ident::new("E", Span::default()),
            variants: vec![],
            span: Span::default(),
        });
        a.extend(b);
        assert_eq!(a.classes.len(), 1);
        assert_eq!(a.enums.len(), 1);
    }
}
