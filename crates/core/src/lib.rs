//! # `asl-core` — the APART Specification Language
//!
//! This crate implements the specification language described in
//! *Specification Techniques for Automatic Performance Analysis Tools*
//! (Gerndt & Eßer, FZJ-ZAM-IB-9921 / CPC 2000): the **ASL** language used by
//! the KOJAK environment to describe
//!
//! 1. the **performance data model** a tool consumes (Java-like classes with
//!    attributes, single inheritance and `setof` collection types — §4.1 of
//!    the paper), and
//! 2. **performance properties** (§4.2, Figure 1): named, parameterized
//!    specifications with `LET … IN` local definitions and
//!    `CONDITION` / `CONFIDENCE` / `SEVERITY` sections.
//!
//! The crate is a complete language front-end:
//!
//! * [`lexer`] — hand-written tokenizer with precise byte spans,
//! * [`parser`] — recursive-descent parser producing the [`ast`] tree,
//! * [`check`] — a nominal type checker resolving classes, enums, functions
//!   and property signatures (see [`types`]),
//! * [`pretty`] — a canonical pretty-printer whose output re-parses to the
//!   same tree (tested by property-based round-trip tests),
//! * [`diag`] / [`span`] — diagnostics with source locations.
//!
//! ## Quick example
//!
//! ```
//! use asl_core::parse_and_check;
//!
//! let src = r#"
//! class TestRun { int NoPe; }
//! class Region  { setof TotalTiming TotTimes; }
//! class TotalTiming { TestRun Run; float Incl; float Excl; float Ovhd; }
//!
//! float Duration(Region r, TestRun t) =
//!     UNIQUE({s IN r.TotTimes WITH s.Run == t}).Incl;
//!
//! PROPERTY MeasuredCost(Region r, TestRun t, Region Basis) {
//!     LET float Cost = UNIQUE({s IN r.TotTimes WITH s.Run == t}).Ovhd;
//!     IN
//!     CONDITION:  Cost > 0;
//!     CONFIDENCE: 1;
//!     SEVERITY:   Cost / Duration(Basis, t);
//! }
//! "#;
//! let spec = parse_and_check(src).expect("valid specification");
//! assert_eq!(spec.properties().len(), 1);
//! assert_eq!(spec.properties()[0].name.name, "MeasuredCost");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod check;
pub mod diag;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod types;

pub use ast::Specification;
pub use check::{check, CheckedSpec};
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use intern::Symbol;
pub use parser::parse;
pub use span::{SourceMap, Span};

/// Parse and type-check an ASL specification in one step.
///
/// Returns the checked specification (AST plus resolved type information) or
/// the full list of diagnostics produced by the front-end.
pub fn parse_and_check(source: &str) -> Result<CheckedSpec, Diagnostics> {
    let spec = parse(source)?;
    check(&spec)
}
