//! Token definitions for the ASL lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
///
/// Keyword policy: section and expression keywords are recognized in their
/// exact uppercase spelling (`LET`, `IN`, `SUM`, `MAX`, …) plus the single
/// alternative `Property` for `PROPERTY`, because the paper's Figure 1 uses
/// `PROPERTY` while its worked examples write `Property`. Everything else —
/// including lowercase `sum`, which the paper itself uses as a comprehension
/// binder — lexes as an identifier. Declaration keywords (`class`, `enum`,
/// `setof`, `extends`) are lowercase, matching every occurrence in the
/// paper.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // ---- literals & identifiers -------------------------------------------------
    /// An identifier such as `Region` or `TotTimes`.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A double-quoted string literal (value has escapes resolved).
    Str(String),

    // ---- case-insensitive section / expression keywords -------------------------
    /// `PROPERTY`
    Property,
    /// `TEMPLATE` (ASL report extension; reserved)
    Template,
    /// `LET`
    Let,
    /// `IN`
    In,
    /// `CONDITION`
    Condition,
    /// `CONFIDENCE`
    Confidence,
    /// `SEVERITY`
    Severity,
    /// `MAX`
    Max,
    /// `MIN`
    Min,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `COUNT`
    Count,
    /// `UNIQUE`
    Unique,
    /// `EXISTS`
    Exists,
    /// `FORALL`
    Forall,
    /// `WHERE`
    Where,
    /// `WITH`
    With,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `TRUE`
    True,
    /// `FALSE`
    False,

    // ---- lowercase declaration keywords -----------------------------------------
    /// `class`
    Class,
    /// `enum`
    Enum,
    /// `setof`
    Setof,
    /// `extends`
    Extends,

    // ---- punctuation --------------------------------------------------------------
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable name used in parser error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The canonical source text for fixed tokens (empty for variable ones).
    pub fn lexeme(&self) -> &'static str {
        match self {
            TokenKind::Property => "PROPERTY",
            TokenKind::Template => "TEMPLATE",
            TokenKind::Let => "LET",
            TokenKind::In => "IN",
            TokenKind::Condition => "CONDITION",
            TokenKind::Confidence => "CONFIDENCE",
            TokenKind::Severity => "SEVERITY",
            TokenKind::Max => "MAX",
            TokenKind::Min => "MIN",
            TokenKind::Sum => "SUM",
            TokenKind::Avg => "AVG",
            TokenKind::Count => "COUNT",
            TokenKind::Unique => "UNIQUE",
            TokenKind::Exists => "EXISTS",
            TokenKind::Forall => "FORALL",
            TokenKind::Where => "WHERE",
            TokenKind::With => "WITH",
            TokenKind::And => "AND",
            TokenKind::Or => "OR",
            TokenKind::Not => "NOT",
            TokenKind::True => "TRUE",
            TokenKind::False => "FALSE",
            TokenKind::Class => "class",
            TokenKind::Enum => "enum",
            TokenKind::Setof => "setof",
            TokenKind::Extends => "extends",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::Colon => ":",
            TokenKind::Arrow => "->",
            TokenKind::Assign => "=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            _ => "",
        }
    }

    /// Look up a keyword by its exact spelling; returns `None` for idents.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "class" => TokenKind::Class,
            "enum" => TokenKind::Enum,
            "setof" => TokenKind::Setof,
            "extends" => TokenKind::Extends,
            "PROPERTY" | "Property" => TokenKind::Property,
            "TEMPLATE" => TokenKind::Template,
            "LET" => TokenKind::Let,
            "IN" => TokenKind::In,
            "CONDITION" => TokenKind::Condition,
            "CONFIDENCE" => TokenKind::Confidence,
            "SEVERITY" => TokenKind::Severity,
            "MAX" => TokenKind::Max,
            "MIN" => TokenKind::Min,
            "SUM" => TokenKind::Sum,
            "AVG" => TokenKind::Avg,
            "COUNT" => TokenKind::Count,
            "UNIQUE" => TokenKind::Unique,
            "EXISTS" => TokenKind::Exists,
            "FORALL" => TokenKind::Forall,
            "WHERE" => TokenKind::Where,
            "WITH" => TokenKind::With,
            "AND" => TokenKind::And,
            "OR" => TokenKind::Or,
            "NOT" => TokenKind::Not,
            "TRUE" => TokenKind::True,
            "FALSE" => TokenKind::False,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it appears in the source.
    pub span: Span,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_accepts_both_paper_spellings() {
        assert_eq!(TokenKind::keyword("Property"), Some(TokenKind::Property));
        assert_eq!(TokenKind::keyword("PROPERTY"), Some(TokenKind::Property));
        assert_eq!(TokenKind::keyword("property"), None);
        assert_eq!(TokenKind::keyword("CONDITION"), Some(TokenKind::Condition));
        assert_eq!(TokenKind::keyword("Condition"), None);
    }

    #[test]
    fn lowercase_sum_is_an_identifier() {
        // The paper uses `sum` as a comprehension binder in the
        // SublinearSpeedup property; it must not collide with `SUM`.
        assert_eq!(TokenKind::keyword("sum"), None);
        assert_eq!(TokenKind::keyword("SUM"), Some(TokenKind::Sum));
        assert_eq!(TokenKind::keyword("min"), None);
    }

    #[test]
    fn declaration_keywords_are_lowercase_only() {
        assert_eq!(TokenKind::keyword("class"), Some(TokenKind::Class));
        assert_eq!(TokenKind::keyword("Class"), None);
        assert_eq!(TokenKind::keyword("SETOF"), None);
        assert_eq!(TokenKind::keyword("setof"), Some(TokenKind::Setof));
    }

    #[test]
    fn non_keywords_are_none() {
        assert_eq!(TokenKind::keyword("Region"), None);
        assert_eq!(TokenKind::keyword("TotTimes"), None);
        // `MinPeSum` must lex as an identifier, not the MIN keyword.
        assert_eq!(TokenKind::keyword("MinPeSum"), None);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Le.describe(), "`<=`");
    }
}
