//! Global string interning.
//!
//! The evaluation hot path compares class names, enum variants and
//! attribute names millions of times per analysis; comparing (and cloning)
//! heap `String`s there is pure overhead. A [`Symbol`] is a `u32` handle
//! into a process-wide, append-only string table: interning a name costs
//! one hash lookup, after which equality is a single integer compare and
//! copying is free.
//!
//! Interned strings are leaked (the table lives for the process), so
//! [`Symbol::as_str`] can hand out `&'static str` — downstream code resolves
//! names once at compile time and keeps the static reference.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A handle to an interned string. Equality and hashing operate on the
/// `u32` id; two symbols are equal iff their strings are equal.
///
/// Symbols deliberately do **not** implement `Ord`: ids reflect interning
/// order, not lexicographic order. Sort by [`Symbol::as_str`] when a
/// user-visible ordering is needed.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

#[derive(Default)]
struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(Interner::default()))
}

impl Symbol {
    /// Intern a string, returning its stable symbol.
    pub fn intern(name: &str) -> Symbol {
        {
            let t = table().read().expect("interner poisoned");
            if let Some(&id) = t.by_name.get(name) {
                return Symbol(id);
            }
        }
        let mut t = table().write().expect("interner poisoned");
        if let Some(&id) = t.by_name.get(name) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(t.names.len()).expect("interner overflow");
        t.names.push(leaked);
        t.by_name.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string. The reference is `'static` because the table
    /// never frees entries.
    pub fn as_str(self) -> &'static str {
        table().read().expect("interner poisoned").names[self.0 as usize]
    }

    /// The raw table id (diagnostics only; ids are not stable across
    /// processes).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("Region");
        let b = Symbol::intern("Region");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "Region");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("TotTimes"), Symbol::intern("TypTimes"));
    }

    #[test]
    fn compares_against_str() {
        let s = Symbol::intern("Barrier");
        assert!(s == "Barrier");
        assert!(s != "Lock");
    }

    #[test]
    fn display_roundtrips() {
        assert_eq!(Symbol::intern("NoPe").to_string(), "NoPe");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("concurrent-case")))
            .collect();
        let ids: Vec<u32> = handles
            .into_iter()
            .map(|h| h.join().unwrap().id())
            .collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
