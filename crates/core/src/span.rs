//! Byte-offset source spans and line/column mapping.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Create a span from byte offsets.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-length span at a byte offset (used for EOF diagnostics).
    pub fn point(at: u32) -> Self {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// True if the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Extract the spanned text from the given source.
    pub fn slice(self, source: &str) -> &str {
        &source[self.start as usize..self.end as usize]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in bytes within the line).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets to line/column positions for diagnostic rendering.
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Byte offset at which each line starts. `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    len: u32,
}

impl SourceMap {
    /// Build a source map by scanning the source once for newlines.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            line_starts,
            len: source.len() as u32,
        }
    }

    /// Convert a byte offset into a line/column pair. Offsets past the end
    /// of the source are clamped to the final position.
    pub fn locate(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.len);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(exact) => exact,
            Err(next) => next - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Number of lines in the mapped source.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn span_slice_extracts_text() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).slice(src), "world");
    }

    #[test]
    fn span_point_is_empty() {
        assert!(Span::point(5).is_empty());
        assert_eq!(Span::point(5).len(), 0);
    }

    #[test]
    fn locate_first_line() {
        let sm = SourceMap::new("abc\ndef");
        assert_eq!(sm.locate(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.locate(2), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn locate_after_newline() {
        let sm = SourceMap::new("abc\ndef\nghi");
        assert_eq!(sm.locate(4), LineCol { line: 2, col: 1 });
        assert_eq!(sm.locate(8), LineCol { line: 3, col: 1 });
        assert_eq!(sm.locate(10), LineCol { line: 3, col: 3 });
    }

    #[test]
    fn locate_clamps_past_end() {
        let sm = SourceMap::new("ab");
        assert_eq!(sm.locate(100), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn locate_on_newline_byte() {
        let sm = SourceMap::new("ab\ncd");
        // The newline byte itself belongs to line 1.
        assert_eq!(sm.locate(2), LineCol { line: 1, col: 3 });
        assert_eq!(sm.locate(3), LineCol { line: 2, col: 1 });
    }

    #[test]
    fn empty_source() {
        let sm = SourceMap::new("");
        assert_eq!(sm.locate(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.line_count(), 1);
    }
}
