//! Canonical pretty-printer for ASL.
//!
//! The printer produces a normalized layout whose output re-parses to an
//! equal AST (`parse ∘ pretty = id` up to spans) — verified by round-trip
//! tests. Operator printing is precedence-aware, inserting only necessary
//! parentheses.

use crate::ast::*;
use std::fmt::Write;

/// Pretty-print a full specification.
pub fn print_spec(spec: &Specification) -> String {
    let mut out = String::new();
    for e in &spec.enums {
        print_enum(&mut out, e);
        out.push('\n');
    }
    for c in &spec.classes {
        print_class(&mut out, c);
        out.push('\n');
    }
    for c in &spec.constants {
        let _ = writeln!(out, "{} {} = {};\n", c.ty, c.name, print_expr(&c.value));
    }
    for f in &spec.functions {
        print_function(&mut out, f);
        out.push('\n');
    }
    for p in &spec.properties {
        print_property(&mut out, p);
        out.push('\n');
    }
    out
}

fn print_enum(out: &mut String, e: &EnumDecl) {
    let _ = write!(out, "enum {} {{ ", e.name);
    for (i, v) in e.variants.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.name);
    }
    out.push_str(" }\n");
}

fn print_class(out: &mut String, c: &ClassDecl) {
    let _ = write!(out, "class {}", c.name);
    if let Some(b) = &c.base {
        let _ = write!(out, " extends {b}");
    }
    out.push_str(" {\n");
    for a in &c.attrs {
        let _ = writeln!(out, "    {} {};", a.ty, a.name);
    }
    out.push_str("}\n");
}

fn print_function(out: &mut String, f: &FunctionDecl) {
    let _ = write!(out, "{} {}(", f.ret_ty, f.name);
    print_params(out, &f.params);
    out.push_str(") =\n    ");
    out.push_str(&print_expr(&f.body));
    out.push_str(";\n");
}

fn print_params(out: &mut String, params: &[Param]) {
    for (i, p) in params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", p.ty, p.name);
    }
}

fn print_property(out: &mut String, p: &PropertyDecl) {
    let _ = write!(out, "PROPERTY {}(", p.name);
    print_params(out, &p.params);
    out.push_str(") {\n");
    if !p.lets.is_empty() {
        out.push_str("    LET ");
        for (i, l) in p.lets.iter().enumerate() {
            if i > 0 {
                out.push_str("        ");
            }
            let _ = writeln!(out, "{} {} = {};", l.ty, l.name, print_expr(&l.value));
        }
        out.push_str("    IN\n");
    }
    out.push_str("    CONDITION: ");
    for (i, c) in p.conditions.iter().enumerate() {
        if i > 0 {
            out.push_str(" OR ");
        }
        if let Some(id) = &c.id {
            let _ = write!(out, "({id}) ");
        }
        out.push_str(&print_expr(&c.expr));
    }
    out.push_str(";\n");
    out.push_str("    CONFIDENCE: ");
    print_arm_spec(out, &p.confidence);
    out.push_str(";\n");
    out.push_str("    SEVERITY: ");
    print_arm_spec(out, &p.severity);
    out.push_str(";\n}\n");
}

fn print_arm_spec(out: &mut String, spec: &ArmSpec) {
    if spec.is_max {
        out.push_str("MAX(");
        for (i, arm) in spec.arms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            if let Some(g) = &arm.guard {
                let _ = write!(out, "({g}) -> ");
            }
            out.push_str(&print_expr(&arm.expr));
        }
        out.push(')');
    } else {
        let arm = &spec.arms[0];
        if let Some(g) = &arm.guard {
            let _ = write!(out, "({g}) -> ");
        }
        out.push_str(&print_expr(&arm.expr));
    }
}

/// Binding strength used to decide parenthesization. Larger binds tighter.
fn precedence(e: &ExprKind) -> u8 {
    match e {
        ExprKind::Binary(BinOp::Or, _, _) => 1,
        ExprKind::Binary(BinOp::And, _, _) => 2,
        ExprKind::Unary(UnOp::Not, _) => 3,
        ExprKind::Binary(op, _, _) if op.is_comparison() => 4,
        ExprKind::Binary(BinOp::Add | BinOp::Sub, _, _) => 5,
        ExprKind::Binary(BinOp::Mul | BinOp::Div | BinOp::Mod, _, _) => 6,
        ExprKind::Unary(UnOp::Neg, _) => 7,
        _ => 10,
    }
}

/// Pretty-print a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e);
    s
}

/// Print a binder source (`x IN <source>`): the parser reads it at
/// comparison level, so anything looser (NOT/AND/OR) needs parentheses.
fn write_source(out: &mut String, source: &Expr) {
    write_child(out, source, 4, false);
}

fn write_child(out: &mut String, child: &Expr, parent_prec: u8, tighter: bool) {
    let cp = precedence(&child.kind);
    let need = if tighter {
        cp <= parent_prec
    } else {
        cp < parent_prec
    };
    if need {
        out.push('(');
        write_expr(out, child);
        out.push(')');
    } else {
        write_expr(out, child);
    }
}

fn write_expr(out: &mut String, e: &Expr) {
    match &e.kind {
        ExprKind::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::FloatLit(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        ExprKind::StrLit(s) => {
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        ExprKind::BoolLit(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
        ExprKind::Var(n) => out.push_str(n),
        ExprKind::Attr(base, attr) => {
            let bp = precedence(&base.kind);
            if bp < 10 {
                out.push('(');
                write_expr(out, base);
                out.push(')');
            } else {
                write_expr(out, base);
            }
            let _ = write!(out, ".{attr}");
        }
        ExprKind::Call(name, args) => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a);
            }
            out.push(')');
        }
        ExprKind::Unary(op, inner) => {
            let p = precedence(&e.kind);
            match op {
                UnOp::Neg => {
                    out.push('-');
                    write_child(out, inner, p, true);
                }
                UnOp::Not => {
                    out.push_str("NOT ");
                    write_child(out, inner, p, true);
                }
            }
        }
        ExprKind::Binary(op, lhs, rhs) => {
            let p = precedence(&e.kind);
            // Left-associative operators: the left child may share the
            // precedence. Comparisons are *non-associative* in the grammar
            // (a single optional operator), so a comparison child on either
            // side needs parentheses.
            write_child(out, lhs, p, op.is_comparison());
            let _ = write!(out, " {} ", op.symbol());
            write_child(out, rhs, p, true);
        }
        ExprKind::SetComp {
            binder,
            source,
            pred,
        } => {
            let _ = write!(out, "{{{binder} IN ");
            write_source(out, source);
            out.push_str(" WITH ");
            write_expr(out, pred);
            out.push('}');
        }
        ExprKind::Unique(inner) => {
            out.push_str("UNIQUE(");
            write_expr(out, inner);
            out.push(')');
        }
        ExprKind::Aggregate {
            op,
            value,
            binder,
            source,
            pred,
        } => {
            let _ = write!(out, "{}(", op.keyword());
            write_expr(out, value);
            let _ = write!(out, " WHERE {binder} IN ");
            write_source(out, source);
            if let Some(p) = pred {
                out.push_str(" AND ");
                write_expr(out, p);
            }
            out.push(')');
        }
        ExprKind::Quantifier {
            q,
            binder,
            source,
            pred,
        } => {
            let _ = write!(out, "{}({binder} IN ", q.keyword());
            write_source(out, source);
            out.push_str(" WITH ");
            write_expr(out, pred);
            out.push(')');
        }
        ExprKind::CountSet(inner) => {
            out.push_str("COUNT(");
            write_expr(out, inner);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    /// Strip spans so ASTs can be compared structurally after a round-trip.
    fn normalize_expr(e: &mut Expr) {
        e.span = crate::span::Span::default();
        match &mut e.kind {
            ExprKind::Attr(b, a) => {
                normalize_expr(b);
                a.span = crate::span::Span::default();
            }
            ExprKind::Call(n, args) => {
                n.span = crate::span::Span::default();
                args.iter_mut().for_each(normalize_expr);
            }
            ExprKind::Unary(_, i) | ExprKind::Unique(i) | ExprKind::CountSet(i) => {
                normalize_expr(i)
            }
            ExprKind::Binary(_, l, r) => {
                normalize_expr(l);
                normalize_expr(r);
            }
            ExprKind::SetComp {
                binder,
                source,
                pred,
            } => {
                binder.span = crate::span::Span::default();
                normalize_expr(source);
                normalize_expr(pred);
            }
            ExprKind::Aggregate {
                value,
                binder,
                source,
                pred,
                ..
            } => {
                binder.span = crate::span::Span::default();
                normalize_expr(value);
                normalize_expr(source);
                if let Some(p) = pred {
                    normalize_expr(p);
                }
            }
            ExprKind::Quantifier {
                binder,
                source,
                pred,
                ..
            } => {
                binder.span = crate::span::Span::default();
                normalize_expr(source);
                normalize_expr(pred);
            }
            _ => {}
        }
    }

    fn roundtrip_expr(src: &str) {
        let mut e1 = parse_expr(src).expect("initial parse");
        let printed = print_expr(&e1);
        let mut e2 =
            parse_expr(&printed).unwrap_or_else(|d| panic!("reparse of `{printed}` failed: {d}"));
        normalize_expr(&mut e1);
        normalize_expr(&mut e2);
        assert_eq!(e1, e2, "round-trip changed `{src}` -> `{printed}`");
    }

    #[test]
    fn roundtrip_simple_expressions() {
        roundtrip_expr("1 + 2 * 3");
        roundtrip_expr("(1 + 2) * 3");
        roundtrip_expr("a.b.c");
        roundtrip_expr("-a * b");
        roundtrip_expr("-(a * b)");
        roundtrip_expr("NOT a AND b");
        roundtrip_expr("NOT (a AND b)");
        roundtrip_expr("a OR b AND c");
        roundtrip_expr("(a OR b) AND c");
    }

    #[test]
    fn roundtrip_paper_expressions() {
        roundtrip_expr("UNIQUE({s IN r.TotTimes WITH s.Run == t}).Incl");
        roundtrip_expr(
            "SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t AND tt.Type == Barrier)",
        );
        roundtrip_expr("MIN(s.Run.NoPe WHERE s IN r.TotTimes)");
        roundtrip_expr("Duration(r, t) - Duration(r, MinPeSum.Run)");
        roundtrip_expr("COUNT(r.TotTimes)");
        roundtrip_expr("EXISTS(s IN r.TotTimes WITH s.Incl > 0.0)");
    }

    #[test]
    fn roundtrip_full_property() {
        let src = r#"
            Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
                LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
                        MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
                    float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run)
                IN
                CONDITION: TotalCost>0; CONFIDENCE: 1;
                SEVERITY: TotalCost/Duration(Basis,t);
            }
        "#;
        let s1 = parse(src).unwrap();
        let printed = print_spec(&s1);
        let s2 = parse(&printed).unwrap_or_else(|d| panic!("reparse failed:\n{printed}\n{d}"));
        assert_eq!(s1.properties.len(), s2.properties.len());
        assert_eq!(
            print_spec(&s2),
            printed,
            "pretty-printing must be a fixpoint"
        );
    }

    #[test]
    fn roundtrip_guarded_max() {
        let src = r#"
            PROPERTY P(Region r) {
                CONDITION: (hi) x > 100 OR (lo) x > 10;
                CONFIDENCE: MAX((hi) -> 1, (lo) -> 0.5);
                SEVERITY: MAX((hi) -> x, (lo) -> x / 10);
            }
        "#;
        let s1 = parse(src).unwrap();
        let printed = print_spec(&s1);
        let s2 = parse(&printed).unwrap();
        assert_eq!(print_spec(&s2), printed);
        assert!(s2.properties[0].confidence.is_max);
    }

    #[test]
    fn roundtrip_class_and_enum() {
        let src = r#"
            enum TimingType { Barrier, IoRead }
            class Region extends Base { setof TotalTiming TotTimes; float X; }
            class Base { int Id; }
        "#;
        let s1 = parse(src).unwrap();
        let printed = print_spec(&s1);
        let s2 = parse(&printed).unwrap();
        assert_eq!(print_spec(&s2), printed);
        assert_eq!(s2.classes.len(), 2);
        assert_eq!(s2.enums[0].variants.len(), 2);
    }

    #[test]
    fn float_literals_stay_floats() {
        // `1.0` must not print as `1` (which would re-lex as an int).
        roundtrip_expr("1.0 + 2.5");
        let e = parse_expr("1.0").unwrap();
        assert_eq!(print_expr(&e), "1.0");
    }

    #[test]
    fn string_escapes_roundtrip() {
        roundtrip_expr(r#""a\"b\\c\nd""#);
    }
}
