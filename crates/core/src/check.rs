//! Semantic analysis: resolves the data model, checks helper functions and
//! property declarations, and exposes a reusable expression type inferencer.

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::span::Span;
use crate::types::*;
use std::collections::{HashMap, HashSet};

/// A type-checked specification: the AST plus resolved [`Model`] metadata.
#[derive(Debug, Clone)]
pub struct CheckedSpec {
    /// The underlying syntax tree.
    pub spec: Specification,
    /// Resolved class/enum/function/property metadata.
    pub model: Model,
    /// Warnings recorded on the success path (e.g. confidence constants
    /// outside `[0, 1]`). Never contains errors — those fail [`check`].
    pub warnings: Diagnostics,
}

impl CheckedSpec {
    /// Convenience lookup of a property declaration.
    pub fn property(&self, name: &str) -> Option<&PropertyDecl> {
        self.spec.property(name)
    }

    /// Properties in declaration order.
    pub fn properties(&self) -> &[PropertyDecl] {
        &self.spec.properties
    }
}

/// Type-check a parsed specification.
pub fn check(spec: &Specification) -> Result<CheckedSpec, Diagnostics> {
    let mut cx = Checker::new();
    cx.collect_declarations(spec);
    if cx.diags.has_errors() {
        return Err(cx.diags);
    }
    cx.check_bodies(spec);
    if cx.diags.has_errors() {
        Err(cx.diags)
    } else {
        Ok(CheckedSpec {
            spec: spec.clone(),
            model: cx.model,
            warnings: cx.diags,
        })
    }
}

/// Lexical scope used during expression typing. Also usable by downstream
/// crates (interpreter, SQL compiler) that need to re-derive types.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    frames: Vec<HashMap<String, Type>>,
}

impl Scope {
    /// A scope with one empty frame.
    pub fn new() -> Self {
        Scope {
            frames: vec![HashMap::new()],
        }
    }

    /// Push a fresh frame.
    pub fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    /// Pop the innermost frame.
    pub fn pop(&mut self) {
        self.frames.pop();
    }

    /// Bind a variable in the innermost frame.
    pub fn bind(&mut self, name: impl Into<String>, ty: Type) {
        self.frames
            .last_mut()
            .expect("scope has at least one frame")
            .insert(name.into(), ty);
    }

    /// Look up a variable, innermost frame first.
    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }
}

struct Checker {
    model: Model,
    diags: Diagnostics,
}

impl Checker {
    fn new() -> Self {
        Checker {
            model: Model::default(),
            diags: Diagnostics::new(),
        }
    }

    // ---- pass 1: declarations -------------------------------------------

    fn collect_declarations(&mut self, spec: &Specification) {
        // Enums first (their names may appear as attribute types).
        for e in &spec.enums {
            if self.model.enums.contains_key(&e.name.name)
                || self.model.classes.contains_key(&e.name.name)
            {
                self.diags
                    .error(e.name.span, format!("duplicate type name `{}`", e.name));
                continue;
            }
            let mut variants = Vec::new();
            for v in &e.variants {
                if variants.contains(&v.name) {
                    self.diags.error(
                        v.span,
                        format!("duplicate variant `{}` in enum `{}`", v, e.name),
                    );
                    continue;
                }
                if let Some(owner) = self.model.variant_owner.get(&v.name) {
                    self.diags.error(
                        v.span,
                        format!(
                            "variant `{}` already declared in enum `{owner}`; \
                             variant names must be globally unique because they are \
                             referenced unqualified",
                            v
                        ),
                    );
                    continue;
                }
                self.model
                    .variant_owner
                    .insert(v.name.clone(), e.name.name.clone());
                variants.push(v.name.clone());
            }
            self.model.enums.insert(
                e.name.name.clone(),
                EnumInfo {
                    name: e.name.name.clone(),
                    variants,
                },
            );
        }

        // Class headers.
        for c in &spec.classes {
            if self.model.classes.contains_key(&c.name.name)
                || self.model.enums.contains_key(&c.name.name)
            {
                self.diags
                    .error(c.name.span, format!("duplicate type name `{}`", c.name));
                continue;
            }
            self.model.classes.insert(
                c.name.name.clone(),
                ClassInfo {
                    name: c.name.name.clone(),
                    base: c.base.as_ref().map(|b| b.name.clone()),
                    own_attrs: Vec::new(),
                },
            );
        }

        // Validate bases + detect cycles.
        for c in &spec.classes {
            if let Some(base) = &c.base {
                if !self.model.classes.contains_key(&base.name) {
                    self.diags.error(
                        base.span,
                        format!("unknown base class `{}` for `{}`", base, c.name),
                    );
                    if let Some(ci) = self.model.classes.get_mut(&c.name.name) {
                        ci.base = None;
                    }
                }
            }
        }
        self.detect_inheritance_cycles(spec);

        // Class attributes (types can now be resolved).
        for c in &spec.classes {
            let mut seen = HashSet::new();
            let mut attrs = Vec::new();
            for a in &c.attrs {
                if !seen.insert(a.name.name.clone()) {
                    self.diags.error(
                        a.name.span,
                        format!("duplicate attribute `{}` in class `{}`", a.name, c.name),
                    );
                    continue;
                }
                let ty = self.resolve_type(&a.ty);
                attrs.push(AttrInfo {
                    name: a.name.name.clone(),
                    ty,
                    declared_in: c.name.name.clone(),
                });
            }
            // Shadowing an inherited attribute is an error.
            if let Some(base) = self
                .model
                .classes
                .get(&c.name.name)
                .and_then(|ci| ci.base.clone())
            {
                for a in &attrs {
                    if self.model.attr(&base, &a.name).is_some() {
                        self.diags.error(
                            c.span,
                            format!(
                                "attribute `{}` of class `{}` shadows an inherited attribute",
                                a.name, c.name
                            ),
                        );
                    }
                }
            }
            if let Some(ci) = self.model.classes.get_mut(&c.name.name) {
                ci.own_attrs = attrs;
            }
        }

        // Constant signatures.
        for c in &spec.constants {
            if self.model.constants.contains_key(&c.name.name) {
                self.diags
                    .error(c.name.span, format!("duplicate constant `{}`", c.name));
                continue;
            }
            let ty = self.resolve_type(&c.ty);
            self.model.constants.insert(c.name.name.clone(), ty);
        }

        // Function signatures.
        for f in &spec.functions {
            if self.model.functions.contains_key(&f.name.name) {
                self.diags
                    .error(f.name.span, format!("duplicate function `{}`", f.name));
                continue;
            }
            let params = f
                .params
                .iter()
                .map(|p| (p.name.name.clone(), self.resolve_type(&p.ty)))
                .collect();
            let ret = self.resolve_type(&f.ret_ty);
            self.model.functions.insert(
                f.name.name.clone(),
                FnSig {
                    name: f.name.name.clone(),
                    params,
                    ret,
                },
            );
        }

        // Property signatures.
        for p in &spec.properties {
            if self.model.properties.contains_key(&p.name.name) {
                self.diags
                    .error(p.name.span, format!("duplicate property `{}`", p.name));
                continue;
            }
            let params = p
                .params
                .iter()
                .map(|pa| (pa.name.name.clone(), self.resolve_type(&pa.ty)))
                .collect();
            let mut condition_ids = Vec::new();
            for c in &p.conditions {
                if let Some(id) = &c.id {
                    if condition_ids.contains(&id.name) {
                        self.diags.error(
                            id.span,
                            format!(
                                "duplicate condition identifier `{}` in property `{}`",
                                id, p.name
                            ),
                        );
                    } else {
                        condition_ids.push(id.name.clone());
                    }
                }
            }
            self.model.properties.insert(
                p.name.name.clone(),
                PropSig {
                    name: p.name.name.clone(),
                    params,
                    condition_ids,
                },
            );
        }
    }

    fn detect_inheritance_cycles(&mut self, spec: &Specification) {
        for c in &spec.classes {
            let mut seen = HashSet::new();
            let mut cur = Some(c.name.name.clone());
            while let Some(name) = cur {
                if !seen.insert(name.clone()) {
                    self.diags.error(
                        c.name.span,
                        format!("inheritance cycle involving class `{}`", c.name),
                    );
                    // Break the cycle so later passes terminate.
                    if let Some(ci) = self.model.classes.get_mut(&c.name.name) {
                        ci.base = None;
                    }
                    break;
                }
                cur = self.model.classes.get(&name).and_then(|ci| ci.base.clone());
            }
        }
    }

    fn resolve_type(&mut self, t: &TypeExpr) -> Type {
        match &t.kind {
            TypeExprKind::Named(n) => match self.model.named_type(n) {
                Some(ty) => ty,
                None => {
                    self.diags.error(t.span, format!("unknown type `{n}`"));
                    Type::Error
                }
            },
            TypeExprKind::Setof(n) => match self.model.named_type(n) {
                Some(ty) => Type::Set(Box::new(ty)),
                None => {
                    self.diags.error(t.span, format!("unknown type `{n}`"));
                    Type::Error
                }
            },
        }
    }

    // ---- pass 2: bodies ---------------------------------------------------

    fn check_bodies(&mut self, spec: &Specification) {
        for c in &spec.constants {
            let declared = self.model.constants[&c.name.name].clone();
            let mut scope = Scope::new();
            let inferred = self.infer(&c.value, &mut scope);
            if !self.model.assignable(&inferred, &declared) {
                self.diags.error(
                    c.value.span,
                    format!(
                        "constant `{}` declares type `{declared}` but its value has type `{inferred}`",
                        c.name
                    ),
                );
            }
        }

        for f in &spec.functions {
            let sig = self.model.functions[&f.name.name].clone();
            let mut scope = Scope::new();
            for (name, ty) in &sig.params {
                scope.bind(name.clone(), ty.clone());
            }
            let body_ty = self.infer(&f.body, &mut scope);
            if !self.model.assignable(&body_ty, &sig.ret) {
                self.diags.error(
                    f.body.span,
                    format!(
                        "function `{}` declares return type `{}` but its body has type `{}`",
                        f.name, sig.ret, body_ty
                    ),
                );
            }
        }

        for p in &spec.properties {
            self.check_property(p);
        }
    }

    fn check_property(&mut self, p: &PropertyDecl) {
        let sig = self.model.properties[&p.name.name].clone();
        let mut scope = Scope::new();
        for (name, ty) in &sig.params {
            scope.bind(name.clone(), ty.clone());
        }

        for l in &p.lets {
            let declared = self.resolve_type(&l.ty);
            let inferred = self.infer(&l.value, &mut scope);
            if !self.model.assignable(&inferred, &declared) {
                self.diags.error(
                    l.value.span,
                    format!(
                        "LET binding `{}` declares type `{declared}` but its value has type `{inferred}`",
                        l.name
                    ),
                );
            }
            scope.bind(l.name.name.clone(), declared);
        }

        for c in &p.conditions {
            let t = self.infer(&c.expr, &mut scope);
            if t != Type::Bool && t != Type::Error {
                self.diags.error(
                    c.expr.span,
                    format!("condition must be boolean, found `{t}`"),
                );
            }
        }

        self.check_arm_spec(&p.confidence, &sig, &mut scope, "CONFIDENCE", true);
        self.check_arm_spec(&p.severity, &sig, &mut scope, "SEVERITY", false);

        // Guarded arms require at least one labelled condition to exist.
        let any_guard = p
            .confidence
            .arms
            .iter()
            .chain(p.severity.arms.iter())
            .any(|a| a.guard.is_some());
        if any_guard && sig.condition_ids.is_empty() {
            self.diags.error(
                p.span,
                format!(
                    "property `{}` uses guarded arms but declares no condition identifiers",
                    p.name
                ),
            );
        }
    }

    fn check_arm_spec(
        &mut self,
        spec: &ArmSpec,
        sig: &PropSig,
        scope: &mut Scope,
        section: &str,
        is_confidence: bool,
    ) {
        for arm in &spec.arms {
            if let Some(g) = &arm.guard {
                if !sig.condition_ids.contains(&g.name) {
                    self.diags.error(
                        g.span,
                        format!(
                            "{section} arm guard `({})` does not name a declared condition id; \
                             declared ids: [{}]",
                            g,
                            sig.condition_ids.join(", ")
                        ),
                    );
                }
            }
            let t = self.infer(&arm.expr, scope);
            if !t.is_numeric() && t != Type::Error {
                self.diags.error(
                    arm.expr.span,
                    format!("{section} expression must be numeric, found `{t}`"),
                );
            }
            if is_confidence {
                if let ExprKind::FloatLit(v) = arm.expr.kind {
                    if !(0.0..=1.0).contains(&v) {
                        self.diags.warning(
                            arm.expr.span,
                            format!("confidence constant {v} lies outside [0, 1]"),
                        );
                    }
                }
                if let ExprKind::IntLit(v) = arm.expr.kind {
                    if !(0..=1).contains(&v) {
                        self.diags.warning(
                            arm.expr.span,
                            format!("confidence constant {v} lies outside [0, 1]"),
                        );
                    }
                }
            }
        }
        if spec.arms.len() > 1 && !spec.is_max {
            self.diags.error(
                spec.span,
                format!("{section} with multiple arms must use the MAX(...) combiner"),
            );
        }
    }

    // ---- expression typing -------------------------------------------------

    fn infer(&mut self, e: &Expr, scope: &mut Scope) -> Type {
        match &e.kind {
            ExprKind::IntLit(_) => Type::Int,
            ExprKind::FloatLit(_) => Type::Float,
            ExprKind::StrLit(_) => Type::Str,
            ExprKind::BoolLit(_) => Type::Bool,
            ExprKind::Var(name) => {
                if let Some(t) = scope.lookup(name) {
                    t.clone()
                } else if let Some(t) = self.model.constants.get(name) {
                    t.clone()
                } else if let Some(owner) = self.model.variant_owner.get(name) {
                    Type::Enum(owner.clone())
                } else {
                    self.diags
                        .error(e.span, format!("unknown variable `{name}`"));
                    Type::Error
                }
            }
            ExprKind::Attr(base, attr) => {
                let bt = self.infer(base, scope);
                match bt {
                    Type::Class(cname) => match self.model.attr(&cname, &attr.name) {
                        Some(a) => a.ty.clone(),
                        None => {
                            self.diags.error(
                                attr.span,
                                format!("class `{cname}` has no attribute `{}`", attr.name),
                            );
                            Type::Error
                        }
                    },
                    Type::Set(_) => {
                        self.diags.error(
                            attr.span,
                            format!(
                                "cannot access attribute `{}` on a set; \
                                 use a comprehension or UNIQUE first",
                                attr.name
                            ),
                        );
                        Type::Error
                    }
                    Type::Error => Type::Error,
                    other => {
                        self.diags
                            .error(attr.span, format!("type `{other}` has no attributes"));
                        Type::Error
                    }
                }
            }
            ExprKind::Call(name, args) => self.infer_call(e.span, name, args, scope),
            ExprKind::Unary(op, inner) => {
                let t = self.infer(inner, scope);
                match op {
                    UnOp::Neg => {
                        if !t.is_numeric() {
                            self.diags.error(inner.span, format!("cannot negate `{t}`"));
                            Type::Error
                        } else {
                            t
                        }
                    }
                    UnOp::Not => {
                        if t != Type::Bool && t != Type::Error {
                            self.diags
                                .error(inner.span, format!("NOT requires bool, found `{t}`"));
                        }
                        Type::Bool
                    }
                }
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let lt = self.infer(lhs, scope);
                let rt = self.infer(rhs, scope);
                self.infer_binary(e.span, *op, lt, rt)
            }
            ExprKind::SetComp {
                binder,
                source,
                pred,
            } => {
                let st = self.infer(source, scope);
                let elem = match st {
                    Type::Set(t) => *t,
                    Type::Error => Type::Error,
                    other => {
                        self.diags.error(
                            source.span,
                            format!("comprehension source must be a set, found `{other}`"),
                        );
                        Type::Error
                    }
                };
                scope.push();
                scope.bind(binder.name.clone(), elem.clone());
                let pt = self.infer(pred, scope);
                scope.pop();
                if pt != Type::Bool && pt != Type::Error {
                    self.diags.error(
                        pred.span,
                        format!("comprehension predicate must be boolean, found `{pt}`"),
                    );
                }
                Type::Set(Box::new(elem))
            }
            ExprKind::Unique(inner) => {
                let t = self.infer(inner, scope);
                match t {
                    Type::Set(elem) => *elem,
                    Type::Error => Type::Error,
                    other => {
                        self.diags.error(
                            inner.span,
                            format!("UNIQUE requires a set, found `{other}`"),
                        );
                        Type::Error
                    }
                }
            }
            ExprKind::Aggregate {
                op,
                value,
                binder,
                source,
                pred,
            } => {
                let st = self.infer(source, scope);
                let elem = match st {
                    Type::Set(t) => *t,
                    Type::Error => Type::Error,
                    other => {
                        self.diags.error(
                            source.span,
                            format!("aggregate source must be a set, found `{other}`"),
                        );
                        Type::Error
                    }
                };
                scope.push();
                scope.bind(binder.name.clone(), elem);
                let vt = self.infer(value, scope);
                if let Some(p) = pred {
                    let pt = self.infer(p, scope);
                    if pt != Type::Bool && pt != Type::Error {
                        self.diags.error(
                            p.span,
                            format!("aggregate predicate must be boolean, found `{pt}`"),
                        );
                    }
                }
                scope.pop();
                match op {
                    AggOp::Count => Type::Int,
                    AggOp::Avg => {
                        self.require_numeric(value.span, &vt, "AVG");
                        Type::Float
                    }
                    AggOp::Sum => {
                        self.require_numeric(value.span, &vt, "SUM");
                        if vt == Type::Int {
                            Type::Int
                        } else {
                            Type::Float
                        }
                    }
                    AggOp::Min | AggOp::Max => {
                        if !vt.is_ordered() {
                            self.diags.error(
                                value.span,
                                format!(
                                    "{}/{} require an ordered value, found `{vt}`",
                                    "MIN", "MAX"
                                ),
                            );
                            Type::Error
                        } else {
                            vt
                        }
                    }
                }
            }
            ExprKind::Quantifier {
                binder,
                source,
                pred,
                ..
            } => {
                let st = self.infer(source, scope);
                let elem = match st {
                    Type::Set(t) => *t,
                    Type::Error => Type::Error,
                    other => {
                        self.diags.error(
                            source.span,
                            format!("quantifier source must be a set, found `{other}`"),
                        );
                        Type::Error
                    }
                };
                scope.push();
                scope.bind(binder.name.clone(), elem);
                let pt = self.infer(pred, scope);
                scope.pop();
                if pt != Type::Bool && pt != Type::Error {
                    self.diags.error(
                        pred.span,
                        format!("quantifier predicate must be boolean, found `{pt}`"),
                    );
                }
                Type::Bool
            }
            ExprKind::CountSet(inner) => {
                let t = self.infer(inner, scope);
                if !matches!(t, Type::Set(_) | Type::Error) {
                    self.diags
                        .error(inner.span, format!("COUNT requires a set, found `{t}`"));
                }
                Type::Int
            }
        }
    }

    fn require_numeric(&mut self, span: Span, t: &Type, what: &str) {
        if !t.is_numeric() {
            self.diags.error(
                span,
                format!("{what} requires a numeric value, found `{t}`"),
            );
        }
    }

    fn infer_call(&mut self, span: Span, name: &Ident, args: &[Expr], scope: &mut Scope) -> Type {
        // n-ary numeric builtins produced by the parser for MAX(a,b,...).
        if name.name == "MAX" || name.name == "MIN" {
            if args.is_empty() {
                self.diags.error(
                    span,
                    format!("{} requires at least one argument", name.name),
                );
                return Type::Error;
            }
            let mut out = Type::Int;
            for a in args {
                let t = self.infer(a, scope);
                if !t.is_numeric() {
                    self.diags.error(
                        a.span,
                        format!("{} arguments must be numeric, found `{t}`", name.name),
                    );
                    return Type::Error;
                }
                if t == Type::Float {
                    out = Type::Float;
                }
            }
            return out;
        }

        let Some(sig) = self.model.functions.get(&name.name).cloned() else {
            self.diags
                .error(name.span, format!("unknown function `{}`", name.name));
            for a in args {
                let _ = self.infer(a, scope);
            }
            return Type::Error;
        };
        if args.len() != sig.params.len() {
            self.diags.error(
                span,
                format!(
                    "function `{}` expects {} argument(s), got {}",
                    name.name,
                    sig.params.len(),
                    args.len()
                ),
            );
        }
        for (a, (pname, pty)) in args.iter().zip(sig.params.iter()) {
            let at = self.infer(a, scope);
            if !self.model.assignable(&at, pty) {
                self.diags.error(
                    a.span,
                    format!(
                        "argument `{pname}` of `{}` expects `{pty}`, found `{at}`",
                        name.name
                    ),
                );
            }
        }
        sig.ret
    }

    fn infer_binary(&mut self, span: Span, op: BinOp, lt: Type, rt: Type) -> Type {
        use BinOp::*;
        if lt == Type::Error || rt == Type::Error {
            return match op {
                Add | Sub | Mul | Mod => Type::Error,
                Div => Type::Float,
                _ => Type::Bool,
            };
        }
        match op {
            Add | Sub | Mul => {
                if lt.is_numeric() && rt.is_numeric() {
                    if lt == Type::Int && rt == Type::Int {
                        Type::Int
                    } else {
                        Type::Float
                    }
                } else {
                    self.diags.error(
                        span,
                        format!(
                            "operator `{}` requires numeric operands, found `{lt}` and `{rt}`",
                            op.symbol()
                        ),
                    );
                    Type::Error
                }
            }
            // `/` always yields float: severities are ratios (paper §4.2).
            Div => {
                if lt.is_numeric() && rt.is_numeric() {
                    Type::Float
                } else {
                    self.diags.error(
                        span,
                        format!("operator `/` requires numeric operands, found `{lt}` and `{rt}`"),
                    );
                    Type::Error
                }
            }
            Mod => {
                if lt == Type::Int && rt == Type::Int {
                    Type::Int
                } else {
                    self.diags.error(
                        span,
                        format!("operator `%` requires int operands, found `{lt}` and `{rt}`"),
                    );
                    Type::Error
                }
            }
            Eq | Ne => {
                let ok = (lt.is_numeric() && rt.is_numeric())
                    || lt == rt
                    || match (&lt, &rt) {
                        (Type::Class(a), Type::Class(b)) => {
                            self.model.is_subclass(a, b) || self.model.is_subclass(b, a)
                        }
                        _ => false,
                    };
                if !ok {
                    self.diags
                        .error(span, format!("cannot compare `{lt}` with `{rt}`"));
                }
                Type::Bool
            }
            Lt | Le | Gt | Ge => {
                let ok = (lt.is_numeric() && rt.is_numeric()) || (lt == rt && lt.is_ordered());
                if !ok {
                    self.diags.error(
                        span,
                        format!(
                            "operator `{}` requires ordered operands of compatible type, \
                             found `{lt}` and `{rt}`",
                            op.symbol()
                        ),
                    );
                }
                Type::Bool
            }
            And | Or => {
                if lt != Type::Bool || rt != Type::Bool {
                    self.diags.error(
                        span,
                        format!(
                            "operator `{}` requires boolean operands, found `{lt}` and `{rt}`",
                            op.symbol()
                        ),
                    );
                }
                Type::Bool
            }
        }
    }
}

/// Standalone expression type inference against a checked model.
///
/// Downstream crates (the interpreter and the SQL compiler) use this to make
/// type-directed decisions without re-running the whole checker. Returns
/// `Err` with diagnostics if the expression does not type-check in the given
/// scope.
pub fn infer_expr_type(model: &Model, expr: &Expr, scope: &mut Scope) -> Result<Type, Diagnostics> {
    let mut cx = Checker {
        model: model.clone(),
        diags: Diagnostics::new(),
    };
    let t = cx.infer(expr, scope);
    if cx.diags.has_errors() {
        Err(cx.diags)
    } else {
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    const MODEL: &str = r#"
        enum TimingType { Barrier, IoRead, IoWrite }
        class TestRun { int NoPe; int Clockspeed; }
        class Region  {
            setof TotalTiming TotTimes;
            setof TypedTiming TypTimes;
        }
        class TotalTiming { TestRun Run; float Excl; float Incl; float Ovhd; }
        class TypedTiming { TestRun Run; TimingType Type; float Time; }
    "#;

    fn checked(extra: &str) -> CheckedSpec {
        let src = format!("{MODEL}\n{extra}");
        match parse(&src).and_then(|s| check(&s)) {
            Ok(c) => c,
            Err(d) => panic!("check failed:\n{}", d.render(&src)),
        }
    }

    fn check_err(extra: &str) -> Diagnostics {
        let src = format!("{MODEL}\n{extra}");
        parse(&src)
            .and_then(|s| check(&s))
            .err()
            .unwrap_or_else(|| panic!("expected check error for:\n{extra}"))
    }

    #[test]
    fn paper_model_checks_clean() {
        let c = checked("");
        assert_eq!(c.model.classes.len(), 4);
        assert_eq!(c.model.enums.len(), 1);
        assert_eq!(c.model.attr("TotalTiming", "Incl").unwrap().ty, Type::Float);
    }

    #[test]
    fn paper_functions_check() {
        let c = checked(
            r#"
            TotalTiming Summary(Region r, TestRun t) =
                UNIQUE({s IN r.TotTimes WITH s.Run == t});
            float Duration(Region r, TestRun t) = Summary(r, t).Incl;
            "#,
        );
        assert_eq!(c.model.functions["Duration"].ret, Type::Float);
        assert_eq!(
            c.model.functions["Summary"].ret,
            Type::Class("TotalTiming".into())
        );
    }

    #[test]
    fn sync_cost_property_checks() {
        let c = checked(
            r#"
            TotalTiming Summary(Region r, TestRun t) =
                UNIQUE({s IN r.TotTimes WITH s.Run == t});
            float Duration(Region r, TestRun t) = Summary(r, t).Incl;
            Property SyncCost(Region r, TestRun t, Region Basis) {
                LET float Barrier2 = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
                        AND tt.Type == Barrier);
                IN CONDITION: Barrier2 > 0; CONFIDENCE: 1;
                SEVERITY: Barrier2 / Duration(Basis,t);
            }
            "#,
        );
        assert_eq!(c.model.properties["SyncCost"].params.len(), 3);
    }

    #[test]
    fn enum_variant_resolves_as_value() {
        let c = checked("");
        let e = parse_expr("Barrier").unwrap();
        let mut scope = Scope::new();
        assert_eq!(
            infer_expr_type(&c.model, &e, &mut scope).unwrap(),
            Type::Enum("TimingType".into())
        );
    }

    #[test]
    fn unknown_attribute_is_error() {
        let d = check_err("float F(Region r) = r.Nope;");
        assert!(d.to_string().contains("no attribute"));
    }

    #[test]
    fn unknown_type_is_error() {
        let d = check_err("class X { Mystery m; }");
        assert!(d.to_string().contains("unknown type"));
    }

    #[test]
    fn condition_must_be_bool() {
        let d = check_err("Property P(Region r) { CONDITION: 1 + 2; CONFIDENCE: 1; SEVERITY: 1; }");
        assert!(d.to_string().contains("boolean"));
    }

    #[test]
    fn severity_must_be_numeric() {
        let d =
            check_err("Property P(Region r) { CONDITION: TRUE; CONFIDENCE: 1; SEVERITY: TRUE; }");
        assert!(d.to_string().contains("numeric"));
    }

    #[test]
    fn guard_must_reference_declared_condition() {
        let d = check_err(
            r#"Property P(Region r) {
                CONDITION: (a) TRUE;
                CONFIDENCE: MAX((a) -> 1, (zz) -> 0.5);
                SEVERITY: 1;
            }"#,
        );
        assert!(d.to_string().contains("zz"));
    }

    #[test]
    fn duplicate_condition_id_is_error() {
        let d = check_err(
            r#"Property P(Region r) {
                CONDITION: (a) TRUE OR (a) FALSE;
                CONFIDENCE: 1;
                SEVERITY: 1;
            }"#,
        );
        assert!(d.to_string().contains("duplicate condition identifier"));
    }

    #[test]
    fn let_type_mismatch_is_error() {
        let d = check_err(
            r#"Property P(Region r, TestRun t) {
                LET int X = UNIQUE({s IN r.TotTimes WITH s.Run == t});
                IN CONDITION: TRUE; CONFIDENCE: 1; SEVERITY: 1;
            }"#,
        );
        assert!(d.to_string().contains("LET binding"));
    }

    #[test]
    fn int_widens_to_float() {
        checked("float F(TestRun t) = t.NoPe;");
    }

    #[test]
    fn float_does_not_narrow_to_int() {
        let d = check_err("int F(TotalTiming s) = s.Incl;");
        assert!(d.to_string().contains("return type"));
    }

    #[test]
    fn inheritance_cycle_detected() {
        let src = "class A extends B { } class B extends A { }";
        let d = parse(src).and_then(|s| check(&s)).unwrap_err();
        assert!(d.to_string().contains("cycle"));
    }

    #[test]
    fn duplicate_class_is_error() {
        let d = check_err("class Region { int x; }");
        assert!(d.to_string().contains("duplicate type name"));
    }

    #[test]
    fn variant_collision_across_enums_is_error() {
        let d = check_err("enum Other { Barrier }");
        assert!(d.to_string().contains("globally unique"));
    }

    #[test]
    fn class_comparison_requires_related_types() {
        let d = check_err("bool F(Region r, TestRun t) = r == t;");
        assert!(d.to_string().contains("cannot compare"));
    }

    #[test]
    fn subclass_comparison_allowed() {
        checked(
            "class Special extends Region { int Extra; } \
             bool F(Special s, Region r) = s == r;",
        );
    }

    #[test]
    fn confidence_constant_range_warning() {
        // Warnings do not fail the check but are recorded.
        let src = format!(
            "{MODEL}\nProperty P(Region r) {{ CONDITION: TRUE; CONFIDENCE: 3; SEVERITY: 1; }}"
        );
        let spec = parse(&src).unwrap();
        let res = check(&spec);
        let checked = res.unwrap();
        assert_eq!(checked.warnings.len(), 1);
        let w = checked.warnings.iter().next().unwrap();
        assert!(w.message.contains("outside [0, 1]"), "{}", w.message);
        assert_ne!(w.span, Span::default(), "warning must carry a real span");
    }

    #[test]
    fn attribute_on_set_is_helpful_error() {
        let d = check_err("float F(Region r) = r.TotTimes.Incl;");
        assert!(d.to_string().contains("UNIQUE"));
    }

    #[test]
    fn multiple_unguarded_arms_require_max() {
        // Constructed directly in AST form this cannot come from the parser
        // (the parser only builds multi-arm specs with is_max). Check via
        // a guarded MAX referencing declared ids.
        checked(
            r#"Property P(Region r) {
                CONDITION: (a) TRUE OR (b) FALSE;
                CONFIDENCE: MAX((a) -> 1, (b) -> 0.5);
                SEVERITY: MAX((a) -> 2, (b) -> 1);
            }"#,
        );
    }

    #[test]
    fn aggregate_value_must_be_numeric_for_sum() {
        let d = check_err("float F(Region r) = SUM(s.Run WHERE s IN r.TotTimes);");
        assert!(d.to_string().contains("numeric"));
    }

    #[test]
    fn count_returns_int() {
        let c = checked("int F(Region r) = COUNT(r.TotTimes);");
        assert_eq!(c.model.functions["F"].ret, Type::Int);
    }

    #[test]
    fn constants_type_checked_and_visible() {
        let c = checked("float T = 0.25;\nbool F(TotalTiming s) = s.Incl > T;");
        assert_eq!(c.model.constants["T"], Type::Float);
    }

    #[test]
    fn constant_type_mismatch_is_error() {
        let d = check_err("int T = 1.5;");
        assert!(d.to_string().contains("constant"));
    }

    #[test]
    fn duplicate_constant_is_error() {
        let d = check_err("float T = 1.0; float T = 2.0;");
        assert!(d.to_string().contains("duplicate constant"));
    }

    #[test]
    fn constant_widening_int_to_float() {
        checked("float T = 3;");
    }
}
