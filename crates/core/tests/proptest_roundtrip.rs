//! Property-based round-trip tests: for any generated ASL expression tree,
//! `parse(pretty(e)) == e` (up to spans). This pins down the precedence and
//! parenthesization rules of the printer against the parser for the whole
//! expression grammar, far beyond the hand-written cases.

use asl_core::ast::*;
use asl_core::parser::parse_expr;
use asl_core::pretty::print_expr;
use asl_core::span::Span;
use proptest::prelude::*;

fn ident_pool() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x".to_string()),
        Just("y".to_string()),
        Just("r".to_string()),
        Just("t".to_string()),
        Just("sum".to_string()), // lowercase `sum` is an identifier!
        Just("TotTimes".to_string()),
        Just("Incl".to_string()),
        Just("MinPeSum".to_string()),
        Just("val_1".to_string()),
    ]
}

fn ident() -> impl Strategy<Value = Ident> {
    ident_pool().prop_map(|n| Ident::new(n, Span::default()))
}

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..10_000).prop_map(|v| Expr::new(ExprKind::IntLit(v), Span::default())),
        // Non-negative finite floats: negatives print as unary minus.
        (0.0f64..1e6).prop_map(|v| Expr::new(ExprKind::FloatLit(v), Span::default())),
        any::<bool>().prop_map(|b| Expr::new(ExprKind::BoolLit(b), Span::default())),
        "[ -~&&[^\"\\\\]]{0,12}".prop_map(|s| Expr::new(ExprKind::StrLit(s), Span::default())),
        ident_pool().prop_map(|n| Expr::new(ExprKind::Var(n), Span::default())),
    ]
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn aggop() -> impl Strategy<Value = AggOp> {
    prop_oneof![
        Just(AggOp::Sum),
        Just(AggOp::Min),
        Just(AggOp::Max),
        Just(AggOp::Avg),
        Just(AggOp::Count),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    // Depth/size bounds are conservative: prop_recursive's limits are
    // probabilistic, and a pathologically deep tree can overflow the 2 MB
    // test-thread stack inside the recursive-descent parser (debug builds).
    leaf().prop_recursive(3, 24, 3, |inner| {
        let e = inner.clone();
        prop_oneof![
            (binop(), e.clone(), e.clone()).prop_map(|(op, a, b)| Expr::new(
                ExprKind::Binary(op, Box::new(a), Box::new(b)),
                Span::default()
            )),
            e.clone()
                .prop_map(|a| Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(a)), Span::default())),
            e.clone()
                .prop_map(|a| Expr::new(ExprKind::Unary(UnOp::Not, Box::new(a)), Span::default())),
            (e.clone(), ident())
                .prop_map(|(a, id)| Expr::new(ExprKind::Attr(Box::new(a), id), Span::default())),
            (ident(), prop::collection::vec(e.clone(), 0..3))
                .prop_map(|(id, args)| { Expr::new(ExprKind::Call(id, args), Span::default()) }),
            (ident(), e.clone(), e.clone()).prop_map(|(b, src, pred)| Expr::new(
                ExprKind::SetComp {
                    binder: b,
                    source: Box::new(src),
                    pred: Box::new(pred),
                },
                Span::default()
            )),
            e.clone()
                .prop_map(|a| Expr::new(ExprKind::Unique(Box::new(a)), Span::default())),
            (
                aggop(),
                e.clone(),
                ident(),
                e.clone(),
                prop::option::of(e.clone())
            )
                .prop_map(|(op, value, binder, source, pred)| Expr::new(
                    ExprKind::Aggregate {
                        op,
                        value: Box::new(value),
                        binder,
                        source: Box::new(source),
                        pred: pred.map(Box::new),
                    },
                    Span::default()
                )),
            (
                prop_oneof![Just(Quant::Exists), Just(Quant::Forall)],
                ident(),
                e.clone(),
                e.clone()
            )
                .prop_map(|(q, binder, source, pred)| Expr::new(
                    ExprKind::Quantifier {
                        q,
                        binder,
                        source: Box::new(source),
                        pred: Box::new(pred),
                    },
                    Span::default()
                )),
            e.prop_map(|a| Expr::new(ExprKind::CountSet(Box::new(a)), Span::default())),
        ]
    })
}

/// Strip spans so structural equality ignores positions.
fn normalize(e: &mut Expr) {
    e.span = Span::default();
    match &mut e.kind {
        ExprKind::Attr(b, a) => {
            normalize(b);
            a.span = Span::default();
        }
        ExprKind::Call(n, args) => {
            n.span = Span::default();
            args.iter_mut().for_each(normalize);
        }
        ExprKind::Unary(_, i) | ExprKind::Unique(i) | ExprKind::CountSet(i) => normalize(i),
        ExprKind::Binary(_, l, r) => {
            normalize(l);
            normalize(r);
        }
        ExprKind::SetComp {
            binder,
            source,
            pred,
        } => {
            binder.span = Span::default();
            normalize(source);
            normalize(pred);
        }
        ExprKind::Aggregate {
            value,
            binder,
            source,
            pred,
            ..
        } => {
            binder.span = Span::default();
            normalize(value);
            normalize(source);
            if let Some(p) = pred {
                normalize(p);
            }
        }
        ExprKind::Quantifier {
            binder,
            source,
            pred,
            ..
        } => {
            binder.span = Span::default();
            normalize(source);
            normalize(pred);
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pretty_parse_roundtrip(mut e in expr_strategy()) {
        normalize(&mut e);
        let printed = print_expr(&e);
        let mut reparsed = parse_expr(&printed)
            .unwrap_or_else(|d| panic!("reparse of `{printed}` failed:\n{d}"));
        normalize(&mut reparsed);
        prop_assert_eq!(&e, &reparsed, "printed form: `{}`", printed);
    }

    #[test]
    fn pretty_is_fixpoint(mut e in expr_strategy()) {
        normalize(&mut e);
        let once = print_expr(&e);
        let reparsed = parse_expr(&once).unwrap();
        let twice = print_expr(&reparsed);
        prop_assert_eq!(once, twice);
    }
}
