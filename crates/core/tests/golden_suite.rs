//! Golden tests on real specification sources: the canonical formatting of
//! the standard COSY suite is a parse/pretty fixpoint, and checking is
//! stable across the round trip.

use asl_core::{check, parse, pretty};

/// The full COSY suite source is pulled from the `cosy` crate indirectly;
/// to keep `asl-core` dependency-free we embed the data-model fragment the
/// paper prints and a representative property here.
const SOURCE: &str = r#"
enum TimingType { Barrier, IoRead, IoWrite }

class TestRun { DateTime Start; int NoPe; int Clockspeed; }
class Region {
    Region ParentRegion;
    String Name;
    setof TotalTiming TotTimes;
    setof TypedTiming TypTimes;
}
class TotalTiming { TestRun Run; float Excl; float Incl; float Ovhd; }
class TypedTiming { TestRun Run; TimingType Type; float Time; }

float ImbalanceThreshold = 0.25;

TotalTiming Summary(Region r, TestRun t) = UNIQUE({s IN r.TotTimes WITH s.Run==t});
float Duration(Region r, TestRun t) = Summary(r,t).Incl;

Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
    LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
            MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
        float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run)
    IN
    CONDITION: TotalCost>0; CONFIDENCE: 1;
    SEVERITY: TotalCost/Duration(Basis,t);
}

Property SyncCost(Region r, TestRun t, Region Basis) {
    LET float B = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t AND tt.Type == Barrier)
    IN CONDITION: B > 0; CONFIDENCE: 1;
    SEVERITY: B / Duration(Basis,t);
}
"#;

#[test]
fn pretty_print_is_a_fixpoint() {
    let spec1 = parse(SOURCE).expect("parse");
    let printed1 = pretty::print_spec(&spec1);
    let spec2 = parse(&printed1).unwrap_or_else(|d| panic!("reparse:\n{printed1}\n{d}"));
    let printed2 = pretty::print_spec(&spec2);
    assert_eq!(printed1, printed2);
}

#[test]
fn checking_is_stable_across_roundtrip() {
    let spec1 = parse(SOURCE).expect("parse");
    let checked1 = check(&spec1).expect("check original");
    let printed = pretty::print_spec(&spec1);
    let spec2 = parse(&printed).expect("reparse");
    let checked2 = check(&spec2).expect("check printed");
    assert_eq!(checked1.model, checked2.model);
}

#[test]
fn canonical_form_contains_expected_shapes() {
    let spec = parse(SOURCE).expect("parse");
    let printed = pretty::print_spec(&spec);
    assert!(printed.contains("PROPERTY SublinearSpeedup(Region r, TestRun t, Region Basis)"));
    assert!(printed.contains("float ImbalanceThreshold = 0.25;"));
    assert!(printed.contains("UNIQUE({s IN r.TotTimes WITH s.Run == t})"));
    assert!(printed
        .contains("SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t AND tt.Type == Barrier)"));
}
