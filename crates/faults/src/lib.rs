//! # `kojak-faults` — deterministic fault injection
//!
//! The stack's failure behavior must be *tested by construction*, not
//! discovered in production: long-running jobs lose disks, drop
//! connections, and kill processes mid-write. This crate provides the
//! one seam every I/O path in the workspace goes through when it wants
//! to be testable under faults:
//!
//! * A [`FaultPlan`] — a splitmix64-seeded, reproducible schedule of
//!   fault events (short writes, fsync errors, ENOSPC, torn renames,
//!   read errors, connection resets, delayed/partial socket writes).
//! * A [`Faults`] handle — the injectable seam. The WAL, snapshot and
//!   durable-session write paths call [`Faults::check`] /
//!   [`Faults::write_all`] / [`Faults::rename`] at every file
//!   operation; the network layer wraps its sockets in a
//!   [`FaultStream`]. A handle built from a plan injects; the default
//!   handle is inert.
//! * The `inject` cargo feature. Without it (the default) the seam
//!   compiles to an inlined passthrough — `Faults` is a zero-sized
//!   type and every call site reduces to the underlying I/O operation,
//!   so release builds pay nothing for carrying the fault layer
//!   (mirrors `kojak-obs`'s `obs-off`, with the polarity inverted).
//!
//! ## Determinism
//!
//! The k-th draw at a given operation site is a pure function of
//! `(seed, site, k)`: every site keeps its own draw counter, so a
//! single-threaded driver replays the exact same fault schedule from
//! the same seed, and a multi-threaded one still injects the same
//! faults per site in the same site-local order. Chaos suites log the
//! seed; a failure reproduces from it.
//!
//! Injected errors carry a typed payload — [`is_injected`] tells a
//! test (or a suspicious operator) whether an [`io::Error`] came from
//! the plan or from the real world.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The draw/menu machinery only runs under `inject`; the passthrough
// build carries the types (they appear in public signatures) but not
// the code paths that exercise their helpers.
#![cfg_attr(not(feature = "inject"), allow(dead_code))]

use std::io::{self, Write};
use std::path::Path;
#[cfg(feature = "inject")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "inject")]
use std::sync::Arc;

/// SplitMix64 finalizer — the same mixer the ingest router and the
/// simulator's noise model use; re-exported so dependents (e.g. the
/// net client's jittered backoff) need no second copy.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// True when this build actually injects faults (`inject` feature).
/// Chaos suites assert this so a mis-resolved feature graph fails
/// loudly instead of silently testing nothing.
pub const fn injection_compiled() -> bool {
    cfg!(feature = "inject")
}

/// What kind of fault was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A file write persisted only a prefix of the buffer, then failed
    /// — the torn-write crash model (the prefix IS on disk).
    ShortWrite,
    /// A file write failed wholesale.
    WriteError,
    /// An fsync failed (data may or may not have reached stable
    /// storage — the caller must assume not).
    FsyncError,
    /// The disk is full ([`io::ErrorKind::StorageFull`]).
    Enospc,
    /// An atomic-rename commit failed, leaving the temp file in place
    /// and the destination untouched — the crash window between
    /// tmp-write and rename.
    TornRename,
    /// A file read failed.
    ReadError,
    /// The connection was reset by the (simulated) peer.
    ConnReset,
    /// A socket write delivered a prefix of the buffer to the peer,
    /// then the connection died.
    PartialWrite,
    /// The operation was delayed (slow peer / contended disk), then
    /// proceeded normally. Not an error — a latency fault.
    Delay,
}

impl FaultKind {
    /// All kinds, for iteration in tests/reports.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::ShortWrite,
        FaultKind::WriteError,
        FaultKind::FsyncError,
        FaultKind::Enospc,
        FaultKind::TornRename,
        FaultKind::ReadError,
        FaultKind::ConnReset,
        FaultKind::PartialWrite,
        FaultKind::Delay,
    ];

    fn index(self) -> usize {
        FaultKind::ALL.iter().position(|k| *k == self).unwrap()
    }

    fn error_kind(self) -> io::ErrorKind {
        match self {
            FaultKind::ShortWrite => io::ErrorKind::WriteZero,
            FaultKind::Enospc => io::ErrorKind::StorageFull,
            FaultKind::ConnReset | FaultKind::PartialWrite => io::ErrorKind::ConnectionReset,
            FaultKind::ReadError => io::ErrorKind::UnexpectedEof,
            FaultKind::WriteError | FaultKind::FsyncError | FaultKind::TornRename => {
                io::ErrorKind::Other
            }
            FaultKind::Delay => unreachable!("a delay is not an error"),
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultKind::ShortWrite => "short-write",
            FaultKind::WriteError => "write-error",
            FaultKind::FsyncError => "fsync-error",
            FaultKind::Enospc => "enospc",
            FaultKind::TornRename => "torn-rename",
            FaultKind::ReadError => "read-error",
            FaultKind::ConnReset => "conn-reset",
            FaultKind::PartialWrite => "partial-write",
            FaultKind::Delay => "delay",
        };
        f.write_str(name)
    }
}

/// An I/O seam an operation is gated through — the "site" of the
/// determinism contract (each site draws from its own counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant names are the documentation
pub enum Op {
    WalOpen,
    WalAppend,
    WalSync,
    WalTruncate,
    WalRead,
    SnapshotCreate,
    SnapshotWrite,
    SnapshotSync,
    SnapshotRename,
    SnapshotDirSync,
    SnapshotRead,
    NetRead,
    NetWrite,
}

impl Op {
    const COUNT: usize = 13;

    fn index(self) -> usize {
        self as usize
    }

    fn is_net(self) -> bool {
        matches!(self, Op::NetRead | Op::NetWrite)
    }

    /// The fault kinds that can fire at this site.
    fn menu(self) -> &'static [FaultKind] {
        match self {
            Op::WalOpen | Op::WalTruncate => &[FaultKind::WriteError],
            Op::WalAppend => &[
                FaultKind::ShortWrite,
                FaultKind::WriteError,
                FaultKind::Enospc,
            ],
            Op::WalSync | Op::SnapshotSync | Op::SnapshotDirSync => &[FaultKind::FsyncError],
            Op::WalRead | Op::SnapshotRead => &[FaultKind::ReadError],
            Op::SnapshotCreate => &[FaultKind::WriteError, FaultKind::Enospc],
            Op::SnapshotWrite => &[
                FaultKind::ShortWrite,
                FaultKind::WriteError,
                FaultKind::Enospc,
            ],
            Op::SnapshotRename => &[FaultKind::TornRename],
            Op::NetRead => &[FaultKind::ConnReset, FaultKind::Delay],
            Op::NetWrite => &[
                FaultKind::ConnReset,
                FaultKind::PartialWrite,
                FaultKind::Delay,
            ],
        }
    }
}

/// The typed payload of every injected [`io::Error`] — proof of
/// provenance ([`is_injected`]) plus the site and kind for assertions.
#[derive(Debug)]
pub struct InjectedFault {
    /// The seam the fault fired at.
    pub op: Op,
    /// What was injected.
    pub kind: FaultKind,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected {} at {:?}", self.kind, self.op)
    }
}

impl std::error::Error for InjectedFault {}

/// True when `e` was injected by a [`FaultPlan`] rather than produced
/// by the real world. Always false in builds without `inject`.
pub fn is_injected(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<InjectedFault>())
}

/// The injected [`InjectedFault`] payload of `e`, if any.
pub fn injected_fault(e: &io::Error) -> Option<&InjectedFault> {
    e.get_ref().and_then(|inner| inner.downcast_ref())
}

fn injected_error(op: Op, kind: FaultKind) -> io::Error {
    io::Error::new(kind.error_kind(), InjectedFault { op, kind })
}

/// A seeded, reproducible schedule of fault events. Build one, turn it
/// into a live [`Faults`] handle with [`FaultPlan::build`], and hand
/// clones of the handle to every layer under test.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed every draw derives from. Log it; failures reproduce
    /// from it.
    pub seed: u64,
    /// Probability (per mille) that a gated *disk* operation faults.
    pub disk_per_mille: u32,
    /// Probability (per mille) that a gated *network* operation faults.
    pub net_per_mille: u32,
    /// Stop injecting after this many faults (`0` = unlimited). Chaos
    /// soaks use this to guarantee the system eventually converges.
    pub max_faults: u64,
}

impl FaultPlan {
    /// A plan with moderate default rates (2% disk, 3% net, unlimited).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            disk_per_mille: 20,
            net_per_mille: 30,
            max_faults: 0,
        }
    }

    /// Build the live injection handle for this plan.
    ///
    /// In a build without the `inject` feature the returned handle is
    /// inert (see [`injection_compiled`]).
    pub fn build(self) -> Faults {
        #[cfg(feature = "inject")]
        {
            Faults {
                inner: Some(Arc::new(Injector::new(self))),
            }
        }
        #[cfg(not(feature = "inject"))]
        {
            Faults::default()
        }
    }
}

#[cfg(feature = "inject")]
#[derive(Debug)]
struct Injector {
    plan: FaultPlan,
    active: AtomicBool,
    /// Per-site draw counters — the site-local `k` of the determinism
    /// contract.
    draws: [AtomicU64; Op::COUNT],
    /// Total faults injected (all kinds).
    injected: AtomicU64,
    /// Faults injected by kind (indexed by [`FaultKind::index`]).
    by_kind: [AtomicU64; 9],
}

#[cfg(feature = "inject")]
impl Injector {
    fn new(plan: FaultPlan) -> Injector {
        Injector {
            plan,
            active: AtomicBool::new(true),
            draws: Default::default(),
            injected: Default::default(),
            by_kind: Default::default(),
        }
    }

    /// One deterministic draw at `op`: `None` (no fault) or the kind
    /// to inject, with the fault budget and counters already applied.
    fn draw(&self, op: Op) -> Option<(FaultKind, u64)> {
        if !self.active.load(Ordering::Relaxed) {
            return None;
        }
        let k = self.draws[op.index()].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(
            self.plan
                .seed
                .wrapping_add((op.index() as u64).wrapping_mul(0xD134_2543_DE82_EF95))
                .wrapping_add(k.wrapping_mul(0x2545_F491_4F6C_DD1D)),
        );
        let rate = if op.is_net() {
            self.plan.net_per_mille
        } else {
            self.plan.disk_per_mille
        };
        if h % 1000 >= u64::from(rate) {
            return None;
        }
        // Respect the budget *before* counting, so max_faults is exact.
        if self.plan.max_faults > 0 && self.injected.load(Ordering::Relaxed) >= self.plan.max_faults
        {
            return None;
        }
        let menu = op.menu();
        let kind = menu[((h / 1000) as usize) % menu.len()];
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
        Some((kind, h))
    }
}

/// The injectable I/O seam: an inert handle by default, a live
/// injector when built from a [`FaultPlan`] in an `inject` build.
///
/// Cloning shares the underlying injector (and its counters): hand one
/// plan's clones to the WAL, the snapshot writer and both ends of the
/// socket and [`Faults::injected_total`] counts across all of them.
#[derive(Debug, Clone, Default)]
pub struct Faults {
    #[cfg(feature = "inject")]
    inner: Option<Arc<Injector>>,
}

impl Faults {
    /// The inert handle (same as `Faults::default()`): every seam call
    /// is a passthrough.
    pub fn none() -> Faults {
        Faults::default()
    }

    /// True when this handle can currently inject (a live injector
    /// that has not been paused).
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "inject")]
        {
            self.inner
                .as_deref()
                .is_some_and(|i| i.active.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "inject"))]
        false
    }

    /// Pause (`false`) or resume (`true`) injection. Chaos soaks call
    /// `set_active(false)` to let the system converge, then assert
    /// recovery invariants. No-op on an inert handle.
    pub fn set_active(&self, on: bool) {
        #[cfg(feature = "inject")]
        if let Some(i) = self.inner.as_deref() {
            i.active.store(on, Ordering::Relaxed);
        }
        #[cfg(not(feature = "inject"))]
        let _ = on;
    }

    /// Total faults injected through this handle (and its clones).
    pub fn injected_total(&self) -> u64 {
        #[cfg(feature = "inject")]
        {
            self.inner
                .as_deref()
                .map_or(0, |i| i.injected.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "inject"))]
        0
    }

    /// Faults injected of one kind.
    pub fn injected_of(&self, kind: FaultKind) -> u64 {
        #[cfg(feature = "inject")]
        {
            self.inner
                .as_deref()
                .map_or(0, |i| i.by_kind[kind.index()].load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "inject"))]
        {
            let _ = kind;
            0
        }
    }

    /// Gate a simple operation (read, fsync, connect): `Ok(())` to
    /// proceed, an injected error to fail. A [`FaultKind::Delay`] draw
    /// sleeps briefly and proceeds.
    #[inline]
    pub fn check(&self, op: Op) -> io::Result<()> {
        #[cfg(feature = "inject")]
        if let Some(inj) = self.inner.as_deref() {
            if let Some((kind, h)) = inj.draw(op) {
                if kind == FaultKind::Delay {
                    std::thread::sleep(std::time::Duration::from_micros(50 + (h >> 10) % 1500));
                    return Ok(());
                }
                return Err(injected_error(op, kind));
            }
        }
        let _ = op;
        Ok(())
    }

    /// Gate a buffered write: passthrough `w.write_all(buf)` normally;
    /// under a [`FaultKind::ShortWrite`] / [`FaultKind::PartialWrite`]
    /// draw, a *prefix* of `buf` is actually written before the error
    /// — the torn-write crash model.
    #[inline]
    pub fn write_all<W: Write>(&self, op: Op, w: &mut W, buf: &[u8]) -> io::Result<()> {
        #[cfg(feature = "inject")]
        if let Some(inj) = self.inner.as_deref() {
            if let Some((kind, h)) = inj.draw(op) {
                match kind {
                    FaultKind::Delay => {
                        std::thread::sleep(std::time::Duration::from_micros(50 + (h >> 10) % 1500));
                    }
                    FaultKind::ShortWrite | FaultKind::PartialWrite => {
                        if !buf.is_empty() {
                            let cut = ((h >> 10) as usize) % buf.len();
                            // Best-effort: the torn prefix may itself fail.
                            let _ = w.write_all(&buf[..cut]);
                            let _ = w.flush();
                        }
                        return Err(injected_error(op, kind));
                    }
                    _ => return Err(injected_error(op, kind)),
                }
            }
        }
        let _ = op;
        w.write_all(buf)
    }

    /// Gate an atomic-rename commit: performs `std::fs::rename(from,
    /// to)` normally; under a [`FaultKind::TornRename`] draw the
    /// rename is *not* performed (temp file left, destination
    /// untouched) and the injected error returns — the crash window
    /// between tmp-write and rename, without killing the process.
    #[inline]
    pub fn rename(&self, op: Op, from: &Path, to: &Path) -> io::Result<()> {
        #[cfg(feature = "inject")]
        if let Some(inj) = self.inner.as_deref() {
            if let Some((kind, _)) = inj.draw(op) {
                if kind != FaultKind::Delay {
                    return Err(injected_error(op, kind));
                }
            }
        }
        let _ = op;
        std::fs::rename(from, to)
    }
}

impl obs::MetricsSource for Faults {
    /// Report the injection counters under the `kojak_faults_*`
    /// namespace. An inert handle contributes nothing (no zero-valued
    /// series from production builds).
    fn collect_into(&self, out: &mut obs::MetricsSnapshot) {
        #[cfg(feature = "inject")]
        if self.inner.is_some() {
            out.push_counter("kojak_faults_injected_total", self.injected_total());
            out.push_gauge("kojak_faults_active", u64::from(self.is_active()));
        }
        #[cfg(not(feature = "inject"))]
        let _ = out;
    }
}

/// A fault-wrapped byte stream: delegates to the inner `Read`/`Write`
/// with the handle's [`Op::NetRead`]/[`Op::NetWrite`] gates applied.
/// With an inert handle (or without `inject`) it is a transparent
/// newtype.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    faults: Faults,
}

impl<S> FaultStream<S> {
    /// Wrap `inner` under `faults`' network gates.
    pub fn new(inner: S, faults: &Faults) -> FaultStream<S> {
        FaultStream {
            inner,
            faults: faults.clone(),
        }
    }

    /// The wrapped stream (for socket-level calls: timeouts, shutdown).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped stream.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: io::Read> io::Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.faults.check(Op::NetRead)?;
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // write_all applies the partial-write semantics (prefix hits
        // the wire, then the connection dies); a clean pass writes the
        // whole buffer, which is a legal `write` return.
        self.faults.write_all(Op::NetWrite, &mut self.inner, buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_handle_is_a_passthrough() {
        let faults = Faults::none();
        assert!(!faults.is_active());
        assert_eq!(faults.injected_total(), 0);
        for op in [Op::WalAppend, Op::NetRead, Op::SnapshotSync] {
            assert!(faults.check(op).is_ok());
        }
        let mut sink = Vec::new();
        faults
            .write_all(Op::WalAppend, &mut sink, b"payload")
            .unwrap();
        assert_eq!(sink, b"payload");
    }

    #[test]
    fn fault_stream_over_inert_handle_is_transparent() {
        use std::io::{Read, Write};
        let mut stream = FaultStream::new(io::Cursor::new(Vec::new()), &Faults::none());
        stream.write_all(b"abc").unwrap();
        stream.get_mut().set_position(0);
        let mut back = String::new();
        stream.read_to_string(&mut back).unwrap();
        assert_eq!(back, "abc");
    }

    #[cfg(feature = "inject")]
    #[test]
    fn draws_are_deterministic_per_seed_and_site() {
        let run = |seed: u64| {
            let faults = FaultPlan {
                seed,
                disk_per_mille: 200,
                net_per_mille: 0,
                max_faults: 0,
            }
            .build();
            let mut schedule = Vec::new();
            for k in 0..200 {
                let mut sink = io::sink();
                if let Err(e) = faults.write_all(Op::WalAppend, &mut sink, b"x") {
                    schedule.push((k, injected_fault(&e).unwrap().kind));
                }
            }
            schedule
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seeds diverge");
        assert!(!run(7).is_empty(), "a 20% rate fires within 200 draws");
    }

    #[cfg(feature = "inject")]
    #[test]
    fn budget_pause_and_counters() {
        let faults = FaultPlan {
            seed: 3,
            disk_per_mille: 1000, // every draw faults
            net_per_mille: 1000,
            max_faults: 4,
        }
        .build();
        assert!(faults.is_active());
        let mut injected = 0;
        for _ in 0..100 {
            if faults.check(Op::WalSync).is_err() {
                injected += 1;
            }
        }
        assert_eq!(injected, 4, "the budget caps injection");
        assert_eq!(faults.injected_total(), 4);
        assert_eq!(faults.injected_of(FaultKind::FsyncError), 4);
        faults.set_active(false);
        assert!(faults.check(Op::WalSync).is_ok(), "paused handles pass");
        let mut out = obs::MetricsSnapshot::default();
        obs::MetricsSource::collect_into(&faults, &mut out);
        assert_eq!(out.counter("kojak_faults_injected_total"), 4);
    }

    #[cfg(feature = "inject")]
    #[test]
    fn short_write_leaves_a_prefix_and_torn_rename_leaves_the_tmp() {
        let faults = FaultPlan {
            seed: 11,
            disk_per_mille: 1000,
            net_per_mille: 0,
            max_faults: 0,
        }
        .build();
        // Draw until a ShortWrite comes up (the menu rotates by hash).
        let payload = vec![0xAB; 64];
        let mut saw_short = false;
        for _ in 0..64 {
            let mut sink: Vec<u8> = Vec::new();
            match faults.write_all(Op::WalAppend, &mut sink, &payload) {
                Err(e) if injected_fault(&e).unwrap().kind == FaultKind::ShortWrite => {
                    assert!(sink.len() < payload.len(), "a strict prefix");
                    assert_eq!(sink[..], payload[..sink.len()]);
                    saw_short = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(saw_short, "ShortWrite is reachable at WalAppend");

        let dir = std::env::temp_dir().join(format!("kojak-faults-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let from = dir.join("snapshot.tmp");
        let to = dir.join("snapshot.bin");
        std::fs::write(&from, b"image").unwrap();
        let err = faults
            .rename(Op::SnapshotRename, &from, &to)
            .expect_err("rate 1000 always fires");
        assert!(is_injected(&err));
        assert!(from.exists(), "temp file left in place");
        assert!(!to.exists(), "destination untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
