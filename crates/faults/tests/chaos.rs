//! Chaos soak: a sharded durable engine streamed under a seeded fault
//! plan must (1) accept every event exactly once — applied or parked,
//! never dropped, never doubled — (2) never panic or poison, and (3)
//! once injection stops and the quarantined shards are reintegrated,
//! converge to reports **bit-identical** to a never-faulted sharded
//! session over the same stream.
//!
//! The sweep runs ≥ 20 distinct seeds; every failure message carries
//! its seed, and `FaultPlan { seed, .. }` reproduces the schedule.

use apprentice_sim::{simulate_program, MachineModel, ProgramGenerator};
use engine::{AnalysisEngine, ShardedConfig, ShardedSession};
use faults::FaultPlan;
use online::replay::replay_store;
use online::{DurableConfig, FsyncPolicy, SessionConfig, TraceEvent};
use perfdata::Store;
use std::path::PathBuf;

const SEEDS: u64 = 24;
const SHARDS: usize = 3;

/// A fresh scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("kojak-chaos-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Two program versions per soak seed, so the router actually spreads
/// runs across shards and quarantines hit a strict subset of the state.
fn sim_events(seed: u64) -> Vec<TraceEvent> {
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    for salt in [0u64, 1] {
        let gen = ProgramGenerator {
            seed: seed.wrapping_mul(2).wrapping_add(salt),
            functions: 2,
            max_depth: 3,
            max_fanout: 2,
            base_work: 0.01,
            comm_probability: 0.5,
        };
        simulate_program(&mut store, &gen.generate(), &machine, &[1, 4]);
    }
    replay_store(&store)
}

fn sharded_config(faults: &faults::Faults) -> ShardedConfig {
    ShardedConfig {
        shards: SHARDS,
        durable: DurableConfig {
            session: SessionConfig::default(),
            fsync: FsyncPolicy::Never,
            snapshot_every_flushes: 2,
            faults: faults.clone(),
        },
    }
}

#[test]
fn chaos_soak_converges_bit_identically_across_seeds() {
    assert!(
        faults::injection_compiled(),
        "the soak is meaningless without the `inject` feature"
    );

    let mut seeds_with_faults = 0u64;
    for seed in 0..SEEDS {
        let events = sim_events(seed);
        let faults = FaultPlan {
            seed,
            disk_per_mille: 80,
            net_per_mille: 0,
            // Bounded: the soak must converge without operator help.
            max_faults: 30,
        }
        .build();

        // Open under fire: a shard whose recovery draws a fault opens
        // quarantined, never fatal (a fresh directory has no snapshot,
        // so the one hard failure — a corrupt snapshot — cannot occur).
        let dir = ScratchDir::new(&format!("soak-{seed}"));
        let (session, _) = ShardedSession::open(&dir.0, sharded_config(&faults))
            .expect("open degrades, not fails");

        // Exactly-once ingest: every batch is fully accepted — applied
        // to healthy shards, parked for quarantined ones. Wholesale
        // shard failures quarantine-and-park behind the Ok; nothing
        // errors, nothing is lost, nothing is double-logged (a failed
        // WAL append leaves no frame behind).
        for batch in events.chunks(41) {
            let accepted = AnalysisEngine::ingest_batch(&session, batch)
                .unwrap_or_else(|e| panic!("seed {seed}: ingest must not fail: {e}"));
            assert_eq!(accepted, batch.len(), "seed {seed}: exactly-once accept");
            AnalysisEngine::flush(&session)
                .unwrap_or_else(|e| panic!("seed {seed}: flush must degrade, not fail: {e}"));
        }

        let state = session.degraded_state();
        let parked = state.parked_events();
        let metrics = AnalysisEngine::metrics(&session);
        assert_eq!(
            metrics.gauge("kojak_engine_shards_quarantined"),
            Some(state.quarantined.len() as u64),
            "seed {seed}: quarantine gauge must reconcile"
        );
        assert_eq!(
            metrics.gauge("kojak_engine_events_parked"),
            Some(parked as u64),
            "seed {seed}: parked gauge must reconcile"
        );
        if faults.injected_total() > 0 {
            seeds_with_faults += 1;
            // Every healthy shard reports the shared handle's counter;
            // the merged snapshot carries it once per healthy shard.
            let healthy = (SHARDS - state.quarantined.len()) as u64;
            assert_eq!(
                metrics.counter("kojak_faults_injected_total"),
                healthy * faults.injected_total(),
                "seed {seed}: injection counter must ride the metrics"
            );
        } else {
            assert!(
                !state.is_degraded(),
                "seed {seed}: degradation without any injected fault"
            );
        }

        // Faults stop; the operator reintegrates. The parked backlog
        // replays and the session must converge to a never-faulted
        // sharded session over the identical stream — bit for bit.
        faults.set_active(false);
        let replayed = session
            .reintegrate_all()
            .unwrap_or_else(|e| panic!("seed {seed}: clean reintegration must succeed: {e}"));
        assert_eq!(replayed, parked, "seed {seed}: replay the backlog exactly");
        assert!(!session.degraded_state().is_degraded());
        AnalysisEngine::flush(&session).expect("clean flush");

        let control_dir = ScratchDir::new(&format!("control-{seed}"));
        let (control, _) =
            ShardedSession::open(&control_dir.0, sharded_config(&faults::Faults::none()))
                .expect("open control");
        AnalysisEngine::ingest_batch(&control, &events).expect("control ingest");
        AnalysisEngine::flush(&control).expect("control flush");

        assert_eq!(
            AnalysisEngine::reports(&session),
            AnalysisEngine::reports(&control),
            "seed {seed}: converged reports must be bit-identical"
        );
        assert_eq!(
            AnalysisEngine::stats(&session).events_applied,
            AnalysisEngine::stats(&control).events_applied,
            "seed {seed}: exactly-once application"
        );
    }

    // The sweep must actually have soaked something: with an 8% disk
    // rate over hundreds of gated ops per seed, near-every seed injects.
    assert!(
        seeds_with_faults >= SEEDS * 3 / 4,
        "only {seeds_with_faults}/{SEEDS} seeds injected — rates too low to test anything"
    );
}

/// Durable state written *under* injection must stay recoverable: kill
/// the faulted session after convergence, reopen clean, and the reports
/// must survive the round-trip unchanged.
#[test]
fn chaos_survivors_recover_after_a_kill() {
    for seed in [3u64, 7, 19] {
        let events = sim_events(seed ^ 0x5A5A);
        let faults = FaultPlan {
            seed,
            disk_per_mille: 100,
            net_per_mille: 0,
            max_faults: 20,
        }
        .build();

        let dir = ScratchDir::new(&format!("kill-{seed}"));
        let (session, _) = ShardedSession::open(&dir.0, sharded_config(&faults)).expect("open");
        for batch in events.chunks(53) {
            AnalysisEngine::ingest_batch(&session, batch).expect("ingest");
            AnalysisEngine::flush(&session).expect("flush");
        }
        // Converge before the kill: parked events are volatile (held in
        // memory until reintegration), so an operator shutting down a
        // degraded session reintegrates first — exactly what
        // `DegradedState::parked_events` exists to surface.
        faults.set_active(false);
        session.reintegrate_all().expect("reintegrate");
        AnalysisEngine::flush(&session).expect("flush");
        let reports_at_kill = AnalysisEngine::reports(&session);
        drop(session); // killed: no checkpoint, no graceful shutdown

        let (recovered, _) = ShardedSession::open(&dir.0, sharded_config(&faults::Faults::none()))
            .expect("clean recovery");
        assert_eq!(
            AnalysisEngine::reports(&recovered),
            reports_at_kill,
            "seed {seed}: recovery must reproduce the pre-kill reports"
        );
    }
}
