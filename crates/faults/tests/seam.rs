//! Seam regression tests: every fault the plan injects into the WAL /
//! snapshot / recovery paths must surface as a **typed** error at the
//! public API (never a panic, never a swallowed `io::Result`), and the
//! durability contract — nothing half-applied, recovery bit-identical
//! to the accepted prefix — must hold across every injection.
//!
//! These tests compile only against an `inject` build; the dev-dep
//! feature graph of `kojak-faults` guarantees that for `cargo test -p
//! kojak-faults`, and the canary below fails loudly if it ever stops
//! being true.

use apprentice_sim::{simulate_program, MachineModel, ProgramGenerator};
use faults::{FaultPlan, Faults};
use online::replay::replay_store;
use online::{
    DurableConfig, DurableSession, FlushError, FsyncPolicy, IngestError, OnlineSession,
    SessionConfig, TraceEvent,
};
use perfdata::Store;
use std::path::PathBuf;

/// A fresh scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("kojak-seam-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sim_events(seed: u64) -> Vec<TraceEvent> {
    let gen = ProgramGenerator {
        seed,
        functions: 2,
        max_depth: 3,
        max_fanout: 3,
        base_work: 0.01,
        comm_probability: 0.6,
    };
    let mut store = Store::new();
    simulate_program(
        &mut store,
        &gen.generate(),
        &MachineModel::t3e_900(),
        &[1, 8],
    );
    replay_store(&store)
}

fn control_session(events: &[TraceEvent]) -> OnlineSession {
    let session = OnlineSession::new(SessionConfig::default());
    session.ingest_batch(events).expect("control ingest");
    session.flush().expect("control flush");
    session
}

fn config(faults: &Faults, snapshot_every_flushes: u32) -> DurableConfig {
    DurableConfig {
        session: SessionConfig::default(),
        fsync: FsyncPolicy::Never,
        snapshot_every_flushes,
        faults: faults.clone(),
    }
}

/// The feature-graph canary: these suites are worthless if the `inject`
/// feature silently fell off the build.
#[test]
fn injection_is_compiled_into_this_test_build() {
    assert!(
        faults::injection_compiled(),
        "kojak-faults test builds must enable the `inject` feature"
    );
}

/// Satellite (WAL audit): an injected append failure must surface as
/// the typed `IngestError::Wal` — carrying the failing op and the
/// injected provenance — and must leave *nothing* behind: no frame in
/// the log, no event in the store. Retrying the identical batch cannot
/// double-apply, and recovery equals the accepted prefix bit for bit.
#[test]
fn wal_append_faults_are_typed_and_apply_nothing() {
    let events = sim_events(11);
    let faults = FaultPlan {
        seed: 0xA11CE,
        disk_per_mille: 300,
        net_per_mille: 0,
        max_faults: 0,
    }
    .build();

    let dir = ScratchDir::new("wal-append");
    // No snapshots, no fsync: the only gated disk ops are WAL appends.
    // (Recovery is gated too — pause injection for the fresh open, this
    // test targets the append seam.)
    faults.set_active(false);
    let durable = DurableSession::open(&dir.0, config(&faults, 0)).expect("open");
    faults.set_active(true);
    let mut rejections = 0u32;
    for batch in events.chunks(13) {
        loop {
            match durable.ingest_batch(batch) {
                Ok(n) => {
                    assert_eq!(n, batch.len());
                    break;
                }
                Err(IngestError::Wal { detail, .. }) => {
                    // Typed, and provably from the plan: the rendered
                    // source carries the injection payload.
                    assert!(
                        detail.contains("injected"),
                        "only injected faults can fire here: {detail}"
                    );
                    rejections += 1;
                    assert!(rejections < 10_000, "retry must converge");
                    // Append atomicity: the failed batch left no frame
                    // behind, so this bare retry cannot double-log.
                }
                Err(other) => panic!("append fault must stay typed, got {other}"),
            }
        }
    }
    assert!(rejections > 0, "a 30% rate must fire on this stream");
    assert_eq!(faults.injected_total(), u64::from(rejections));
    durable.flush().expect("flush (no gated ops)");

    // Satellite (metrics): the injection counters ride the session's
    // metrics snapshot under the kojak_faults_* namespace.
    let metrics = durable.metrics();
    assert_eq!(
        metrics.counter("kojak_faults_injected_total"),
        faults.injected_total()
    );
    assert_eq!(metrics.gauge("kojak_faults_active"), Some(1));

    let control = control_session(&events);
    assert_eq!(durable.reports(), control.reports());
    drop(durable);

    // The log holds exactly the accepted history: recovery replays it
    // to a bit-identical session.
    faults.set_active(false);
    let reopened = DurableSession::open(&dir.0, config(&faults, 0)).expect("recover");
    assert_eq!(
        reopened.recovery().wal_events_replayed,
        events.len() as u64,
        "every accepted event, no duplicates"
    );
    assert_eq!(reopened.reports(), control.reports());
    assert_eq!(
        reopened.stats().events_applied,
        control.stats().events_applied
    );
}

/// Satellite (snapshot audit): checkpoint faults (temp create/write,
/// fsync, torn rename, log truncation) surface as the typed
/// `FlushError` checkpoint variants, never compromise the WAL, and a
/// torn rename leaves the crash window exactly as recovery expects it
/// (temp file present, committed snapshot untouched).
#[test]
fn checkpoint_faults_never_compromise_durability() {
    let events = sim_events(29);
    let faults = FaultPlan {
        seed: 0xBEEF,
        disk_per_mille: 250,
        net_per_mille: 0,
        max_faults: 0,
    }
    .build();

    let dir = ScratchDir::new("checkpoint");
    faults.set_active(false);
    let durable = DurableSession::open(&dir.0, config(&faults, 0)).expect("open");
    faults.set_active(true);
    let mut checkpoint_failures = 0u32;
    let mut ingested = 0usize;
    for batch in events.chunks(17) {
        loop {
            match durable.ingest_batch(batch) {
                Ok(_) => break,
                Err(IngestError::Wal { .. }) => continue,
                Err(other) => panic!("unexpected ingest error: {other}"),
            }
        }
        ingested += batch.len();
        durable.flush().expect("flush itself has no gated ops");
        // Explicit checkpoint under fire: each failure must be one of
        // the typed checkpoint variants, after which recovery from disk
        // still reproduces every accepted event.
        if let Err(e) = durable.checkpoint() {
            match e {
                FlushError::Snapshot { .. } | FlushError::WalTruncate { .. } => {
                    checkpoint_failures += 1
                }
                other => panic!("checkpoint fault must stay typed, got {other}"),
            }
            let (recovered, stats) =
                OnlineSession::recover(&dir.0, SessionConfig::default()).expect("recover");
            assert_eq!(
                stats.snapshot_events + stats.wal_events_replayed,
                ingested as u64,
                "snapshot + tail must cover the accepted prefix"
            );
            assert_eq!(
                recovered.stats().events_applied,
                ingested as u64,
                "no event lost or double-applied after checkpoint fault"
            );
        }
    }
    assert!(
        checkpoint_failures > 0,
        "a 25% rate across 5 gated checkpoint ops must fire"
    );

    // Faults off: the next checkpoint commits (over whatever temp-file
    // debris the torn renames left), and recovery uses it.
    faults.set_active(false);
    durable.checkpoint().expect("repaired checkpoint");
    drop(durable);
    let reopened = DurableSession::open(&dir.0, config(&Faults::none(), 0)).expect("recover");
    assert!(reopened.recovery().used_snapshot);
    let control = control_session(&events);
    assert_eq!(reopened.reports(), control.reports());
}

/// Satellite (recovery audit): injected read failures during recovery
/// surface as the typed `RecoveryError::Io` — not a panic, not a
/// silently empty session — and a fault-free retry of the same
/// directory recovers everything.
#[test]
fn recovery_read_faults_are_typed_and_retryable() {
    let events = sim_events(47);
    let clean = Faults::none();
    let dir = ScratchDir::new("recovery-read");
    {
        let durable = DurableSession::open(&dir.0, config(&clean, 2)).expect("open");
        for batch in events.chunks(19) {
            durable.ingest_batch(batch).expect("ingest");
            durable.flush().expect("flush");
        }
        // Killed: snapshot + WAL tail on disk.
    }

    let faults = FaultPlan {
        seed: 0x5EED,
        disk_per_mille: 1000, // every recovery read fails
        net_per_mille: 0,
        max_faults: 0,
    }
    .build();
    match DurableSession::open(&dir.0, config(&faults, 2)) {
        Err(online::RecoveryError::Io(source)) => {
            assert!(faults::is_injected(&source), "typed + provenance");
        }
        Ok(_) => panic!("recovery must fail under a 100% read-fault rate"),
        Err(other) => panic!("recovery fault must stay typed, got {other}"),
    }

    // The failure was injected, not real: a clean retry sees everything.
    faults.set_active(false);
    let reopened = DurableSession::open(&dir.0, config(&faults, 2)).expect("clean retry");
    let control = control_session(&events);
    assert_eq!(reopened.reports(), control.reports());
    assert_eq!(
        reopened.stats().events_applied,
        control.stats().events_applied
    );
}
