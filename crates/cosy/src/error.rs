//! Typed analysis errors.
//!
//! The two failure families of the batch analyzer, kept separate because
//! they happen at different times and demand different reactions:
//!
//! * [`SpecError`] — *construction* failed: the suite could not be bound
//!   to the store (no ranking basis yet, constant evaluation failed, SQL
//!   schema/load failed). Callers typically wait for more data or fix the
//!   spec.
//! * [`AnalysisError`] — *evaluation* failed mid-pass: one property
//!   instance raised a genuine error (division by zero, ambiguous
//!   `UNIQUE`, a SQL execution failure). Callers surface the property and
//!   context; the online engine re-queues the invalidated delta so the
//!   same work is retried on the next flush.
//!
//! Both wrap the precise source error (`asl_eval::EvalError`,
//! `asl_sql::SqlGenError`) instead of flattening it to a string, so
//! callers can match on the machine-readable kind (the online engine's
//! typed `FlushError` and the `kojak::engine::EngineError` hierarchy build
//! on these).

use crate::backend::Backend;
use asl_eval::EvalError;
use asl_sql::SqlGenError;
use std::fmt;

/// Why an [`crate::Analyzer`] or [`crate::backend::PreparedBackend`] could
/// not be constructed from a spec and a store.
#[derive(Debug)]
pub enum SpecError {
    /// The analyzed version has no `main` region to serve as the ranking
    /// basis (§4: every severity is a fraction of `Duration(Basis, t)`).
    /// Online, this simply means the structure has not streamed in yet.
    NoMainRegion,
    /// Binding the spec to the store failed in the client-side engine
    /// (global-constant evaluation during interpreter/compiled-IR
    /// preparation).
    Bind {
        /// The backend being prepared.
        backend: Backend,
        /// The evaluation error.
        source: EvalError,
    },
    /// SQL schema generation, table creation, or store loading failed
    /// while preparing a database backend.
    Sql {
        /// The backend being prepared.
        backend: Backend,
        /// The SQL-side error.
        source: SqlGenError,
    },
}

impl SpecError {
    /// The source span of the failing spec expression, when the wrapped
    /// evaluation error carries one.
    pub fn span(&self) -> Option<asl_core::Span> {
        match self {
            SpecError::Bind { source, .. } => source.span,
            SpecError::NoMainRegion | SpecError::Sql { .. } => None,
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoMainRegion => write!(f, "version has no main region"),
            SpecError::Bind { backend, source } => {
                write!(f, "binding spec to store for {backend:?} failed: {source}")
            }
            SpecError::Sql { backend, source } => {
                write!(f, "preparing {backend:?} database failed: {source}")
            }
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::NoMainRegion => None,
            SpecError::Bind { source, .. } => Some(source),
            SpecError::Sql { source, .. } => Some(source),
        }
    }
}

/// Why a property-evaluation pass failed. `Ok(None)`-style skips
/// ("property not applicable in this context") never become errors — these
/// are genuine specification or data problems.
#[derive(Debug)]
pub enum AnalysisError {
    /// Preparing the evaluation backend failed (the pass never started).
    Spec(SpecError),
    /// A property instance failed to evaluate on a client-side engine.
    Property {
        /// The failing property.
        property: String,
        /// The evaluation error (kind + message).
        source: EvalError,
    },
    /// The SQL backend failed to compile or execute a property instance.
    Sql {
        /// The failing property.
        property: String,
        /// The SQL-side error.
        source: SqlGenError,
    },
    /// A property instance had an argument shape the backend cannot
    /// handle (e.g. a non-object subject passed to the batched SQL
    /// translation).
    BadInstance {
        /// The failing property.
        property: String,
        /// What was wrong with the instance.
        detail: String,
    },
}

impl AnalysisError {
    /// The source span of the failing spec expression, when the wrapped
    /// evaluation error carries one.
    pub fn span(&self) -> Option<asl_core::Span> {
        match self {
            AnalysisError::Spec(e) => e.span(),
            AnalysisError::Property { source, .. } => source.span,
            AnalysisError::Sql { .. } | AnalysisError::BadInstance { .. } => None,
        }
    }

    /// Render the error against the spec source it came from. With a span,
    /// this is the one-line message followed by a caret snippet pointing at
    /// the failing expression; without one, just the message.
    pub fn render(&self, source: &str) -> String {
        match self.span() {
            None => self.to_string(),
            Some(span) => {
                let map = asl_core::SourceMap::new(source);
                let d = asl_core::Diagnostic::error(span, self.to_string());
                d.render_snippet(source, &map)
            }
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Spec(e) => write!(f, "backend preparation failed: {e}"),
            AnalysisError::Property { property, source } => write!(f, "{property}: {source}"),
            AnalysisError::Sql { property, source } => write!(f, "{property}: {source}"),
            AnalysisError::BadInstance { property, detail } => write!(f, "{property}: {detail}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Spec(e) => Some(e),
            AnalysisError::Property { source, .. } => Some(source),
            AnalysisError::Sql { source, .. } => Some(source),
            AnalysisError::BadInstance { .. } => None,
        }
    }
}

impl From<SpecError> for AnalysisError {
    fn from(e: SpecError) -> Self {
        AnalysisError::Spec(e)
    }
}
