//! Evaluation backends: client-side interpretation vs in-database SQL.
//!
//! §5 of the paper compares two work distributions between the analysis
//! tool and the database server: fetching the data components and
//! evaluating property expressions in the tool, versus translating the
//! conditions entirely into SQL queries. Both are first-class here and must
//! produce identical analyses (enforced by integration tests).

use crate::error::{AnalysisError, SpecError};
use asl_core::check::CheckedSpec;
use asl_eval::{
    compile as compile_ir, CompiledEvaluator, CompiledSpec, CosyData, Interpreter, PropertyOutcome,
    Value,
};
use asl_sql::{
    compile_batch, compile_property, eval_batch, eval_compiled, generate_schema, loader, SchemaInfo,
};
use perfdata::Store;
use reldb::Database;
use std::collections::HashMap;
use std::sync::Arc;

/// Which evaluation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The slot-indexed compiled IR over the object store — the production
    /// client-side engine (properties are lowered once, then every
    /// instance executes with O(1) name resolution and indexed metric
    /// loads).
    #[default]
    Compiled,
    /// Direct AST interpretation over the object store. Kept as the
    /// reference oracle the compiled engine is validated against.
    Interpreter,
    /// Compilation of every property instance into SQL, executed by the
    /// embedded relational engine.
    Sql,
    /// One SQL query per (property, run) covering all contexts at once —
    /// the fully set-oriented translation (§5/§6 of the paper).
    SqlBatched,
}

/// Cache key for batched evaluation: (property, run id, basis id).
type BatchKey = (String, u32, u32);

/// A prepared evaluator for one backend. `None` outcomes mean the property
/// is not applicable in that context (e.g. no timing recorded).
pub enum PreparedBackend<'a> {
    /// Compiled-IR state: the lowered spec bound to the store.
    Compiled(CompiledEvaluator<CosyData<'a>>),
    /// Interpreter state.
    Interpreter(Interpreter<'a, CosyData<'a>>),
    /// SQL state: generated schema plus the loaded database.
    Sql {
        /// The checked suite.
        spec: &'a CheckedSpec,
        /// Generated schema info (needed to compile properties).
        schema: SchemaInfo,
        /// The populated database.
        db: Database,
    },
    /// Batched SQL state: like [`PreparedBackend::Sql`] plus a cache of
    /// whole-context-set results keyed by (property, run, basis).
    SqlBatched {
        /// The checked suite.
        spec: &'a CheckedSpec,
        /// Generated schema info.
        schema: SchemaInfo,
        /// The populated database.
        db: Database,
        /// One result map per (property, run, basis); filled lazily.
        cache: std::sync::Mutex<HashMap<BatchKey, HashMap<u32, PropertyOutcome>>>,
    },
}

impl<'a> PreparedBackend<'a> {
    /// Prepare a backend for a suite and a store.
    pub fn prepare(
        backend: Backend,
        spec: &'a CheckedSpec,
        store: &'a Store,
    ) -> Result<Self, SpecError> {
        let sql = |source| SpecError::Sql { backend, source };
        match backend {
            Backend::Compiled => Self::from_compiled(Arc::new(compile_ir(spec)), store),
            Backend::Interpreter => {
                let data = CosyData::new(store);
                let interp = Interpreter::new(spec, data)
                    .map_err(|source| SpecError::Bind { backend, source })?;
                Ok(PreparedBackend::Interpreter(interp))
            }
            Backend::Sql | Backend::SqlBatched => {
                let schema = generate_schema(&spec.model).map_err(sql)?;
                let mut db = Database::new();
                schema.create_all(&mut db).map_err(sql)?;
                let data = CosyData::new(store);
                loader::load_store(&mut db, &schema, &spec.model, &data).map_err(sql)?;
                if backend == Backend::Sql {
                    Ok(PreparedBackend::Sql { spec, schema, db })
                } else {
                    Ok(PreparedBackend::SqlBatched {
                        spec,
                        schema,
                        db,
                        cache: std::sync::Mutex::new(HashMap::new()),
                    })
                }
            }
        }
    }

    /// Bind an already-compiled spec to a store. This is the cheap
    /// re-preparation path the online engine uses on every flush: the
    /// expensive lowering happened once, binding only re-evaluates the
    /// spec's global constants.
    pub fn from_compiled(
        compiled: Arc<CompiledSpec>,
        store: &'a Store,
    ) -> Result<PreparedBackend<'a>, SpecError> {
        // Property instances of one flush overwhelmingly share `Run ==`
        // metric loads and helper calls (`Summary(r,t)`, `Duration(Basis,t)`
        // in every severity arm); memoize both for the binding's lifetime.
        let data = CosyData::with_filter_memo(store);
        let eval =
            CompiledEvaluator::new_memoized(compiled, data).map_err(|source| SpecError::Bind {
                backend: Backend::Compiled,
                source,
            })?;
        Ok(PreparedBackend::Compiled(eval))
    }

    /// Evaluate one property instance. Returns `Ok(None)` when the property
    /// is not applicable in the context.
    pub fn eval(
        &self,
        prop: &str,
        args: &[Value],
    ) -> Result<Option<PropertyOutcome>, AnalysisError> {
        let property = |source| AnalysisError::Property {
            property: prop.to_string(),
            source,
        };
        let sql = |source| AnalysisError::Sql {
            property: prop.to_string(),
            source,
        };
        match self {
            PreparedBackend::Compiled(eval) => match eval.eval_property(prop, args) {
                Ok(o) => Ok(Some(o)),
                Err(e) if e.is_not_applicable() => Ok(None),
                Err(e) => Err(property(e)),
            },
            PreparedBackend::Interpreter(interp) => match interp.eval_property(prop, args) {
                Ok(o) => Ok(Some(o)),
                Err(e) if e.is_not_applicable() => Ok(None),
                Err(e) => Err(property(e)),
            },
            PreparedBackend::Sql { spec, schema, db } => {
                let cp = compile_property(spec, schema, prop, args).map_err(sql)?;
                let o = eval_compiled(db, &cp).map_err(sql)?;
                Ok(Some(o))
            }
            PreparedBackend::SqlBatched {
                spec,
                schema,
                db,
                cache,
            } => {
                // Expect the COSY signature (subject, run, basis).
                let subject = match args.first() {
                    Some(Value::Obj(o)) => o.clone(),
                    other => {
                        return Err(AnalysisError::BadInstance {
                            property: prop.to_string(),
                            detail: format!("non-object subject {other:?}"),
                        })
                    }
                };
                let (run, basis) = match (args.get(1), args.get(2)) {
                    (Some(Value::Obj(r)), Some(Value::Obj(b))) => (r.index, b.index),
                    other => {
                        return Err(AnalysisError::BadInstance {
                            property: prop.to_string(),
                            detail: format!("unexpected context {other:?}"),
                        })
                    }
                };
                let key: BatchKey = (prop.to_string(), run, basis);
                let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
                if !cache.contains_key(&key) {
                    let fixed = [(1usize, args[1].clone()), (2usize, args[2].clone())];
                    let bc = compile_batch(spec, schema, prop, 0, &fixed, None).map_err(sql)?;
                    let outcomes = eval_batch(db, &bc).map_err(sql)?;
                    cache.insert(key.clone(), outcomes.into_iter().collect());
                }
                let by_id = &cache[&key];
                Ok(Some(by_id.get(&subject.index).cloned().unwrap_or(
                    // Absent from the batch result: the conditions filtered
                    // it server-side — the property does not hold here.
                    PropertyOutcome {
                        property: prop.to_string(),
                        holds: false,
                        fired: Vec::new(),
                        confidence: 0.0,
                        severity: 0.0,
                    },
                )))
            }
        }
    }
}
