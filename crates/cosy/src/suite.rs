//! The standard COSY property suite, in ASL source form.

use asl_core::check::CheckedSpec;
use asl_core::parse_and_check;
use asl_eval::COSY_DATA_MODEL;

/// Which contexts a property is instantiated over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextSelector {
    /// Every region of the analyzed version, paired with the selected run.
    AllRegions,
    /// Call sites of the `barrier` runtime routine (§4.2: `LoadImbalance`
    /// "is evaluated only for calls to the barrier routine").
    BarrierCalls,
    /// Every call site.
    AllCalls,
}

/// Metadata for one property of the suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyInfo {
    /// Property name as declared in the ASL source.
    pub name: &'static str,
    /// Context enumeration rule.
    pub contexts: ContextSelector,
    /// True for the properties printed verbatim in the paper; false for
    /// our documented extensions.
    pub from_paper: bool,
}

/// The properties of the standard suite, in reporting order.
pub const SUITE: &[PropertyInfo] = &[
    PropertyInfo {
        name: "SublinearSpeedup",
        contexts: ContextSelector::AllRegions,
        from_paper: true,
    },
    PropertyInfo {
        name: "MeasuredCost",
        contexts: ContextSelector::AllRegions,
        from_paper: true,
    },
    PropertyInfo {
        name: "UnmeasuredCost",
        contexts: ContextSelector::AllRegions,
        from_paper: true,
    },
    PropertyInfo {
        name: "SyncCost",
        contexts: ContextSelector::AllRegions,
        from_paper: true,
    },
    PropertyInfo {
        name: "LoadImbalance",
        contexts: ContextSelector::BarrierCalls,
        from_paper: true,
    },
    PropertyInfo {
        name: "MessagePassingCost",
        contexts: ContextSelector::AllRegions,
        from_paper: false,
    },
    PropertyInfo {
        name: "CollectiveCost",
        contexts: ContextSelector::AllRegions,
        from_paper: false,
    },
    PropertyInfo {
        name: "OneSidedCost",
        contexts: ContextSelector::AllRegions,
        from_paper: false,
    },
    PropertyInfo {
        name: "IoCost",
        contexts: ContextSelector::AllRegions,
        from_paper: false,
    },
    PropertyInfo {
        name: "BufferCost",
        contexts: ContextSelector::AllRegions,
        from_paper: false,
    },
    PropertyInfo {
        name: "RuntimeOverhead",
        contexts: ContextSelector::AllRegions,
        from_paper: false,
    },
    PropertyInfo {
        name: "FrequentFineGrainCalls",
        contexts: ContextSelector::AllCalls,
        from_paper: false,
    },
];

/// The property specifications. The first five are the paper's §4.2
/// properties (`UnmeasuredCost` is described in prose as the counterpart of
/// `MeasuredCost`); the rest are refinement properties per overhead family,
/// marked as extensions in [`SUITE`].
pub const SUITE_PROPERTIES: &str = r#"
// cosy-lint: allow(residual-filter-scan): the per-overhead-family properties
// filter `r.TypTimes` by `Run == t AND Type == X`; the store only indexes
// (owner, Run), so the Type equality runs per element. Known hot path,
// accepted until the store serves a composite (Run, Type) index natively.

// Tool-defined thresholds (§4.2 references ImbalanceThreshold).
float ImbalanceThreshold = 0.25;
float FrequentCallThreshold = 100.0;
float GranularityThreshold = 0.0001;

// ---- §4.2 of the paper --------------------------------------------------

Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
    LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
            MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
        float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run)
    IN
    CONDITION: TotalCost>0; CONFIDENCE: 1;
    SEVERITY: TotalCost/Duration(Basis,t);
}

Property MeasuredCost (Region r, TestRun t, Region Basis) {
    LET float Cost = Summary(r,t).Ovhd;
    IN CONDITION: Cost > 0; CONFIDENCE: 1;
    SEVERITY: Cost / Duration(Basis,t);
}

Property UnmeasuredCost (Region r, TestRun t, Region Basis) {
    LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
            MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
        float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run);
        float Unmeasured = TotalCost - Summary(r,t).Ovhd
    IN CONDITION: Unmeasured > 0; CONFIDENCE: 1;
    SEVERITY: Unmeasured / Duration(Basis,t);
}

Property SyncCost(Region r, TestRun t, Region Basis) {
    LET float Barrier2 = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
            AND tt.Type == Barrier)
    IN CONDITION: Barrier2 > 0; CONFIDENCE: 1;
    SEVERITY: Barrier2 / Duration(Basis,t);
}

Property LoadImbalance(FunctionCall Call, TestRun t, Region Basis) {
    LET CallTiming ct = UNIQUE ({c IN Call.Sums WITH c.Run == t});
        float Dev = ct.StdevTime;
        float Mean = ct.MeanTime
    IN CONDITION: Dev > ImbalanceThreshold * Mean; CONFIDENCE: 1;
    SEVERITY: Mean / Duration(Basis,t);
}

// ---- refinement properties per overhead family (extensions) -------------

Property MessagePassingCost(Region r, TestRun t, Region Basis) {
    LET float Msg = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
            AND (tt.Type == PtpSend OR tt.Type == PtpRecv OR tt.Type == PtpWait))
    IN CONDITION: Msg > 0; CONFIDENCE: 1;
    SEVERITY: Msg / Duration(Basis,t);
}

Property CollectiveCost(Region r, TestRun t, Region Basis) {
    LET float Coll = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
            AND (tt.Type == Broadcast OR tt.Type == Reduce OR tt.Type == AllReduce
                 OR tt.Type == Gather OR tt.Type == Scatter OR tt.Type == AllToAll))
    IN CONDITION: Coll > 0; CONFIDENCE: 1;
    SEVERITY: Coll / Duration(Basis,t);
}

Property OneSidedCost(Region r, TestRun t, Region Basis) {
    LET float Shm = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
            AND (tt.Type == ShmemPut OR tt.Type == ShmemGet OR tt.Type == ShmemWait))
    IN CONDITION: Shm > 0; CONFIDENCE: 1;
    SEVERITY: Shm / Duration(Basis,t);
}

Property IoCost(Region r, TestRun t, Region Basis) {
    LET float Io = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
            AND (tt.Type == IoOpen OR tt.Type == IoClose OR tt.Type == IoRead
                 OR tt.Type == IoWrite OR tt.Type == IoSeek))
    IN CONDITION: Io > 0; CONFIDENCE: 1;
    SEVERITY: Io / Duration(Basis,t);
}

Property BufferCost(Region r, TestRun t, Region Basis) {
    LET float Buf = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
            AND (tt.Type == BufferPack OR tt.Type == BufferUnpack))
    IN CONDITION: Buf > 0; CONFIDENCE: 1;
    SEVERITY: Buf / Duration(Basis,t);
}

Property RuntimeOverhead(Region r, TestRun t, Region Basis) {
    LET float Rt = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
            AND (tt.Type == Startup OR tt.Type == Shutdown OR tt.Type == Instrumentation))
    IN CONDITION: Rt > 0; CONFIDENCE: 1;
    SEVERITY: Rt / Duration(Basis,t);
}

// A Paradyn-inspired granularity check (cf. TooManySmallIOOps in §2):
// a call site executed very often with tiny per-call time.
Property FrequentFineGrainCalls(FunctionCall Call, TestRun t, Region Basis) {
    LET CallTiming ct = UNIQUE({c IN Call.Sums WITH c.Run == t})
    IN CONDITION: ct.MeanCount > FrequentCallThreshold
                  AND ct.MeanTime / ct.MeanCount < GranularityThreshold;
    CONFIDENCE: 0.8;
    SEVERITY: ct.MeanTime / Duration(Basis,t);
}
"#;

/// The full ASL source of the standard suite (data model + properties).
pub fn standard_suite_source() -> String {
    format!("{COSY_DATA_MODEL}\n{SUITE_PROPERTIES}")
}

/// Parse and type-check the standard suite.
pub fn standard_suite() -> CheckedSpec {
    let src = standard_suite_source();
    parse_and_check(&src)
        .unwrap_or_else(|d| panic!("standard suite must check:\n{}", d.render(&src)))
}

/// Metadata lookup by property name.
pub fn property_info(name: &str) -> Option<&'static PropertyInfo> {
    SUITE.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_parses_and_checks() {
        let spec = standard_suite();
        assert_eq!(spec.properties().len(), SUITE.len());
    }

    #[test]
    fn suite_metadata_matches_declarations() {
        let spec = standard_suite();
        for info in SUITE {
            let p = spec
                .property(info.name)
                .unwrap_or_else(|| panic!("{} not declared", info.name));
            // Context selector must match the first parameter's type.
            let first = p.params[0].ty.to_string();
            match info.contexts {
                ContextSelector::AllRegions => assert_eq!(first, "Region", "{}", info.name),
                ContextSelector::BarrierCalls | ContextSelector::AllCalls => {
                    assert_eq!(first, "FunctionCall", "{}", info.name)
                }
            }
        }
    }

    #[test]
    fn five_paper_properties_flagged() {
        assert_eq!(SUITE.iter().filter(|p| p.from_paper).count(), 5);
        assert!(property_info("SublinearSpeedup").unwrap().from_paper);
        assert!(!property_info("IoCost").unwrap().from_paper);
    }

    #[test]
    fn paper_properties_take_region_run_basis() {
        let spec = standard_suite();
        for name in [
            "SublinearSpeedup",
            "MeasuredCost",
            "UnmeasuredCost",
            "SyncCost",
        ] {
            let p = spec.property(name).unwrap();
            let tys: Vec<String> = p.params.iter().map(|x| x.ty.to_string()).collect();
            assert_eq!(tys, ["Region", "TestRun", "Region"], "{name}");
        }
    }
}
