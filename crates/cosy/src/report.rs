//! Text rendering of analysis reports — the presentation the paper's §3
//! describes: "The performance properties are ranked according to their
//! severity and presented to the application programmer."

use crate::analyzer::AnalysisReport;
use std::fmt::Write;

/// Render a fixed-width text table of the ranked properties.
pub fn render_text(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "COSY analysis: program `{}`, {} PEs (reference: {} PEs)",
        report.program, report.no_pe, report.reference_pe
    );
    let _ = writeln!(
        out,
        "basis duration {:.3} s (summed over processes); total cost {:.1}% of basis",
        report.basis_duration,
        report.total_cost * 100.0
    );
    let _ = writeln!(
        out,
        "problem threshold: severity > {:.1}% | {} contexts quiet/skipped",
        report.threshold.0 * 100.0,
        report.skipped
    );
    out.push('\n');

    let header = ["rank", "property", "context", "severity", "conf", "problem"];
    let mut rows: Vec<[String; 6]> = Vec::with_capacity(report.entries.len());
    for e in &report.entries {
        rows.push([
            e.rank.to_string(),
            e.property.clone(),
            e.context.label.clone(),
            format!("{:8.4}%", e.severity * 100.0),
            format!("{:.2}", e.confidence),
            if e.is_problem { "YES" } else { "-" }.to_string(),
        ]);
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let print_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    };
    print_row(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in &rows {
        print_row(&mut out, row);
    }
    out.push('\n');
    match report.bottleneck() {
        Some(b) if b.is_problem => {
            let _ = writeln!(
                out,
                "bottleneck: {} at {} (severity {:.2}%) — tuning recommended",
                b.property,
                b.context.label,
                b.severity * 100.0
            );
        }
        Some(b) => {
            let _ = writeln!(
                out,
                "bottleneck: {} at {} (severity {:.2}%) — below threshold, \
                 no further tuning needed",
                b.property,
                b.context.label,
                b.severity * 100.0
            );
        }
        None => {
            let _ = writeln!(out, "no property holds: nothing to tune");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{Analyzer, ProblemThreshold};
    use crate::backend::Backend;
    use apprentice_sim::{archetypes, simulate_program, MachineModel};

    #[test]
    fn report_renders_ranked_table() {
        let mut store = perfdata::Store::new();
        let model = archetypes::particle_mc(3);
        let machine = MachineModel::t3e_900();
        let version = simulate_program(&mut store, &model, &machine, &[1, 16]);
        let run = store.versions[version.index()].runs[1];
        let report = Analyzer::new(&store, version)
            .unwrap()
            .analyze(run, Backend::Interpreter, ProblemThreshold::default())
            .unwrap();
        let text = render_text(&report);
        assert!(text.contains("COSY analysis"), "{text}");
        assert!(text.contains("SublinearSpeedup") || text.contains("SyncCost"));
        assert!(text.contains("bottleneck:"));
        // Ranked table is aligned: the header line is as long as the rule.
        assert!(text.lines().any(|l| l.starts_with("rank")));
    }

    #[test]
    fn empty_report_renders_gracefully() {
        // A minimal hand-built store: one overhead-free run of one region.
        use perfdata::{DateTime, RegionKind, Store};
        let mut store = Store::new();
        let p = store.add_program("quiet");
        let version = store.add_version(p, DateTime::from_secs(0), "");
        let run = store.add_run(version, DateTime::from_secs(1), 1, 450);
        let f = store.add_function(version, "main");
        let root = store.add_region(f, None, RegionKind::Subprogram, "main", (1, 10));
        store.add_total_timing(root, run, 1.0, 1.0, 0.0);
        let report = Analyzer::new(&store, version)
            .unwrap()
            .analyze(run, Backend::Interpreter, ProblemThreshold::default())
            .unwrap();
        let text = render_text(&report);
        // Nothing holds: no overhead, reference run compared with itself.
        assert!(text.contains("no property holds"), "{text}");
    }
}
