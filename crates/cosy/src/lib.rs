//! # `cosy` — the KOJAK Cost Analyzer
//!
//! The analysis tool of §3 of *Specification Techniques for Automatic
//! Performance Analysis Tools*: COSY "analyzes the performance of parallel
//! programs based on performance data of multiple test runs", identifies
//! regions with high parallelization overhead via their speedup, explains
//! the overhead through performance properties, and ranks the properties by
//! severity.
//!
//! * [`suite`] — the standard property suite in ASL source form: the five
//!   properties printed in the paper (`SublinearSpeedup`, `MeasuredCost`,
//!   `UnmeasuredCost`, `SyncCost`, `LoadImbalance`) plus refinement
//!   properties per overhead family (documented extensions);
//! * [`backend`] — the two evaluation strategies of §5: client-side
//!   interpretation (`asl-eval`) and full translation to SQL (`asl-sql`),
//!   behind one trait so analyses are backend-agnostic;
//! * [`analyzer`] — context enumeration (region × run, barrier-call × run),
//!   parallel property evaluation (rayon), severity ranking, the
//!   user/tool-defined *performance problem* threshold, and the §4
//!   *bottleneck* rule ("a program has a unique bottleneck, which is its
//!   most severe performance property");
//! * [`report`] — the text presentation of the ranked results.
//!
//! ```
//! use cosy::{Analyzer, Backend, ProblemThreshold};
//! use apprentice_sim::{archetypes, simulate_program, MachineModel};
//!
//! let mut store = perfdata::Store::new();
//! let model = archetypes::particle_mc(7);
//! let machine = MachineModel::t3e_900();
//! let version = simulate_program(&mut store, &model, &machine, &[1, 4, 16]);
//! let run = store.versions[version.index()].runs[2];
//!
//! let analyzer = Analyzer::new(&store, version).unwrap();
//! let report = analyzer.analyze(run, Backend::Interpreter, ProblemThreshold::default()).unwrap();
//! assert!(report.bottleneck().is_some());
//! println!("{}", cosy::report::render_text(&report));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyzer;
pub mod backend;
pub mod error;
pub mod report;
pub mod suite;

pub use analyzer::{
    AnalysisReport, Analyzer, ContextDesc, ContextScope, HeldEntry, Instance, ProblemThreshold,
    RankedEntry,
};
pub use backend::Backend;
pub use error::{AnalysisError, SpecError};
pub use suite::{standard_suite, standard_suite_source, ContextSelector, PropertyInfo};
