//! Context enumeration, parallel property evaluation, ranking and
//! bottleneck detection.

use crate::backend::{Backend, PreparedBackend};
use crate::error::{AnalysisError, SpecError};
use crate::suite::{standard_suite, ContextSelector, SUITE};
use asl_core::check::CheckedSpec;
use asl_eval::{compile as compile_ir, CompiledSpec, Value};
use perfdata::{CallId, RegionId, Store, TestRunId, VersionId};
use rayon::prelude::*;
use serde::Serialize;
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

/// Severity threshold above which a property is a *performance problem*
/// (§4: "A performance property is a performance problem, iff its severity
/// is greater than a user- or tool-defined threshold").
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ProblemThreshold(pub f64);

impl Default for ProblemThreshold {
    fn default() -> Self {
        // 5% of the ranking basis duration.
        ProblemThreshold(0.05)
    }
}

/// The context a property instance was evaluated in.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ContextDesc {
    /// Region context, if region-based.
    pub region: Option<u32>,
    /// Call-site context, if call-based.
    pub call: Option<u32>,
    /// The analyzed test run.
    pub run: u32,
    /// Human-readable label (region name or call description).
    pub label: String,
}

/// One ranked analysis result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RankedEntry {
    /// Rank (1-based, by decreasing severity).
    pub rank: usize,
    /// Property name.
    pub property: String,
    /// Evaluation context.
    pub context: ContextDesc,
    /// Severity (fraction of the basis duration).
    pub severity: f64,
    /// Confidence in `[0, 1]`.
    pub confidence: f64,
    /// True if severity exceeds the problem threshold.
    pub is_problem: bool,
}

/// A complete COSY analysis of one test run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AnalysisReport {
    /// Program name.
    pub program: String,
    /// Analyzed run's processor count.
    pub no_pe: u32,
    /// Reference run's processor count (smallest configuration).
    pub reference_pe: u32,
    /// Duration of the ranking basis region in the analyzed run (summed
    /// over processes, seconds).
    pub basis_duration: f64,
    /// Total cost of the run: lost cycles vs the reference run, relative to
    /// the basis duration (the severity of `SublinearSpeedup` on the basis
    /// region — "the main property is the total cost of the test run").
    pub total_cost: f64,
    /// The problem threshold used.
    pub threshold: ProblemThreshold,
    /// Entries holding with severity > 0, ranked by decreasing severity.
    pub entries: Vec<RankedEntry>,
    /// Contexts skipped as not applicable.
    pub skipped: usize,
}

impl AnalysisReport {
    /// The program's unique bottleneck: its most severe property (§4).
    /// `None` when nothing held.
    pub fn bottleneck(&self) -> Option<&RankedEntry> {
        self.entries.first()
    }

    /// Entries above the problem threshold.
    pub fn problems(&self) -> impl Iterator<Item = &RankedEntry> {
        self.entries.iter().filter(|e| e.is_problem)
    }

    /// §4: "If this bottleneck is not a performance problem, the program
    /// does not need any further tuning."
    pub fn needs_tuning(&self) -> bool {
        self.bottleneck().is_some_and(|b| b.is_problem)
    }
}

/// One property instance that held, before ranking. The shared currency of
/// the batch analyzer and the incremental online engine (`cosy-online`):
/// both produce `HeldEntry` values through the same evaluation path and
/// feed them to [`Analyzer::assemble_report`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HeldEntry {
    /// Property name.
    pub property: String,
    /// Evaluation context.
    pub context: ContextDesc,
    /// Severity (fraction of the basis duration).
    pub severity: f64,
    /// Confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Which contexts of a run to enumerate: everything (batch analysis) or
/// only a dirty subset (incremental re-analysis after a store delta).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ContextScope {
    /// All regions and call sites of the version.
    #[default]
    All,
    /// Only the listed regions and call sites.
    Dirty {
        /// Region contexts to (re-)evaluate.
        regions: HashSet<RegionId>,
        /// Call-site contexts to (re-)evaluate.
        calls: HashSet<CallId>,
    },
}

impl ContextScope {
    /// Does the scope include region `r`?
    pub fn has_region(&self, r: RegionId) -> bool {
        match self {
            ContextScope::All => true,
            ContextScope::Dirty { regions, .. } => regions.contains(&r),
        }
    }

    /// Does the scope include call site `c`?
    pub fn has_call(&self, c: CallId) -> bool {
        match self {
            ContextScope::All => true,
            ContextScope::Dirty { calls, .. } => calls.contains(&c),
        }
    }

    /// True when the scope selects nothing.
    pub fn is_empty(&self) -> bool {
        match self {
            ContextScope::All => false,
            ContextScope::Dirty { regions, calls } => regions.is_empty() && calls.is_empty(),
        }
    }
}

/// One enumerated property instance: property name, argument vector and
/// the human-facing context description.
pub type Instance = (String, Vec<Value>, ContextDesc);

/// The COSY analyzer bound to one program version in a store.
pub struct Analyzer<'s> {
    store: &'s Store,
    version: VersionId,
    spec: Arc<CheckedSpec>,
    /// The suite lowered to the slot-indexed IR; compiled lazily on the
    /// first `Backend::Compiled` analysis and shared from then on.
    compiled: OnceLock<Arc<CompiledSpec>>,
    basis: RegionId,
}

impl<'s> Analyzer<'s> {
    /// Create an analyzer with the standard suite; the ranking basis is the
    /// main region of the version.
    pub fn new(store: &'s Store, version: VersionId) -> Result<Self, SpecError> {
        Self::with_spec(store, version, Arc::new(standard_suite()))
    }

    /// Create an analyzer with a pre-parsed shared suite. The online engine
    /// re-binds analyzers on every flush; sharing the [`CheckedSpec`] via
    /// `Arc` keeps that re-binding free of ASL re-parsing.
    pub fn with_spec(
        store: &'s Store,
        version: VersionId,
        spec: Arc<CheckedSpec>,
    ) -> Result<Self, SpecError> {
        let basis = store.main_region(version).ok_or(SpecError::NoMainRegion)?;
        Ok(Analyzer {
            store,
            version,
            spec,
            compiled: OnceLock::new(),
            basis,
        })
    }

    /// Create an analyzer sharing both a pre-checked suite and its
    /// pre-lowered IR. The online engine compiles the suite once per
    /// session and re-binds analyzers on every flush through this
    /// constructor, so no per-flush lowering happens.
    pub fn with_compiled(
        store: &'s Store,
        version: VersionId,
        spec: Arc<CheckedSpec>,
        compiled: Arc<CompiledSpec>,
    ) -> Result<Self, SpecError> {
        let analyzer = Self::with_spec(store, version, spec)?;
        let _ = analyzer.compiled.set(compiled);
        Ok(analyzer)
    }

    /// Use a custom checked suite (must be based on the COSY data model).
    pub fn with_suite(mut self, spec: CheckedSpec) -> Self {
        self.spec = Arc::new(spec);
        self.compiled = OnceLock::new();
        self
    }

    /// Override the ranking basis region.
    pub fn with_basis(mut self, basis: RegionId) -> Self {
        self.basis = basis;
        self
    }

    /// The checked suite in use.
    pub fn spec(&self) -> &CheckedSpec {
        &self.spec
    }

    /// The checked suite as a shareable handle.
    pub fn shared_spec(&self) -> Arc<CheckedSpec> {
        Arc::clone(&self.spec)
    }

    /// The suite lowered to the compiled IR (lowering happens once, on
    /// first use, and is shared afterwards).
    pub fn compiled_spec(&self) -> Arc<CompiledSpec> {
        Arc::clone(
            self.compiled
                .get_or_init(|| Arc::new(compile_ir(&self.spec))),
        )
    }

    /// The ranking basis region.
    pub fn basis(&self) -> RegionId {
        self.basis
    }

    /// Regions of the analyzed version (all functions).
    pub fn regions(&self) -> Vec<RegionId> {
        self.store.versions[self.version.index()]
            .functions
            .iter()
            .flat_map(|f| self.store.functions[f.index()].regions.iter().copied())
            .collect()
    }

    /// Call sites according to a context selector.
    pub fn calls(&self, selector: ContextSelector) -> Vec<CallId> {
        let version = &self.store.versions[self.version.index()];
        version
            .functions
            .iter()
            .filter(|f| {
                selector == ContextSelector::AllCalls
                    || self.store.functions[f.index()].name == "barrier"
            })
            .flat_map(|f| self.store.functions[f.index()].calls.iter().copied())
            .collect()
    }

    /// Enumerate all (property, argument-vector, context) instances for one
    /// run. Properties not present in the suite spec are skipped.
    pub fn instances(&self, run: TestRunId) -> Vec<Instance> {
        self.instances_scoped(run, &ContextScope::All)
    }

    /// Enumerate the property instances of one run restricted to a context
    /// scope. `ContextScope::All` yields the full batch cross-product; a
    /// dirty scope yields only the instances whose region/call context is
    /// listed — the unit of work of incremental re-analysis.
    pub fn instances_scoped(&self, run: TestRunId, scope: &ContextScope) -> Vec<Instance> {
        let mut out = Vec::new();
        let basis = Value::region(self.basis);
        for info in SUITE {
            if self.spec.property(info.name).is_none() {
                continue;
            }
            match info.contexts {
                ContextSelector::AllRegions => {
                    for r in self.regions() {
                        if !scope.has_region(r) {
                            continue;
                        }
                        out.push((
                            info.name.to_string(),
                            vec![Value::region(r), Value::run(run), basis.clone()],
                            ContextDesc {
                                region: Some(r.0),
                                call: None,
                                run: run.0,
                                label: self.store.regions[r.index()].name.clone(),
                            },
                        ));
                    }
                }
                sel @ (ContextSelector::BarrierCalls | ContextSelector::AllCalls) => {
                    for c in self.calls(sel) {
                        if !scope.has_call(c) {
                            continue;
                        }
                        let call = &self.store.calls[c.index()];
                        let callee = &self.store.functions[call.callee.index()].name;
                        let site = &self.store.regions[call.calling_reg.index()].name;
                        out.push((
                            info.name.to_string(),
                            vec![Value::call(c), Value::run(run), basis.clone()],
                            ContextDesc {
                                region: None,
                                call: Some(c.0),
                                run: run.0,
                                label: format!("call {callee} at {site}"),
                            },
                        ));
                    }
                }
            }
        }
        out
    }

    /// Total number of property instances a full pass over any one run of
    /// the version would enumerate (without building them) — a property of
    /// the version's structure, identical for every run. Lets the
    /// incremental engine keep batch-identical `skipped` statistics at
    /// negligible cost.
    pub fn instance_universe(&self) -> usize {
        let regions = self.regions().len();
        let mut count = 0;
        for info in SUITE {
            if self.spec.property(info.name).is_none() {
                continue;
            }
            count += match info.contexts {
                ContextSelector::AllRegions => regions,
                sel @ (ContextSelector::BarrierCalls | ContextSelector::AllCalls) => {
                    self.calls(sel).len()
                }
            };
        }
        count
    }

    /// Evaluate a set of enumerated instances on a prepared backend, in
    /// parallel. The result is aligned with `instances`: `Some(entry)` for
    /// an instance that held with positive severity, `None` for one that
    /// did not hold or was not applicable. Both the batch [`Self::analyze`]
    /// and the incremental engine go through this single code path.
    pub fn evaluate_instances(
        &self,
        prepared: &PreparedBackend<'_>,
        instances: &[Instance],
    ) -> Result<Vec<Option<HeldEntry>>, AnalysisError> {
        let results: Vec<Result<Option<HeldEntry>, AnalysisError>> = instances
            .par_iter()
            .map(|(prop, args, ctx)| match prepared.eval(prop, args)? {
                Some(o) if o.holds && o.severity > 0.0 => Ok(Some(HeldEntry {
                    property: prop.clone(),
                    context: ctx.clone(),
                    severity: o.severity,
                    confidence: o.confidence,
                })),
                _ => Ok(None),
            })
            .collect();
        results.into_iter().collect()
    }

    /// Rank held entries into a complete report. The ordering is total and
    /// deterministic — severity descending, then property name, label and
    /// context ids — so a report assembled incrementally from merged
    /// entries is identical to one assembled from a full batch pass
    /// (rank-stability of the online engine).
    pub fn assemble_report(
        &self,
        run: TestRunId,
        mut held: Vec<HeldEntry>,
        threshold: ProblemThreshold,
        skipped: usize,
    ) -> AnalysisReport {
        held.sort_by(|a, b| {
            b.severity
                .total_cmp(&a.severity)
                .then_with(|| a.property.cmp(&b.property))
                .then_with(|| a.context.label.cmp(&b.context.label))
                .then_with(|| a.context.region.cmp(&b.context.region))
                .then_with(|| a.context.call.cmp(&b.context.call))
        });

        let entries: Vec<RankedEntry> = held
            .into_iter()
            .enumerate()
            .map(|(i, e)| RankedEntry {
                rank: i + 1,
                property: e.property,
                context: e.context,
                severity: e.severity,
                confidence: e.confidence,
                is_problem: e.severity > threshold.0,
            })
            .collect();

        let basis_duration = self.store.duration(self.basis, run).unwrap_or(0.0);
        let total_cost = entries
            .iter()
            .find(|e| e.property == "SublinearSpeedup" && e.context.region == Some(self.basis.0))
            .map(|e| e.severity)
            .unwrap_or(0.0);
        let reference_pe = self
            .store
            .min_pe_run(self.version)
            .map(|r| self.store.runs[r.index()].no_pe)
            .unwrap_or(0);

        AnalysisReport {
            program: self.store.program_of(self.version).name.clone(),
            no_pe: self.store.runs[run.index()].no_pe,
            reference_pe,
            basis_duration,
            total_cost,
            threshold,
            entries,
            skipped,
        }
    }

    /// Run the full analysis of one test run.
    pub fn analyze(
        &self,
        run: TestRunId,
        backend: Backend,
        threshold: ProblemThreshold,
    ) -> Result<AnalysisReport, AnalysisError> {
        let prepared = match backend {
            // Reuse the analyzer's cached lowering instead of re-compiling
            // per analysis call.
            Backend::Compiled => PreparedBackend::from_compiled(self.compiled_spec(), self.store)?,
            other => PreparedBackend::prepare(other, &self.spec, self.store)?,
        };
        let instances = self.instances(run);
        let outcomes = self.evaluate_instances(&prepared, &instances)?;
        let mut skipped = 0usize;
        let mut held = Vec::new();
        for outcome in outcomes {
            match outcome {
                Some(entry) => held.push(entry),
                None => skipped += 1,
            }
        }
        Ok(self.assemble_report(run, held, threshold, skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apprentice_sim::{archetypes, simulate_program, MachineModel};

    fn analyzed(backend: Backend) -> AnalysisReport {
        let mut store = Store::new();
        let model = archetypes::particle_mc(23);
        let machine = MachineModel::t3e_900();
        let version = simulate_program(&mut store, &model, &machine, &[1, 4, 16]);
        let run = store.versions[version.index()].runs[2];
        let analyzer = Analyzer::new(&store, version).unwrap();
        analyzer
            .analyze(run, backend, ProblemThreshold::default())
            .unwrap()
    }

    #[test]
    fn compiled_report_is_identical_to_interpreter() {
        // Exact equality, not tolerance: both engines execute the same
        // arithmetic in the same order.
        let a = analyzed(Backend::Interpreter);
        let b = analyzed(Backend::Compiled);
        assert_eq!(a, b);
    }

    #[test]
    fn particle_mc_analysis_finds_problems() {
        let report = analyzed(Backend::Compiled);
        assert!(!report.entries.is_empty());
        assert!(report.needs_tuning());
        assert!(report.total_cost > 0.0, "16-PE run must show total cost");
        // Sync cost must rank among the problems for this archetype.
        assert!(
            report
                .problems()
                .any(|e| e.property == "SyncCost" || e.property == "LoadImbalance"),
            "expected synchronization-related problems, got: {:?}",
            report
                .entries
                .iter()
                .take(5)
                .map(|e| (&e.property, e.severity))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranking_is_sorted_and_ranked() {
        let report = analyzed(Backend::Interpreter);
        for w in report.entries.windows(2) {
            assert!(w[0].severity >= w[1].severity);
        }
        for (i, e) in report.entries.iter().enumerate() {
            assert_eq!(e.rank, i + 1);
        }
    }

    #[test]
    fn bottleneck_is_most_severe() {
        let report = analyzed(Backend::Interpreter);
        let b = report.bottleneck().unwrap();
        assert!(report.entries.iter().all(|e| e.severity <= b.severity));
    }

    #[test]
    fn backends_agree_on_the_ranking() {
        let a = analyzed(Backend::Interpreter);
        for other in [Backend::Compiled, Backend::Sql, Backend::SqlBatched] {
            let b = analyzed(other);
            assert_eq!(a.entries.len(), b.entries.len(), "{other:?}");
            for (x, y) in a.entries.iter().zip(&b.entries) {
                assert_eq!(x.property, y.property, "{other:?}");
                assert_eq!(x.context.label, y.context.label, "{other:?}");
                assert!(
                    (x.severity - y.severity).abs() <= 1e-9 * x.severity.abs().max(1.0),
                    "{other:?} {}: {} vs {}",
                    x.property,
                    x.severity,
                    y.severity
                );
            }
        }
    }

    #[test]
    fn one_pe_run_has_no_total_cost() {
        let mut store = Store::new();
        let model = archetypes::stencil3d(2);
        let machine = MachineModel::t3e_900();
        let version = simulate_program(&mut store, &model, &machine, &[1, 8]);
        let run1 = store.versions[version.index()].runs[0];
        let analyzer = Analyzer::new(&store, version).unwrap();
        let report = analyzer
            .analyze(run1, Backend::Interpreter, ProblemThreshold::default())
            .unwrap();
        // The reference run compared with itself has zero lost cycles.
        assert_eq!(report.total_cost, 0.0);
        assert!(report
            .entries
            .iter()
            .all(|e| e.property != "SublinearSpeedup"));
    }

    #[test]
    fn load_imbalance_only_on_barrier_calls() {
        let report = analyzed(Backend::Interpreter);
        for e in &report.entries {
            if e.property == "LoadImbalance" {
                assert!(e.context.label.contains("barrier"), "{}", e.context.label);
            }
        }
    }

    #[test]
    fn custom_basis_changes_severities() {
        let mut store = Store::new();
        let model = archetypes::particle_mc(23);
        let machine = MachineModel::t3e_900();
        let version = simulate_program(&mut store, &model, &machine, &[1, 16]);
        let run = store.versions[version.index()].runs[1];
        // Basis = the step subprogram instead of main: severities are
        // relative to a smaller duration, so they grow.
        let step_root = store
            .regions
            .iter()
            .position(|r| r.name == "step")
            .map(|i| perfdata::RegionId(i as u32))
            .unwrap();
        let default_report = Analyzer::new(&store, version)
            .unwrap()
            .analyze(run, Backend::Interpreter, ProblemThreshold::default())
            .unwrap();
        let rebased_report = Analyzer::new(&store, version)
            .unwrap()
            .with_basis(step_root)
            .analyze(run, Backend::Interpreter, ProblemThreshold::default())
            .unwrap();
        let sync = |r: &AnalysisReport| {
            r.entries
                .iter()
                .find(|e| e.property == "SyncCost")
                .map(|e| e.severity)
                .unwrap_or(0.0)
        };
        assert!(sync(&rebased_report) > sync(&default_report));
    }

    #[test]
    fn custom_suite_restricts_properties() {
        let mut store = Store::new();
        let model = archetypes::particle_mc(23);
        let machine = MachineModel::t3e_900();
        let version = simulate_program(&mut store, &model, &machine, &[1, 16]);
        let run = store.versions[version.index()].runs[1];
        // A suite with only SyncCost declared: other SUITE entries are
        // skipped because the spec does not declare them.
        let src = format!(
            "{}\nProperty SyncCost(Region r, TestRun t, Region Basis) {{\n\
             LET float B = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t \
             AND tt.Type == Barrier) IN CONDITION: B > 0; CONFIDENCE: 1; \
             SEVERITY: B / Duration(Basis,t); }}",
            asl_eval::COSY_DATA_MODEL
        );
        let spec = asl_core::parse_and_check(&src).unwrap();
        let report = Analyzer::new(&store, version)
            .unwrap()
            .with_suite(spec)
            .analyze(run, Backend::Interpreter, ProblemThreshold::default())
            .unwrap();
        assert!(!report.entries.is_empty());
        assert!(report.entries.iter().all(|e| e.property == "SyncCost"));
    }

    #[test]
    fn runtime_eval_error_renders_source_span() {
        let mut store = Store::new();
        let model = archetypes::particle_mc(23);
        let machine = MachineModel::t3e_900();
        let version = simulate_program(&mut store, &model, &machine, &[1, 16]);
        let run = store.versions[version.index()].runs[1];
        // A severity expression that always divides by zero at runtime:
        // the error must render a caret snippet pointing at the division
        // in the spec source, not just a bare message.
        let src = format!(
            "{}\nProperty SyncCost(Region r, TestRun t, Region Basis) {{\n\
             \x20   CONDITION: Duration(Basis, t) >= 0;\n\
             \x20   CONFIDENCE: 1;\n\
             \x20   SEVERITY: 1.0 / (Duration(r, t) - Duration(r, t));\n\
             }}",
            asl_eval::COSY_DATA_MODEL
        );
        let spec = asl_core::parse_and_check(&src).unwrap();
        for backend in [Backend::Interpreter, Backend::Compiled] {
            let err = Analyzer::new(&store, version)
                .unwrap()
                .with_suite(spec.clone())
                .analyze(run, backend, ProblemThreshold::default())
                .unwrap_err();
            let rendered = err.render(&src);
            assert!(rendered.contains("division by zero"), "{rendered}");
            assert!(rendered.contains("-->"), "{rendered}");
            assert!(rendered.contains('^'), "{rendered}");
            // The caret points into the SEVERITY line of the property at
            // the end of the source, far past the data model.
            let line = err
                .span()
                .map(|s| asl_core::SourceMap::new(&src).locate(s.start).line);
            assert!(line.unwrap_or(0) > 10, "span line: {line:?}");
        }
    }

    #[test]
    fn threshold_controls_problem_flag() {
        let mut store = Store::new();
        let model = archetypes::particle_mc(23);
        let machine = MachineModel::t3e_900();
        let version = simulate_program(&mut store, &model, &machine, &[1, 16]);
        let run = store.versions[version.index()].runs[1];
        let analyzer = Analyzer::new(&store, version).unwrap();
        let strict = analyzer
            .analyze(run, Backend::Interpreter, ProblemThreshold(0.0))
            .unwrap();
        let lax = analyzer
            .analyze(run, Backend::Interpreter, ProblemThreshold(f64::MAX))
            .unwrap();
        assert!(strict.problems().count() > 0);
        assert_eq!(lax.problems().count(), 0);
        assert!(!lax.needs_tuning());
    }
}
