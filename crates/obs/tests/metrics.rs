//! Unit suite for the instrumentation primitives: histogram bucket
//! boundaries and overflow, merge associativity (the shard fan-in
//! contract), the snapshot codec, the text exposition, and the two off
//! switches.
//!
//! Tests that *record* through the live primitives are compiled out
//! under `obs-off` (recording is a no-op there, by design); the pure
//! snapshot/codec math runs in both configurations.

use obs::{
    bucket_index, bucket_upper_bound, HistogramSnapshot, MetricsSnapshot, SnapshotDecodeError,
    HISTOGRAM_BUCKETS,
};

#[cfg(not(feature = "obs-off"))]
use obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSource, StageTimer};

/// Exactly one test mutates the process-wide enabled flag
/// ([`disabling_mutes_every_primitive`]); it holds this lock for its
/// whole body and restores the flag before releasing, and every test
/// that depends on the default-enabled state takes the same lock.
#[cfg(not(feature = "obs-off"))]
static ENABLED_FLAG: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(not(feature = "obs-off"))]
fn with_default_enabled<R>(f: impl FnOnce() -> R) -> R {
    let _guard = ENABLED_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    f()
}

/// A snapshot built without recording — usable under `obs-off` too.
fn sample_snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    snap.push_counter("kojak_a_total", 123);
    snap.push_counter("kojak_b_total", u64::MAX / 2);
    snap.push_gauge("kojak_depth", 77);
    let mut h = HistogramSnapshot::default();
    for v in [0u64, 1, 900, 65_000, 1 << 50] {
        h.count += 1;
        h.sum += v;
        h.max = h.max.max(v);
        h.buckets[bucket_index(v)] += 1;
    }
    snap.push_histogram("kojak_stage_ns", h);
    snap
}

#[test]
fn bucket_boundaries_are_powers_of_two() {
    // 0 is its own bucket; [2^(i-1), 2^i - 1] lands in bucket i.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(1023), 10);
    assert_eq!(bucket_index(1024), 11);
    for i in 1..HISTOGRAM_BUCKETS - 1 {
        let hi = bucket_upper_bound(i);
        assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        assert_eq!(bucket_index(hi + 1), i + 1, "first value past bucket {i}");
    }
}

#[test]
fn overflow_bucket_catches_the_top_of_the_range() {
    assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    assert_eq!(bucket_index(1u64 << 63), HISTOGRAM_BUCKETS - 1);
    assert_eq!(bucket_index((1u64 << 63) - 1), HISTOGRAM_BUCKETS - 2);
    assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    assert_eq!(bucket_upper_bound(0), 0);

    let mut h = HistogramSnapshot {
        count: 1,
        sum: u64::MAX,
        max: u64::MAX,
        ..HistogramSnapshot::default()
    };
    h.buckets[HISTOGRAM_BUCKETS - 1] = 1;
    assert_eq!(h.p99(), u64::MAX);
}

#[test]
fn quantiles_report_bucket_upper_bounds() {
    let mut h = HistogramSnapshot::default();
    for v in 1..=100u64 {
        h.count += 1;
        h.sum += v;
        h.max = h.max.max(v);
        h.buckets[bucket_index(v)] += 1;
    }
    assert_eq!(h.count, 100);
    assert_eq!(h.sum, 5050);
    assert_eq!(h.max, 100);
    // The true p50 is 50 (bucket [32,63]); the reported bound is 63.
    assert_eq!(h.p50(), 63);
    // p90 = 90 and p99 = 99 both land in bucket [64,127], whose bound
    // (127) exceeds the observed max, so the max caps the estimate.
    assert_eq!(h.p90(), 100);
    assert_eq!(h.p99(), 100);
    assert_eq!(h.mean(), 50);
    assert_eq!(HistogramSnapshot::default().quantile(0.99), 0);
    assert_eq!(HistogramSnapshot::default().mean(), 0);
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn merge_is_associative_and_commutative() {
    with_default_enabled(|| {
        // Three "shards" with different sample populations.
        let shards: [Vec<u64>; 3] = [
            (1u64..=40).collect(),
            (500u64..=520).collect(),
            vec![0, 0, 7, 1 << 40],
        ];
        let snaps: Vec<HistogramSnapshot> = shards
            .iter()
            .map(|samples| {
                let h = Histogram::new();
                for &v in samples {
                    h.record(v);
                }
                h.snapshot()
            })
            .collect();

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == c ⊕ (b ⊕ a)
        let mut left = snaps[0].clone();
        left.merge(&snaps[1]);
        left.merge(&snaps[2]);
        let mut right = snaps[1].clone();
        right.merge(&snaps[2]);
        let mut right_outer = snaps[0].clone();
        right_outer.merge(&right);
        let mut reversed = snaps[2].clone();
        reversed.merge(&snaps[1]);
        reversed.merge(&snaps[0]);
        assert_eq!(left, right_outer);
        assert_eq!(left, reversed);

        // And the merge equals recording everything into one histogram.
        let whole = Histogram::new();
        for samples in &shards {
            for &v in samples {
                whole.record(v);
            }
        }
        assert_eq!(left, whole.snapshot());
    });
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn counters_and_gauges_record() {
    with_default_enabled(|| {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    });
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn registry_hands_out_shared_handles() {
    with_default_enabled(|| {
        let registry = MetricsRegistry::new();
        let a = registry.counter("kojak_test_events_total");
        let b = registry.counter("kojak_test_events_total");
        a.add(2);
        b.inc();
        assert_eq!(registry.counter("kojak_test_events_total").get(), 3);
        registry.gauge("kojak_test_depth").set(9);
        registry.histogram("kojak_test_stage_ns").record(1000);

        let snap = registry.metrics();
        assert_eq!(snap.counter("kojak_test_events_total"), 3);
        assert_eq!(snap.gauge("kojak_test_depth"), Some(9));
        assert_eq!(snap.histogram("kojak_test_stage_ns").unwrap().count, 1);
        assert_eq!(snap.counter("kojak_absent_total"), 0);
        assert_eq!(snap.gauge("kojak_absent"), None);
        assert!(!snap.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    });
}

#[test]
fn snapshot_merge_sums_counters_and_maxes_gauges() {
    let mut a = MetricsSnapshot::default();
    a.push_counter("events_total", 10);
    a.push_gauge("depth", 4);
    let mut b = MetricsSnapshot::default();
    b.push_counter("events_total", 5);
    b.push_counter("other_total", 1);
    b.push_gauge("depth", 2);
    a.merge(&b);
    assert_eq!(a.counter("events_total"), 15);
    assert_eq!(a.counter("other_total"), 1);
    assert_eq!(a.gauge("depth"), Some(4));
}

#[test]
fn codec_roundtrips_and_rejects_hostile_bytes() {
    let snap = sample_snapshot();
    let bytes = snap.encode();
    let decoded = MetricsSnapshot::decode(&bytes).expect("roundtrip");
    assert_eq!(decoded, snap);
    // Determinism: same state, same bytes.
    assert_eq!(decoded.encode(), bytes);

    assert_eq!(
        MetricsSnapshot::decode(b"nope"),
        Err(SnapshotDecodeError::BadMagic)
    );
    let mut wrong_version = bytes.clone();
    wrong_version[4] = 9;
    assert_eq!(
        MetricsSnapshot::decode(&wrong_version),
        Err(SnapshotDecodeError::UnsupportedVersion(9))
    );
    // Every truncation point fails cleanly, never panics.
    for len in 0..bytes.len() {
        MetricsSnapshot::decode(&bytes[..len]).expect_err("truncated");
    }
    let mut trailing = bytes.clone();
    trailing.push(0);
    assert_eq!(
        MetricsSnapshot::decode(&trailing),
        Err(SnapshotDecodeError::TrailingBytes { remaining: 1 })
    );
    // A hostile element count can't drive a huge loop: 0xFFFFFFFF
    // counters in a 9-byte tail is implausible on its face.
    let mut hostile = b"KOBS\x01".to_vec();
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    hostile.extend_from_slice(&[0; 9]);
    assert_eq!(
        MetricsSnapshot::decode(&hostile),
        Err(SnapshotDecodeError::ImplausibleCount {
            what: "counter count"
        })
    );
}

#[test]
fn render_text_is_deterministic_prometheus_style() {
    let mut snap = sample_snapshot();
    snap.push_counter(
        "kojak_eval_property_evaluations_total{property=\"speedup\"}",
        2,
    );
    let text = snap.render_text();

    assert!(text.contains("# TYPE kojak_a_total counter\nkojak_a_total 123\n"));
    // The TYPE line strips the label; the sample line keeps it.
    assert!(text.contains("# TYPE kojak_eval_property_evaluations_total counter\n"));
    assert!(text.contains("kojak_eval_property_evaluations_total{property=\"speedup\"} 2\n"));
    assert!(text.contains("# TYPE kojak_depth gauge\nkojak_depth 77\n"));
    assert!(text.contains("# TYPE kojak_stage_ns summary\n"));
    assert!(text.contains("kojak_stage_ns{quantile=\"0.5\"} "));
    assert!(text.contains(&format!("kojak_stage_ns_max {}\n", 1u64 << 50)));
    assert!(text.contains("kojak_stage_ns_count 5\n"));
    assert_eq!(text, sample_snapshot_with_label().render_text());
}

fn sample_snapshot_with_label() -> MetricsSnapshot {
    let mut snap = sample_snapshot();
    snap.push_counter(
        "kojak_eval_property_evaluations_total{property=\"speedup\"}",
        2,
    );
    snap
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn stage_timer_records_on_drop_and_maybe_disarms() {
    with_default_enabled(|| {
        let h = Histogram::new();
        {
            let _timer = h.start_timer();
            std::hint::black_box(0);
        }
        assert_eq!(h.count(), 1);
        {
            let _timer = StageTimer::maybe(None);
        }
        {
            let _timer = StageTimer::disarmed();
        }
        assert_eq!(h.count(), 1);
        {
            let _timer = StageTimer::maybe(Some(&h));
        }
        assert_eq!(h.count(), 2);
    });
}

/// The runtime kill switch mutes every primitive. This is the only test
/// allowed to toggle the flag, and it holds the lock for its whole body
/// so concurrently-running recording tests never observe the off state.
#[cfg(not(feature = "obs-off"))]
#[test]
fn disabling_mutes_every_primitive() {
    let _guard = ENABLED_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    let restore = restore_enabled_on_drop();
    obs::set_enabled(false);
    assert!(!obs::enabled());

    let c = Counter::new();
    c.inc();
    c.add(10);
    let g = Gauge::new();
    g.set(5);
    let h = Histogram::new();
    h.record(100);
    {
        let _timer = h.start_timer();
    }
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0);
    assert_eq!(h.count(), 0);
    assert_eq!(h.snapshot(), HistogramSnapshot::default());
    drop(restore);

    // Back on, recording resumes on the same handles.
    assert!(obs::enabled());
    c.inc();
    h.record(7);
    assert_eq!(c.get(), 1);
    assert_eq!(h.count(), 1);
}

/// Restores the enabled flag even if the test body panics, so one
/// failure doesn't cascade into every other test in the binary.
#[cfg(not(feature = "obs-off"))]
fn restore_enabled_on_drop() -> impl Drop {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            obs::set_enabled(true);
        }
    }
    Restore
}

/// Under `obs-off` the layer is compiled out: `enabled()` is const
/// false, `set_enabled` is a no-op, every primitive stays at zero.
#[cfg(feature = "obs-off")]
#[test]
fn obs_off_compiles_the_layer_out() {
    obs::set_enabled(true);
    assert!(!obs::enabled());
    let c = obs::Counter::new();
    c.inc();
    c.add(10);
    let g = obs::Gauge::new();
    g.set(5);
    let h = obs::Histogram::new();
    h.record(100);
    {
        let _timer = h.start_timer();
    }
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0);
    assert_eq!(h.count(), 0);
}

/// Generous smoke bound: recording must stay cheap in every
/// configuration. We don't assert nanoseconds (CI machines vary
/// wildly); we assert a million counter bumps complete promptly and
/// that the count matches the configuration.
#[test]
fn overhead_smoke() {
    let run = || {
        let c = obs::Counter::new();
        let start = std::time::Instant::now();
        for _ in 0..1_000_000 {
            c.inc();
        }
        let elapsed = start.elapsed();
        let expected = if cfg!(feature = "obs-off") {
            0
        } else {
            1_000_000
        };
        assert_eq!(c.get(), expected);
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "1M counter bumps took {elapsed:?} — instrumentation is not cheap"
        );
    };
    #[cfg(not(feature = "obs-off"))]
    with_default_enabled(run);
    #[cfg(feature = "obs-off")]
    run();
}
