//! The named-metric registry. Lookup is get-or-create behind a mutex —
//! the cold path, done once when a component wires itself up; the
//! returned `Arc` handles are then pure relaxed atomics on the hot path.

use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::{MetricsSnapshot, MetricsSource};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A set of named counters, gauges and histograms. Each engine layer
/// that needs dynamic (per-session, per-shard) metrics owns or shares
/// one; `ShardedSession` merges its shards' registries into one
/// [`MetricsSnapshot`] at read time.
///
/// Names follow `kojak_<layer>_<stage>_<unit>`; the three kinds share
/// one namespace by convention but live in separate maps, so a name
/// means one kind only — registering `foo` as both a counter and a
/// gauge is a caller bug that shows up as two exposition lines.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Poisoning is impossible to act on here (a panicked recorder leaves
/// the maps structurally intact), so treat a poisoned lock as live.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter named `name`. Hold the returned handle;
    /// re-looking it up per event would put this lock on the hot path.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        Arc::clone(map.entry(name.to_owned()).or_default())
    }
}

impl MetricsSource for MetricsRegistry {
    fn collect_into(&self, out: &mut MetricsSnapshot) {
        for (name, c) in lock(&self.counters).iter() {
            out.push_counter(name, c.get());
        }
        for (name, g) in lock(&self.gauges).iter() {
            out.push_gauge(name, g.get());
        }
        for (name, h) in lock(&self.histograms).iter() {
            out.push_histogram(name, h.snapshot());
        }
    }
}
