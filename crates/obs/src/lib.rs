//! # `kojak-obs` — self-instrumentation for the engine stack
//!
//! The paper's premise is that performance tools should be driven by
//! machine-readable specifications of observable behavior; this crate
//! turns that lens on the reproduction itself. Every layer of the engine
//! stack — net decode, server dedup/ack, pipeline channel wait,
//! `StoreBuilder` apply, WAL append/fsync, snapshot write, compiled-eval
//! flush — records into the primitives defined here, and the merged
//! result is one diffable artifact (`render_text`) or one wire message
//! (the `Introspect` RPC of `kojak-net`).
//!
//! ## Primitives
//!
//! * [`Counter`] — monotonic, relaxed-atomic, `const`-constructible (so
//!   crates can keep module-level counters with zero setup).
//! * [`Gauge`] — a last-written value (queue depths, shard counts).
//! * [`Histogram`] — log₂-bucketed latency distribution with
//!   [`HistogramSnapshot::p50`]/[`p90`](HistogramSnapshot::p90)/
//!   [`p99`](HistogramSnapshot::p99)/max; bucket merge is associative,
//!   so per-shard histograms fan in exactly.
//! * [`StageTimer`] — a scoped guard that records its elapsed nanoseconds
//!   into a histogram on drop.
//! * [`MetricsRegistry`] — named metrics behind `Arc` handles. Handle
//!   lookup takes a lock (cold path, done once at construction); the hot
//!   path through a handle is lock-free relaxed atomics.
//! * [`MetricsSnapshot`] — the one composable snapshot type every layer's
//!   stats unify into (via [`MetricsSource`]), with a self-contained
//!   binary codec and a Prometheus-style text exposition.
//!
//! ## The two off switches
//!
//! Instrumentation is cheap and on by default. [`set_enabled`] is the
//! runtime switch: timers stop reading the clock and every primitive
//! stops recording (one relaxed load decides). The `obs-off` **feature**
//! is the compile-time switch: [`enabled`] becomes a `const false`, so
//! every instrumentation site folds away entirely — that build is the
//! baseline the E13 overhead gate measures against.
//!
//! Metric names follow `kojak_<layer>_<stage>_<unit>`: histograms end in
//! `_ns`, monotonic counters in `_total`, gauges in a bare unit noun.
//! Labels ride inside the name (`…_total{property="X"}`).
//!
//! This crate is dependency-free (std only) by design: every other crate
//! of the workspace can instrument itself without a dependency cycle.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod metric;
mod registry;
mod snapshot;

pub use metric::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, StageTimer,
    HISTOGRAM_BUCKETS,
};
pub use registry::MetricsRegistry;
pub use snapshot::{MetricsSnapshot, MetricsSource, SnapshotDecodeError};

#[cfg(not(feature = "obs-off"))]
static ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Is instrumentation live? One relaxed load on the hot path (and a
/// `const false` under the `obs-off` feature, which dead-codes every
/// recording site away).
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "obs-off")]
    {
        false
    }
    #[cfg(not(feature = "obs-off"))]
    {
        ENABLED.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Runtime kill switch: `set_enabled(false)` mutes every counter, gauge,
/// histogram and timer process-wide (values freeze; handles stay valid).
/// A no-op under the `obs-off` feature, where instrumentation does not
/// exist to begin with.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "obs-off")]
    let _ = on;
    #[cfg(not(feature = "obs-off"))]
    ENABLED.store(on, std::sync::atomic::Ordering::Relaxed);
}
