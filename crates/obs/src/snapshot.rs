//! The composable snapshot type: what every layer's stats collect into,
//! what the `Introspect` RPC ships, and what `render_text` turns into a
//! diffable Prometheus-style artifact.

use crate::metric::{HistogramSnapshot, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt;

/// Anything that can contribute metrics to a [`MetricsSnapshot`]: the
/// registry itself, and every layer's stats struct (`SessionStats`,
/// `PipelineStats`, `NetStats`, `ServerStats`, …). This is the
/// deduplication seam — the hand-rolled stats structs stay as plain
/// data, but all expose themselves through one vocabulary.
pub trait MetricsSource {
    /// Add this source's metrics to `out` (summing into any counters
    /// already present under the same name — see
    /// [`MetricsSnapshot::push_counter`]).
    fn collect_into(&self, out: &mut MetricsSnapshot);

    /// This source's metrics as a fresh snapshot.
    fn metrics(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        self.collect_into(&mut out);
        out
    }
}

/// A point-in-time, plain-data view of a metric set. Ordered maps make
/// the text exposition and the wire encoding deterministic, so two
/// snapshots of the same state are byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Add to the counter named `name` (created at 0 if absent). Summing
    /// — rather than overwriting — is what makes shard fan-in work: four
    /// shards each pushing `kojak_wal_fsyncs_total` yield their total.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += value;
    }

    /// Set the gauge named `name`. Gauges are last-write-wins; merging
    /// snapshots keeps the larger value (the only order-independent
    /// choice for quantities like window headroom).
    pub fn push_gauge(&mut self, name: &str, value: u64) {
        let slot = self.gauges.entry(name.to_owned()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Merge into the histogram named `name` (created empty if absent).
    pub fn push_histogram(&mut self, name: &str, value: HistogramSnapshot) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .merge(&value);
    }

    /// Fold another snapshot in: counters and histogram buckets add,
    /// gauges keep the larger value. Associative and commutative, so a
    /// sharded engine can merge per-shard snapshots in any order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            self.push_counter(name, *v);
        }
        for (name, v) in &other.gauges {
            self.push_gauge(name, *v);
        }
        for (name, h) in &other.histograms {
            self.push_histogram(name, h.clone());
        }
    }

    /// The counter named `name`, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded into this snapshot.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Prometheus-style text exposition: counters and gauges as one line
    /// each, histograms as summaries (`{quantile="0.5"}`… plus `_max`,
    /// `_sum`, `_count`). Deterministic (name-ordered), so two snapshots
    /// diff line-by-line.
    pub fn render_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {} counter", base_name(name));
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {} gauge", base_name(name));
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {} summary", base_name(name));
            for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
                let _ = writeln!(out, "{}{{quantile=\"{q}\"}} {v}", base_name(name));
            }
            let _ = writeln!(out, "{}_max {}", base_name(name), h.max);
            let _ = writeln!(out, "{}_sum {}", base_name(name), h.sum);
            let _ = writeln!(out, "{}_count {}", base_name(name), h.count);
        }
        out
    }

    /// Serialize to the self-contained `KOBS` binary format (what the
    /// `Introspect` RPC returns). Little-endian throughout; histograms
    /// ship only their non-zero buckets.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.push(SNAPSHOT_VERSION);
        put_u32(&mut out, self.counters.len() as u32);
        for (name, v) in &self.counters {
            put_str(&mut out, name);
            put_u64(&mut out, *v);
        }
        put_u32(&mut out, self.gauges.len() as u32);
        for (name, v) in &self.gauges {
            put_str(&mut out, name);
            put_u64(&mut out, *v);
        }
        put_u32(&mut out, self.histograms.len() as u32);
        for (name, h) in &self.histograms {
            put_str(&mut out, name);
            put_u64(&mut out, h.count);
            put_u64(&mut out, h.sum);
            put_u64(&mut out, h.max);
            let nonzero: Vec<(usize, u64)> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n != 0)
                .map(|(i, &n)| (i, n))
                .collect();
            put_u32(&mut out, nonzero.len() as u32);
            for (i, n) in nonzero {
                out.push(i as u8);
                put_u64(&mut out, n);
            }
        }
        out
    }

    /// Decode a [`MetricsSnapshot::encode`] payload. Rejects trailing
    /// bytes: a snapshot is a complete message, not a stream prefix.
    pub fn decode(bytes: &[u8]) -> Result<MetricsSnapshot, SnapshotDecodeError> {
        let mut r = Reader::new(bytes);
        if r.take(SNAPSHOT_MAGIC.len(), "magic")? != SNAPSHOT_MAGIC {
            return Err(SnapshotDecodeError::BadMagic);
        }
        let version = r.u8("version")?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotDecodeError::UnsupportedVersion(version));
        }
        let mut snapshot = MetricsSnapshot::default();
        for _ in 0..r.count("counter count")? {
            let name = r.string("counter name")?;
            let v = r.u64("counter value")?;
            snapshot.push_counter(&name, v);
        }
        for _ in 0..r.count("gauge count")? {
            let name = r.string("gauge name")?;
            let v = r.u64("gauge value")?;
            snapshot.push_gauge(&name, v);
        }
        for _ in 0..r.count("histogram count")? {
            let name = r.string("histogram name")?;
            let mut h = HistogramSnapshot {
                count: r.u64("histogram count")?,
                sum: r.u64("histogram sum")?,
                max: r.u64("histogram max")?,
                ..HistogramSnapshot::default()
            };
            for _ in 0..r.count("bucket count")? {
                let idx = r.u8("bucket index")? as usize;
                if idx >= HISTOGRAM_BUCKETS {
                    return Err(SnapshotDecodeError::BadBucketIndex(idx as u8));
                }
                h.buckets[idx] = r.u64("bucket value")?;
            }
            snapshot.push_histogram(&name, h);
        }
        if r.remaining() != 0 {
            return Err(SnapshotDecodeError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(snapshot)
    }
}

/// The metric name with any `{label="…"}` suffix stripped — what the
/// `# TYPE` exposition line must carry.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

const SNAPSHOT_MAGIC: &[u8; 4] = b"KOBS";
const SNAPSHOT_VERSION: u8 = 1;

/// Why a [`MetricsSnapshot::decode`] rejected its input. Every payload
/// is static — hostile bytes never allocate an error message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotDecodeError {
    /// The payload does not start with the `KOBS` magic.
    BadMagic,
    /// The payload's format version is newer than this decoder.
    UnsupportedVersion(u8),
    /// The payload ended mid-field.
    UnexpectedEof {
        /// Which field was being read.
        what: &'static str,
    },
    /// An element count larger than the payload could possibly hold.
    ImplausibleCount {
        /// Which count field was implausible.
        what: &'static str,
    },
    /// A metric name was not valid UTF-8.
    BadUtf8,
    /// A histogram bucket index out of range.
    BadBucketIndex(u8),
    /// Bytes left over after a complete snapshot.
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
}

impl fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotDecodeError::BadMagic => write!(f, "not a KOBS metrics snapshot"),
            SnapshotDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotDecodeError::UnexpectedEof { what } => {
                write!(f, "snapshot truncated while reading {what}")
            }
            SnapshotDecodeError::ImplausibleCount { what } => {
                write!(f, "snapshot {what} larger than the payload could hold")
            }
            SnapshotDecodeError::BadUtf8 => write!(f, "snapshot metric name is not valid UTF-8"),
            SnapshotDecodeError::BadBucketIndex(i) => {
                write!(f, "snapshot histogram bucket index {i} out of range")
            }
            SnapshotDecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after snapshot")
            }
        }
    }
}

impl std::error::Error for SnapshotDecodeError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotDecodeError> {
        if self.remaining() < n {
            return Err(SnapshotDecodeError::UnexpectedEof { what });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotDecodeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotDecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotDecodeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// An element count, sanity-checked against the bytes actually left:
    /// every counted element takes at least one byte, so a hostile count
    /// can never drive a huge loop or allocation.
    fn count(&mut self, what: &'static str) -> Result<u32, SnapshotDecodeError> {
        let n = self.u32(what)?;
        if n as usize > self.remaining() {
            return Err(SnapshotDecodeError::ImplausibleCount { what });
        }
        Ok(n)
    }

    fn string(&mut self, what: &'static str) -> Result<String, SnapshotDecodeError> {
        let len = self.u32(what)? as usize;
        if len > self.remaining() {
            return Err(SnapshotDecodeError::UnexpectedEof { what });
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotDecodeError::BadUtf8)
    }
}
