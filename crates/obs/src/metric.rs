//! The atomic primitives: counters, gauges, log-bucketed histograms and
//! the scoped stage timer. Everything here is relaxed atomics — safe to
//! share across shard threads, never a lock on the recording path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of histogram buckets: one per power of two of a `u64` value
/// (bucket 0 holds exactly 0; bucket `i` holds `[2^(i-1), 2^i - 1]`),
/// plus a final overflow bucket for values ≥ 2^63.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Map a value to its histogram bucket: 0 → 0, values in
/// `[2^(i-1), 2^i - 1]` → `i`, values ≥ 2^63 → 64 (the overflow bucket).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The largest value a bucket can hold — what [`HistogramSnapshot::quantile`]
/// reports for a quantile landing in that bucket (a conservative upper
/// bound, never an underestimate). The overflow bucket reports `u64::MAX`.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A monotonic counter. `const`-constructible so crates can declare
/// module-level counters (`static HITS: Counter = Counter::new();`) with
/// no registration ceremony; registry-owned counters are the same type
/// behind an `Arc`.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one (a no-op while instrumentation is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (a no-op while instrumentation is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A last-written value (queue depth, window headroom, shard count).
/// Unlike [`Counter`] it can move down as well as up.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value (a no-op while instrumentation is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// A log₂-bucketed distribution of `u64` samples (nanoseconds, by this
/// workspace's convention — names end in `_ns`). Recording is a handful
/// of relaxed atomic ops; quantiles come from [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Record one sample (a no-op while instrumentation is disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Start a scoped timer that records its elapsed nanoseconds into this
    /// histogram when dropped. Returns an inert guard (no clock read)
    /// while instrumentation is disabled.
    #[inline]
    pub fn start_timer(&self) -> StageTimer<'_> {
        StageTimer::maybe(Some(self))
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile math, merging and serialization.
    /// Concurrent recording makes the copy approximate (count/sum/buckets
    /// are read independently), which is fine for telemetry; quiesce
    /// writers first when exact reconciliation matters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A plain-data copy of a [`Histogram`]: what snapshots carry, merge and
/// serialize. Merging is associative and commutative, so per-shard
/// histograms fan into one whole-engine distribution in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Largest single sample.
    pub max: u64,
    /// Per-bucket sample counts; see [`bucket_index`] for the layout.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot in (shard fan-in). `max` takes the larger,
    /// everything else adds — associative, so merge order never matters.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 ..= 1.0`), i.e. a value ≥ the true quantile but within 2× of
    /// it. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Never report a bound above the observed maximum: the
                // top occupied bucket's range can overshoot it wildly.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample value (0 for an empty histogram).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A scoped stage timer: holds a start [`Instant`] and records the
/// elapsed nanoseconds into its [`Histogram`] on drop. Construct via
/// [`Histogram::start_timer`] (or [`StageTimer::maybe`] when the
/// histogram handle itself is optional). While instrumentation is
/// disabled the guard is inert — no clock read on either end.
#[must_use = "a StageTimer records on drop; binding it to _ discards the measurement immediately"]
#[derive(Debug)]
pub struct StageTimer<'a>(Option<(&'a Histogram, Instant)>);

impl<'a> StageTimer<'a> {
    /// A timer over an optional histogram handle: inert when the handle
    /// is `None` or instrumentation is disabled.
    #[inline]
    pub fn maybe(histogram: Option<&'a Histogram>) -> Self {
        match histogram {
            Some(h) if crate::enabled() => StageTimer(Some((h, Instant::now()))),
            _ => StageTimer(None),
        }
    }

    /// An always-inert timer (what disabled paths get).
    #[inline]
    pub fn disarmed() -> Self {
        StageTimer(None)
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        if let Some((histogram, start)) = self.0.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            histogram.record(ns);
        }
    }
}
