//! Network-layer robustness: slow-client reaping, producer quarantine,
//! deterministic reconnect jitter, and bounded retry budgets. Every
//! defense must fail *typed* and keep the exactly-once ingest contract
//! — a reaped or reconnected producer loses and duplicates nothing.

use engine::EngineBuilder;
use net::{EngineServer, NetError, ProducerConfig, ServerConfig, TraceProducer};
use online::replay::replay_store;
use online::TraceEvent;
use perfdata::Store;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sim_events(seed: u64) -> Vec<TraceEvent> {
    let gen = apprentice_sim::ProgramGenerator {
        seed,
        functions: 2,
        max_depth: 3,
        max_fanout: 3,
        base_work: 0.01,
        comm_probability: 0.6,
    };
    let mut store = Store::new();
    apprentice_sim::simulate_program(
        &mut store,
        &gen.generate(),
        &apprentice_sim::MachineModel::t3e_900(),
        &[1, 4],
    );
    replay_store(&store)
}

fn server_with(config: ServerConfig) -> EngineServer {
    let engine = Arc::new(EngineBuilder::new().shards(2).build().expect("engine"));
    EngineServer::bind("127.0.0.1:0", engine, config).expect("bind")
}

/// Poll until `probe` returns true or the deadline passes.
fn wait_for(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The reconnect backoff is decorrelated jitter: deterministic per
/// producer (failure schedules reproduce from the id alone), divergent
/// across producers (no thundering herd), and always within
/// `[base, cap]`.
#[test]
fn reconnect_backoff_is_deterministic_and_bounded() {
    let base = Duration::from_millis(10);
    let cap = Duration::from_millis(400);

    let schedule = |producer_id: u64| -> Vec<Duration> {
        let mut waits = Vec::new();
        let mut previous = base;
        for draw in 1..=12u64 {
            previous = net::decorrelated_backoff(producer_id, draw, previous, base, cap);
            waits.push(previous);
        }
        waits
    };

    // Deterministic: the schedule is a pure function of the identity.
    assert_eq!(schedule(1), schedule(1));
    // Decorrelated: two producers hitting the same dead server do not
    // sleep in lockstep.
    assert_ne!(schedule(1), schedule(2));
    // Bounded: every wait respects the floor and the configured cap.
    for wait in schedule(1).iter().chain(schedule(2).iter()) {
        assert!(*wait >= base, "never below the base: {wait:?}");
        assert!(*wait <= cap, "never above the cap: {wait:?}");
    }
    // A zero cap means the documented 1 s default, not an infinite wait.
    let uncapped = net::decorrelated_backoff(3, 1, Duration::from_secs(30), base, Duration::ZERO);
    assert!(uncapped <= Duration::from_secs(1));
}

/// A connection that never completes its handshake is reaped after the
/// deadline — one silent peer cannot pin a handler thread forever
/// (slowloris guard).
#[test]
fn silent_handshake_is_reaped_after_the_deadline() {
    let server = server_with(ServerConfig {
        handshake_timeout: Duration::from_millis(80),
        ..ServerConfig::default()
    });
    // Connect and say nothing.
    let silent = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    wait_for("handshake reap", || {
        server.stats().connections_reaped_idle >= 1
    });
    drop(silent);

    // The deadline punishes only silence: a prompt handshake still works.
    let mut producer = TraceProducer::connect(
        server.local_addr().to_string(),
        ProducerConfig {
            producer_id: 1,
            ..ProducerConfig::default()
        },
    )
    .expect("prompt handshake connects");
    producer.send(&sim_events(21)[0]).expect("send");
    producer.close().expect("close");
    server.shutdown();
}

/// An idle post-handshake connection is reaped; the producer's next
/// traffic reconnects-with-resume and the stream still lands exactly
/// once.
#[test]
fn idle_connection_reap_keeps_exactly_once_ingest() {
    let events = sim_events(22);
    let server = server_with(ServerConfig {
        idle_timeout: Duration::from_millis(80),
        ..ServerConfig::default()
    });
    let mut producer = TraceProducer::connect(
        server.local_addr().to_string(),
        ProducerConfig {
            producer_id: 4,
            batch_events: 16,
            ..ProducerConfig::default()
        },
    )
    .expect("connect");

    let cut = events.len() / 2;
    for event in &events[..cut] {
        producer.send(event).expect("send");
    }
    producer.flush().expect("flush");

    // Go quiet past the idle deadline: the server reaps the connection
    // (frames already received were flushed to the engine first).
    wait_for("idle reap", || server.stats().connections_reaped_idle >= 1);

    // The producer notices only on its next traffic, reconnects, and
    // resumes from the server's ack watermark.
    for event in &events[cut..] {
        producer.send(event).expect("send after reap");
    }
    let stats = producer.close().expect("close");
    assert!(stats.reconnects >= 1, "the reap forced a reconnect");

    server.engine().flush().expect("final flush");
    assert_eq!(
        server.engine().stats().events_applied,
        events.len() as u64,
        "no loss across the reap"
    );
    assert_eq!(server.engine().stats().events_rejected, 0, "no duplication");
    server.shutdown();
}

/// A producer that keeps sending undecodable frames is quarantined: its
/// handshakes are refused with the typed status until the operator
/// clears it. Other producers are untouched.
#[test]
fn repeated_protocol_errors_quarantine_the_producer() {
    use std::io::{Read, Write};
    let server = server_with(ServerConfig {
        max_producer_protocol_errors: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let garbage_round = |expected_errors: u64| {
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        raw.write_all(&net::proto::encode_hello(&net::proto::Hello {
            producer_id: 66,
            spec_hash: net::standard_spec_hash(),
            features: 0,
        }))
        .expect("hello");
        let mut ack = [0u8; net::proto::HELLO_ACK_LEN];
        raw.read_exact(&mut ack).expect("hello ack");
        assert_eq!(ack[5], net::proto::status::ACCEPTED);
        // One frame with a corrupt checksum: a typed protocol error,
        // counted against this producer, and the connection is dropped.
        raw.write_all(&[4, 0, 0, 0, 0xEF, 0xBE, 0xAD, 0xDE, 1, 2, 3, 4])
            .expect("garbage frame");
        wait_for("protocol error count", || {
            server.stats().protocol_errors >= expected_errors
        });
    };
    garbage_round(1);
    assert!(
        server.quarantined_producers().is_empty(),
        "one strike is not enough"
    );
    garbage_round(2);
    wait_for("quarantine", || server.stats().producers_quarantined >= 1);
    assert_eq!(server.quarantined_producers(), vec![66]);

    // The quarantined identity is refused at handshake, typed.
    match TraceProducer::connect(
        addr.to_string(),
        ProducerConfig {
            producer_id: 66,
            ..ProducerConfig::default()
        },
    ) {
        Err(NetError::Quarantined) => {}
        other => panic!("expected Quarantined, got {:?}", other.map(|_| ()).err()),
    }

    // An innocent producer on the same server is unaffected.
    let mut innocent = TraceProducer::connect(
        addr.to_string(),
        ProducerConfig {
            producer_id: 67,
            ..ProducerConfig::default()
        },
    )
    .expect("innocent producer connects");
    innocent.send(&sim_events(23)[0]).expect("send");
    innocent.close().expect("close");

    // The operator clears the quarantine; the identity works again.
    assert!(server.clear_quarantine(66));
    assert!(!server.clear_quarantine(66), "second clear is a no-op");
    assert!(server.quarantined_producers().is_empty());
    let mut cleared = TraceProducer::connect(
        addr.to_string(),
        ProducerConfig {
            producer_id: 66,
            ..ProducerConfig::default()
        },
    )
    .expect("cleared producer connects");
    cleared.send(&sim_events(23)[1]).expect("send");
    cleared.close().expect("close");
    server.shutdown();
}

/// When the server is gone for good, the reconnect loop fails *typed*
/// after its attempt budget — carrying the attempt count, the elapsed
/// wall clock, and the final underlying failure.
#[test]
fn reconnect_attempt_budget_fails_typed() {
    let server = server_with(ServerConfig::default());
    let addr = server.local_addr().to_string();
    let mut producer = TraceProducer::connect(
        &addr,
        ProducerConfig {
            producer_id: 8,
            batch_events: 1,
            reconnect_attempts: 3,
            reconnect_backoff: Duration::from_millis(1),
            reconnect_backoff_cap: Duration::from_millis(4),
            ..ProducerConfig::default()
        },
    )
    .expect("connect");
    let events = sim_events(24);
    producer.send(&events[0]).expect("send");
    server.shutdown();

    // Pump sends until the dead socket surfaces: the reconnect loop must
    // exhaust exactly its budget and report what it spent.
    let mut result = Ok(());
    for event in &events[1..] {
        result = producer.send(event).and_then(|()| producer.flush());
        if result.is_err() {
            break;
        }
    }
    match result {
        Err(NetError::ReconnectFailed {
            attempts,
            elapsed,
            last,
        }) => {
            assert_eq!(attempts, 3, "the whole budget was spent");
            assert!(elapsed >= Duration::from_millis(3), "three backoff sleeps");
            assert!(
                matches!(*last, NetError::Io(_)),
                "the final failure is carried: {last}"
            );
        }
        other => panic!("expected ReconnectFailed, got {:?}", other.err()),
    }
}

/// The elapsed-time budget cuts reconnecting short even when plenty of
/// attempts remain — a producer configured to give up in milliseconds
/// cannot be stuck sleeping for minutes.
#[test]
fn reconnect_elapsed_budget_cuts_the_attempt_budget_short() {
    let server = server_with(ServerConfig::default());
    let addr = server.local_addr().to_string();
    let mut producer = TraceProducer::connect(
        &addr,
        ProducerConfig {
            producer_id: 9,
            batch_events: 1,
            reconnect_attempts: 10_000,
            reconnect_backoff: Duration::from_millis(20),
            reconnect_backoff_cap: Duration::from_millis(40),
            reconnect_max_elapsed: Duration::from_millis(50),
            ..ProducerConfig::default()
        },
    )
    .expect("connect");
    let events = sim_events(25);
    producer.send(&events[0]).expect("send");
    server.shutdown();

    let start = Instant::now();
    let mut result = Ok(());
    for event in &events[1..] {
        result = producer.send(event).and_then(|()| producer.flush());
        if result.is_err() {
            break;
        }
    }
    match result {
        Err(NetError::ReconnectFailed { attempts, .. }) => {
            assert!(attempts < 10_000, "the time budget cut the loop short");
        }
        other => panic!("expected ReconnectFailed, got {:?}", other.err()),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "gave up promptly: {:?}",
        start.elapsed()
    );
}
