//! Loopback equivalence: a producer process streaming events over TCP
//! into an [`EngineServer`] must leave the engine with reports
//! **bit-identical** to in-process ingestion of the same stream — through
//! handshake refusals, a mid-stream producer kill, and
//! reconnect-with-resume.

use apprentice_sim::{archetypes, simulate_program, MachineModel, ProgramGenerator};
use engine::{AnalysisEngine, EngineBuilder};
use net::{EngineServer, NetError, ProducerConfig, ServerConfig, TraceProducer};
use online::replay::replay_store;
use online::TraceEvent;
use perfdata::Store;
use std::sync::Arc;

fn sim_events(seed: u64) -> Vec<TraceEvent> {
    let gen = ProgramGenerator {
        seed,
        functions: 2,
        max_depth: 3,
        max_fanout: 3,
        base_work: 0.01,
        comm_probability: 0.6,
    };
    let mut store = Store::new();
    simulate_program(
        &mut store,
        &gen.generate(),
        &MachineModel::t3e_900(),
        &[1, 4, 16],
    );
    replay_store(&store)
}

/// In-process control: the same engine shape fed directly.
fn control_reports(
    events: &[TraceEvent],
) -> std::collections::HashMap<online::RunKey, cosy::AnalysisReport> {
    let control = EngineBuilder::new()
        .shards(3)
        .build()
        .expect("control engine");
    control.ingest_batch(events).expect("control ingest");
    control.flush().expect("control flush");
    control.reports()
}

fn sharded_server(window: u32) -> EngineServer {
    let engine = Arc::new(
        EngineBuilder::new()
            .shards(3)
            .build()
            .expect("sharded engine"),
    );
    EngineServer::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            window,
            flush_every_events: 512,
            ..ServerConfig::default()
        },
    )
    .expect("bind server")
}

/// The acceptance-criteria test: stream over TCP into a `ShardedSession`
/// server; the resulting reports are bit-identical to in-process
/// ingestion of the same stream.
#[test]
fn tcp_stream_into_sharded_server_matches_in_process() {
    let events = sim_events(11);
    let server = sharded_server(4096);
    let addr = server.local_addr().to_string();

    let mut producer = TraceProducer::connect(
        &addr,
        ProducerConfig {
            producer_id: 1,
            batch_events: 64,
            ..ProducerConfig::default()
        },
    )
    .expect("connect");
    for event in &events {
        producer.send(event).expect("send");
    }
    let stats = producer.close().expect("close");
    assert_eq!(stats.events_sent, events.len() as u64);
    assert_eq!(stats.events_acked, events.len() as u64);
    assert_eq!(stats.events_inflight, 0);

    server.engine().flush().expect("final flush");
    assert_eq!(
        server.engine().stats().events_applied,
        events.len() as u64,
        "every event applied exactly once"
    );
    assert_eq!(server.engine().reports(), control_reports(&events));

    let server_stats = server.stats();
    assert_eq!(server_stats.connections_accepted, 1);
    assert_eq!(server_stats.events_received, events.len() as u64);
    assert_eq!(server_stats.events_deduplicated, 0);
    assert_eq!(server_stats.goodbyes, 1);
    server.shutdown();
}

/// Mid-stream producer kill + restart: the restarted producer re-offers
/// the whole stream, resumes from the server's last-acked sequence
/// number, and the engine ends with no duplicate and no lost events.
#[test]
fn producer_kill_and_resume_loses_and_duplicates_nothing() {
    let events = sim_events(12);
    let server = sharded_server(4096);
    let addr = server.local_addr().to_string();
    let cut = events.len() / 2;

    // Phase 1: stream half with small batches, then die without goodbye
    // (drop without close) — in-flight batches may be unacked.
    let mut first = TraceProducer::connect(
        &addr,
        ProducerConfig {
            producer_id: 7,
            batch_events: 16,
            ..ProducerConfig::default()
        },
    )
    .expect("connect");
    for event in &events[..cut] {
        first.send(event).expect("send");
    }
    let acked_at_kill = first.stats().events_acked;
    drop(first); // the kill: no flush, no goodbye

    // Phase 2: a restarted producer re-offers the stream from the start.
    let mut second = TraceProducer::connect(
        &addr,
        ProducerConfig {
            producer_id: 7,
            batch_events: 16,
            ..ProducerConfig::default()
        },
    )
    .expect("reconnect");
    let resume = second.resume_from();
    assert!(
        resume >= acked_at_kill,
        "server remembered at least what the dead producer saw acked \
         ({resume} >= {acked_at_kill})"
    );
    assert!(
        resume <= cut as u64,
        "server never acked events that were not sent"
    );
    for event in &events {
        second.send(event).expect("resend");
    }
    let stats = second.close().expect("close");
    assert_eq!(stats.events_skipped_resume, resume);
    assert_eq!(stats.events_offered, events.len() as u64);

    server.engine().flush().expect("final flush");
    // No loss, no duplication: the engine applied the stream exactly once
    // (a duplicated RunStarted would be *rejected*, a duplicated timing
    // would silently skew events_applied).
    assert_eq!(server.engine().stats().events_applied, events.len() as u64);
    assert_eq!(server.engine().stats().events_rejected, 0);
    assert_eq!(server.engine().reports(), control_reports(&events));
    server.shutdown();
}

/// Id-free projection of a report map: producer keys, labels, ranks and
/// severity bit patterns — everything except the arena ids, which depend
/// on the order runs reached a shard's store. Used where producers race
/// (their interleaving is nondeterministic); the single-producer tests
/// above compare full reports bit-for-bit.
fn canonical(
    reports: &std::collections::HashMap<online::RunKey, cosy::AnalysisReport>,
) -> Vec<String> {
    let mut out: Vec<String> = reports
        .iter()
        .map(|(key, r)| {
            let entries: Vec<String> = r
                .entries
                .iter()
                .map(|e| {
                    format!(
                        "{}:{}@{}={:x}",
                        e.rank,
                        e.property,
                        e.context.label,
                        e.severity.to_bits()
                    )
                })
                .collect();
            format!(
                "{key} {} pe{} cost{:x} [{}]",
                r.program,
                r.no_pe,
                r.total_cost.to_bits(),
                entries.join(";")
            )
        })
        .collect();
    out.sort();
    out
}

/// Several concurrent producers, distinct run sets, one server: the
/// merged reports match in-process ingestion of the union stream.
#[test]
fn concurrent_producers_fan_in() {
    let mut store = Store::new();
    let machine = MachineModel::t3e_900();
    simulate_program(&mut store, &archetypes::particle_mc(5), &machine, &[1, 8]);
    simulate_program(&mut store, &archetypes::stencil3d(6), &machine, &[1, 8]);
    let events = replay_store(&store);
    // Partition by run so each producer owns complete runs.
    let mut parts: Vec<Vec<TraceEvent>> = vec![Vec::new(), Vec::new(), Vec::new()];
    for event in &events {
        parts[(event.run_key().0 % 3) as usize].push(event.clone());
    }

    let server = sharded_server(4096);
    let addr = server.local_addr().to_string();
    std::thread::scope(|scope| {
        for (i, part) in parts.iter().enumerate() {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut producer = TraceProducer::connect(
                    &addr,
                    ProducerConfig {
                        producer_id: 100 + i as u64,
                        batch_events: 32,
                        ..ProducerConfig::default()
                    },
                )
                .expect("connect");
                for event in part {
                    producer.send(event).expect("send");
                }
                producer.close().expect("close");
            });
        }
    });
    server.engine().flush().expect("final flush");
    assert_eq!(server.engine().stats().events_applied, events.len() as u64);
    assert_eq!(
        canonical(&server.engine().reports()),
        canonical(&control_reports(&events)),
        "fan-in reports equal the union stream's (id-free: producer \
         interleaving is nondeterministic)"
    );
    assert_eq!(server.stats().connections_accepted, 3);
    server.shutdown();
}

/// A producer built against a different property suite is refused at
/// handshake with the typed mismatch — both hashes reported.
#[test]
fn spec_mismatch_is_refused_at_handshake() {
    let server = sharded_server(4096);
    let addr = server.local_addr().to_string();
    let result = TraceProducer::connect(
        &addr,
        ProducerConfig {
            producer_id: 9,
            spec_hash: 0x0bad_5bec,
            ..ProducerConfig::default()
        },
    );
    match result {
        Err(NetError::SpecMismatch { client, server: s }) => {
            assert_eq!(client, 0x0bad_5bec);
            assert_eq!(s, net::standard_spec_hash());
        }
        Err(other) => panic!("expected SpecMismatch, got {other:?}"),
        Ok(_) => panic!("expected SpecMismatch, got an accepted connection"),
    }
    assert_eq!(server.stats().handshakes_refused, 1);
    assert_eq!(server.stats().connections_accepted, 0);
    server.shutdown();
}

/// NaN / −0.0 / infinity payloads cross the socket bit-exactly: the
/// frame codec moves `f64`s as IEEE-754 bit patterns, never through
/// value semantics (where NaN != NaN and −0.0 == 0.0 would corrupt a
/// re-encoded checksum).
#[test]
fn nan_payloads_cross_the_socket_bit_exactly() {
    use engine::{EngineError, RecoverableState};
    use online::SessionStats;
    use std::sync::Mutex;

    /// Records every ingested event verbatim.
    struct CapturingEngine(Mutex<Vec<TraceEvent>>);

    impl AnalysisEngine for CapturingEngine {
        fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, EngineError> {
            self.0.lock().unwrap().extend_from_slice(events);
            Ok(events.len())
        }
        fn flush(&self) -> Result<Vec<online::RunKey>, EngineError> {
            Ok(Vec::new())
        }
        fn report(&self, _run: online::RunKey) -> Option<cosy::AnalysisReport> {
            None
        }
        fn reports(&self) -> std::collections::HashMap<online::RunKey, cosy::AnalysisReport> {
            std::collections::HashMap::new()
        }
        fn stats(&self) -> SessionStats {
            SessionStats::default()
        }
        fn recoverable_state(&self) -> RecoverableState {
            RecoverableState::Ephemeral
        }
        fn checkpoint(&self) -> Result<(), EngineError> {
            Ok(())
        }
    }

    let specials = [
        f64::NAN.to_bits(),
        0x7ff0_0000_0000_2026u64, // NaN with payload bits
        (-0.0f64).to_bits(),
        f64::INFINITY.to_bits(),
        f64::NEG_INFINITY.to_bits(),
        0x0000_0000_0000_0001u64, // smallest subnormal
    ];
    let events: Vec<TraceEvent> = specials
        .iter()
        .enumerate()
        .map(|(i, &bits)| TraceEvent::RegionExited {
            run: online::RunKey(i as u64),
            function: "main".into(),
            region: online::RegionRef::new("main", 1),
            excl: f64::from_bits(bits),
            incl: f64::from_bits(bits ^ (1 << 63)),
            ovhd: 0.5,
        })
        .collect();

    let capture = Arc::new(CapturingEngine(Mutex::new(Vec::new())));
    let server = EngineServer::bind(
        "127.0.0.1:0",
        Arc::clone(&capture) as Arc<dyn AnalysisEngine>,
        ServerConfig::default(),
    )
    .expect("bind");
    let mut producer = TraceProducer::connect(
        server.local_addr().to_string(),
        ProducerConfig {
            producer_id: 5,
            batch_events: 2,
            ..ProducerConfig::default()
        },
    )
    .expect("connect");
    for event in &events {
        producer.send(event).expect("send");
    }
    producer.close().expect("close");

    let received = capture.0.lock().unwrap();
    assert_eq!(received.len(), events.len());
    for (got, sent) in received.iter().zip(&events) {
        let (
            TraceEvent::RegionExited {
                excl: a, incl: b, ..
            },
            TraceEvent::RegionExited {
                excl: x, incl: y, ..
            },
        ) = (got, sent)
        else {
            panic!("variant changed on the wire");
        };
        assert_eq!(a.to_bits(), x.to_bits(), "excl bit pattern preserved");
        assert_eq!(b.to_bits(), y.to_bits(), "incl bit pattern preserved");
    }
    drop(received);
    server.shutdown();
}

/// The server also fronts a *durable* engine: events streamed over TCP
/// survive a server-process kill via the engine's WAL.
#[test]
fn tcp_into_durable_engine_survives_engine_kill() {
    let events = sim_events(13);
    let dir = std::env::temp_dir().join(format!("kojak-net-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cut = events.len() / 2;

    {
        let engine = Arc::new(
            EngineBuilder::new()
                .durable(&dir)
                .build()
                .expect("durable engine"),
        );
        let server =
            EngineServer::bind("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
        let mut producer = TraceProducer::connect(
            server.local_addr().to_string(),
            ProducerConfig {
                producer_id: 3,
                batch_events: 32,
                ..ProducerConfig::default()
            },
        )
        .expect("connect");
        for event in &events[..cut] {
            producer.send(event).expect("send");
        }
        producer.flush().expect("flush");
        drop(producer);
        server.shutdown();
        // Engine dropped without checkpoint: the WAL is the survivor.
    }

    let engine = Arc::new(
        EngineBuilder::new()
            .durable(&dir)
            .build()
            .expect("recovered engine"),
    );
    let server = EngineServer::bind("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let mut producer = TraceProducer::connect(
        server.local_addr().to_string(),
        ProducerConfig {
            producer_id: 3,
            batch_events: 32,
            ..ProducerConfig::default()
        },
    )
    .expect("connect");
    // The *server* restarted, so its ack registry is fresh — but the
    // recovered engine holds the applied prefix. Resending it is safe:
    // WAL-recovered state plus idempotent refinements converge, and
    // RunStarted duplicates are rejected-and-counted, not applied twice.
    // The clean path for a producer is to resume from its own position;
    // here we deliberately resend only the un-applied tail.
    for event in &events[cut..] {
        producer.send(event).expect("send");
    }
    producer.close().expect("close");
    server.engine().flush().expect("final flush");

    let control = EngineBuilder::new().build_online();
    control.ingest_batch(&events).expect("control ingest");
    control.flush().expect("control flush");
    assert_eq!(server.engine().reports(), control.reports());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Feature negotiation pins (PR 6): unknown feature bits in the hello
/// are masked down to what the server supports — never a hard refusal —
/// so a newer producer degrades gracefully.
#[test]
fn unknown_feature_bits_are_masked_not_refused() {
    let server = sharded_server(4096);
    let mut producer = TraceProducer::connect(
        server.local_addr().to_string(),
        ProducerConfig {
            producer_id: 31,
            features: 0xff, // every bit, known and unknown
            ..ProducerConfig::default()
        },
    )
    .expect("a hello full of unknown feature bits still connects");
    assert_eq!(
        producer.features(),
        net::FEATURES_SUPPORTED,
        "negotiated set is the intersection, unknown bits masked off"
    );
    // The negotiated features actually work.
    producer.send(&sim_events(15)[0]).expect("send");
    producer.flush().expect("flush");
    let snapshot = producer.introspect().expect("introspect");
    assert!(!snapshot.is_empty());
    producer.close().expect("close");
    server.shutdown();
}

/// A v1 producer — 21 hello bytes, no feature byte — must get a prompt
/// `UNSUPPORTED_PROTOCOL` reply. The server reads only the version-
/// bearing prefix before deciding, so it cannot stall waiting for a
/// feature byte a v1 peer never sends.
#[test]
fn v1_hello_is_refused_promptly_not_deadlocked() {
    use std::io::{Read, Write};
    let server = sharded_server(4096);
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("raw connect");
    raw.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();

    // Hand-crafted v1 hello: magic | version=1 | producer id | spec hash.
    let mut hello = Vec::new();
    hello.extend_from_slice(b"KJNP");
    hello.push(1);
    hello.extend_from_slice(&7u64.to_le_bytes());
    hello.extend_from_slice(&net::standard_spec_hash().to_le_bytes());
    assert_eq!(hello.len(), net::proto::HELLO_PREFIX_LEN);
    raw.write_all(&hello).expect("write v1 hello");

    // The refusal arrives without the test writing another byte. (A real
    // v1 client would read its 26-byte ack, see version 2 at byte 4, and
    // refuse client-side with a typed UnsupportedProtocol.)
    let mut reply = [0u8; net::proto::HELLO_ACK_LEN];
    raw.read_exact(&mut reply).expect("prompt refusal reply");
    assert_eq!(&reply[..4], b"KJNP");
    assert_eq!(reply[4], net::PROTO_VERSION);
    assert_eq!(reply[5], net::proto::status::UNSUPPORTED_PROTOCOL);
    assert_eq!(server.stats().handshakes_refused, 1);
    assert_eq!(server.stats().connections_accepted, 0);
    server.shutdown();
}

/// A producer that offered no features gets the poll refused client-side
/// with the typed error — nothing touches the wire.
#[test]
fn introspect_without_negotiation_is_a_typed_refusal() {
    let server = sharded_server(4096);
    let mut producer = TraceProducer::connect(
        server.local_addr().to_string(),
        ProducerConfig {
            producer_id: 33,
            features: 0,
            ..ProducerConfig::default()
        },
    )
    .expect("connect");
    assert_eq!(producer.features(), 0);
    assert!(matches!(
        producer.introspect(),
        Err(NetError::FeatureUnavailable("introspect"))
    ));
    producer.close().expect("close");
    server.shutdown();
}

/// The acceptance-criteria test for the Introspect RPC: the snapshot
/// polled over loopback TCP reconciles **exactly** with
/// [`AnalysisEngine::stats`] for the same run — mid-stream, and again
/// after a forced server-side disconnect and reconnect-with-resume.
#[test]
fn introspect_reconciles_with_engine_stats_across_reconnect() {
    let events = sim_events(14);
    let server = sharded_server(4096);
    let mut producer = TraceProducer::connect(
        server.local_addr().to_string(),
        ProducerConfig {
            producer_id: 21,
            batch_events: 32,
            ..ProducerConfig::default()
        },
    )
    .expect("connect");
    assert_eq!(
        producer.features() & net::feature::INTROSPECT,
        net::feature::INTROSPECT
    );

    let cut = events.len() / 2;
    for event in &events[..cut] {
        producer.send(event).expect("send");
    }
    producer.flush().expect("flush");

    // Mid-stream poll: every counter equals the engine's own view (the
    // flush() barrier guarantees everything offered has been applied).
    let snapshot = producer.introspect().expect("introspect");
    let stats = server.engine().stats();
    assert_eq!(
        snapshot.counter("kojak_online_events_applied_total"),
        stats.events_applied
    );
    assert_eq!(
        snapshot.counter("kojak_net_events_received_total"),
        server.stats().events_received
    );
    assert_eq!(snapshot.gauge("kojak_engine_shards"), Some(3));

    // Fault lever: kill the connection server-side. The producer's next
    // traffic goes through reconnect-with-resume.
    assert_eq!(server.sever_connections(), 1);
    for event in &events[cut..] {
        producer.send(event).expect("send after sever");
    }
    producer.flush().expect("flush after sever");
    server.engine().flush().expect("engine flush");

    let snapshot = producer.introspect().expect("introspect after reconnect");
    let stats = server.engine().stats();
    assert_eq!(stats.events_applied, events.len() as u64, "no loss");
    assert_eq!(stats.events_rejected, 0, "no duplication");
    assert_eq!(
        snapshot.counter("kojak_online_events_applied_total"),
        stats.events_applied
    );
    assert_eq!(
        snapshot.counter("kojak_online_events_rejected_total"),
        stats.events_rejected
    );
    assert_eq!(
        snapshot.counter("kojak_online_flushes_total"),
        stats.flushes
    );
    assert_eq!(
        snapshot.counter("kojak_online_runs_finished_total"),
        stats.runs_finished
    );
    // The producer's ack ledger closes against the server's applied
    // count: everything acked was applied, nothing applied went unacked.
    assert_eq!(producer.stats().events_acked, stats.events_applied);
    assert!(
        producer.stats().reconnects >= 1,
        "the sever forced a reconnect"
    );

    // The wire-polled snapshot is the same assembly the server offers
    // locally (modulo counters still moving: quiesced here).
    let local = server.metrics();
    assert_eq!(
        snapshot.counter("kojak_online_events_applied_total"),
        local.counter("kojak_online_events_applied_total")
    );

    // Stage histograms are live and render as Prometheus-style text.
    let apply = snapshot
        .histogram("kojak_online_apply_ns")
        .expect("apply-stage histogram present");
    assert!(apply.count > 0, "the apply stage timed every batch");
    assert!(snapshot
        .render_text()
        .contains("kojak_net_events_received_total"));

    producer.close().expect("close");
    server.shutdown();
}
