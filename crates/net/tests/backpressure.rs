//! Backpressure: a slow server makes [`TraceProducer::send`] *block* on
//! a bounded in-flight window instead of growing memory, and the
//! producer's counters stay exact across a forced reconnect.

use engine::{AnalysisEngine, EngineError, RecoverableState};
use net::{EngineServer, ProducerConfig, ServerConfig, TraceProducer};
use online::replay::replay_store;
use online::{RunKey, SessionStats, TraceEvent};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An engine whose every ingest dawdles — the "slow consumer" the
/// protocol must throttle against — wrapping a real online session so
/// reports still work.
struct SlowEngine {
    inner: engine::Engine,
    delay: Duration,
    batches: AtomicU64,
}

impl SlowEngine {
    fn new(delay: Duration) -> Self {
        SlowEngine {
            inner: engine::EngineBuilder::new().build().expect("online engine"),
            delay,
            batches: AtomicU64::new(0),
        }
    }
}

impl AnalysisEngine for SlowEngine {
    fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, EngineError> {
        std::thread::sleep(self.delay);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.inner.ingest_batch(events)
    }

    fn flush(&self) -> Result<Vec<RunKey>, EngineError> {
        self.inner.flush()
    }

    fn report(&self, run: RunKey) -> Option<cosy::AnalysisReport> {
        self.inner.report(run)
    }

    fn reports(&self) -> HashMap<RunKey, cosy::AnalysisReport> {
        self.inner.reports()
    }

    fn stats(&self) -> SessionStats {
        self.inner.stats()
    }

    fn recoverable_state(&self) -> RecoverableState {
        self.inner.recoverable_state()
    }

    fn checkpoint(&self) -> Result<(), EngineError> {
        self.inner.checkpoint()
    }
}

fn sim_events() -> Vec<TraceEvent> {
    use apprentice_sim::{archetypes, simulate_program, MachineModel};
    let mut store = perfdata::Store::new();
    simulate_program(
        &mut store,
        &archetypes::particle_mc(3),
        &MachineModel::t3e_900(),
        &[1, 4, 16],
    );
    replay_store(&store)
}

/// A batch-level engine failure (a durable engine whose WAL append
/// failed applied *nothing*) must not be acknowledged: the server drops
/// the connection instead, the producer reconnects and resends, and no
/// event is lost once the engine recovers.
#[test]
fn wholesale_ingest_failure_is_not_acked_and_resends() {
    use online::IngestError;

    /// Fails the first `failures` ingest calls wholesale (as a WAL
    /// append error would), then delegates.
    struct FlakyEngine {
        inner: engine::Engine,
        remaining_failures: AtomicU64,
    }

    impl AnalysisEngine for FlakyEngine {
        fn ingest_batch(&self, events: &[TraceEvent]) -> Result<usize, EngineError> {
            if self
                .remaining_failures
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                return Err(EngineError::Ingest(IngestError::Wal {
                    op: online::WalOp::Append,
                    kind: std::io::ErrorKind::Other,
                    detail: "injected append failure".to_string(),
                }));
            }
            self.inner.ingest_batch(events)
        }
        fn flush(&self) -> Result<Vec<RunKey>, EngineError> {
            self.inner.flush()
        }
        fn report(&self, run: RunKey) -> Option<cosy::AnalysisReport> {
            self.inner.report(run)
        }
        fn reports(&self) -> HashMap<RunKey, cosy::AnalysisReport> {
            self.inner.reports()
        }
        fn stats(&self) -> SessionStats {
            self.inner.stats()
        }
        fn recoverable_state(&self) -> RecoverableState {
            self.inner.recoverable_state()
        }
        fn checkpoint(&self) -> Result<(), EngineError> {
            self.inner.checkpoint()
        }
    }

    let events = sim_events();
    let engine = Arc::new(FlakyEngine {
        inner: engine::EngineBuilder::new().build().expect("engine"),
        remaining_failures: AtomicU64::new(2),
    });
    let server = EngineServer::bind(
        "127.0.0.1:0",
        Arc::clone(&engine) as Arc<dyn AnalysisEngine>,
        ServerConfig::default(),
    )
    .expect("bind");

    let mut producer = TraceProducer::connect(
        server.local_addr().to_string(),
        ProducerConfig {
            producer_id: 1,
            batch_events: 16,
            reconnect_backoff: Duration::from_millis(5),
            ..ProducerConfig::default()
        },
    )
    .expect("connect");
    for event in &events {
        producer.send(event).expect("send");
    }
    let stats = producer.close().expect("close");

    // The injected failures forced reconnect-and-resend; nothing lost.
    assert!(stats.reconnects >= 1, "failure forced a reconnect");
    assert!(stats.events_resent >= 1, "failed batch was resent");
    assert_eq!(stats.events_acked, events.len() as u64);
    assert!(server.stats().ingest_failures >= 1);

    engine.flush().expect("final flush");
    assert_eq!(engine.stats().events_applied, events.len() as u64);
    assert_eq!(engine.stats().events_rejected, 0);
    let control = engine::EngineBuilder::new().build_online();
    control.ingest_batch(&events).expect("control ingest");
    control.flush().expect("control flush");
    assert_eq!(engine.reports(), control.reports());
    server.shutdown();
}

/// A slow server bounds the producer's memory: in-flight events never
/// exceed the window, and the producer demonstrably *waits* for acks
/// (total wall time covers the per-batch delay serialized through the
/// window) instead of buffering ahead.
#[test]
fn slow_server_blocks_send_with_bounded_inflight() {
    let events = sim_events();
    let delay = Duration::from_millis(5);
    let server = EngineServer::bind(
        "127.0.0.1:0",
        Arc::new(SlowEngine::new(delay)),
        ServerConfig {
            // Window of one batch: at most 32 events may be un-acked.
            window: 32,
            flush_every_events: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let mut producer = TraceProducer::connect(
        server.local_addr().to_string(),
        ProducerConfig {
            producer_id: 1,
            batch_events: 32,
            ..ProducerConfig::default()
        },
    )
    .expect("connect");

    let batches = events.len().div_ceil(32);
    let start = Instant::now();
    let mut max_inflight = 0u64;
    for event in &events {
        producer.send(event).expect("send");
        max_inflight = max_inflight.max(producer.stats().events_inflight);
    }
    producer.flush().expect("flush");
    let elapsed = start.elapsed();

    // Bounded memory: never more than the one-batch window in flight
    // (the budget floor admits exactly one batch while acks are owed).
    assert!(
        max_inflight <= 32,
        "in-flight exceeded the window: {max_inflight}"
    );
    // Blocking, not buffering: with a window of one batch every batch's
    // server-side delay is on the producer's critical path.
    let floor = delay * (batches as u32);
    assert!(
        elapsed >= floor,
        "producer finished in {elapsed:?} — it must have buffered past the \
         window (serialized floor {floor:?} for {batches} batches)"
    );

    let stats = producer.close().expect("close");
    assert_eq!(stats.events_sent, events.len() as u64);
    assert_eq!(stats.events_acked, events.len() as u64);
    assert_eq!(stats.events_inflight, 0);
    assert_eq!(stats.batches_sent, batches as u64);
    assert_eq!(stats.acks_received, batches as u64);
    server.shutdown();
}

/// Counters across a reconnect: killing every live server socket
/// mid-stream forces the producer through reconnect-with-resume; acked,
/// resent and in-flight counts must still reconcile exactly — nothing
/// lost, nothing double-counted.
#[test]
fn stats_reconcile_across_reconnect() {
    let events = sim_events();
    let engine = Arc::new(engine::EngineBuilder::new().build().expect("engine"));
    let server = EngineServer::bind(
        "127.0.0.1:0",
        Arc::clone(&engine) as Arc<dyn AnalysisEngine>,
        ServerConfig::default(),
    )
    .expect("bind");

    let mut producer = TraceProducer::connect(
        server.local_addr().to_string(),
        ProducerConfig {
            producer_id: 1,
            batch_events: 16,
            ..ProducerConfig::default()
        },
    )
    .expect("connect");

    let cut = events.len() / 2;
    for event in &events[..cut] {
        producer.send(event).expect("send");
    }
    producer.flush().expect("flush");

    // Sever the producer's socket server-side: the next send hits a dead
    // connection and must reconnect (same server, same registry).
    assert_eq!(server.sever_connections(), 1);
    for event in &events[cut..] {
        producer.send(event).expect("send after reconnect");
    }
    let stats = producer.close().expect("close");

    assert_eq!(stats.reconnects, 1, "exactly one reconnect");
    assert_eq!(stats.events_offered, events.len() as u64);
    assert_eq!(stats.events_acked, events.len() as u64, "every event acked");
    assert_eq!(stats.events_inflight, 0);
    // Everything was flushed-and-acked before the cut, so the resend set
    // is empty or tiny (only what the severed socket swallowed).
    assert_eq!(stats.events_sent, events.len() as u64 + stats.events_resent);

    engine.flush().expect("final flush");
    assert_eq!(engine.stats().events_applied, events.len() as u64);
    assert_eq!(engine.stats().events_rejected, 0);

    let control = engine::EngineBuilder::new().build_online();
    control.ingest_batch(&events).expect("control ingest");
    control.flush().expect("control flush");
    assert_eq!(engine.reports(), control.reports());
    server.shutdown();
}
