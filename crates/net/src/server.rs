//! The server side: accept N producer connections, route decoded events
//! into any [`AnalysisEngine`].
//!
//! One [`EngineServer`] fronts one engine — batch, online, durable, or
//! sharded, anything [`engine::EngineBuilder`] can produce — so the whole
//! deployment matrix of PR 4 is reachable from remote producers through
//! one binary. Each accepted connection is handled by its own thread;
//! per-producer state (the last acknowledged sequence number) lives in a
//! registry shared across connections, which is what makes
//! reconnect-and-resume exact: a batch arriving twice (the producer never
//! saw the ack) is deduplicated by sequence number *under the producer's
//! lock*, so not even a race between a dying connection and its
//! replacement can apply an event twice.

use crate::error::NetError;
use crate::proto::{self, Ack, HelloAck, Message};
use engine::AnalysisEngine;
use obs::{MetricsRegistry, MetricsSnapshot, MetricsSource};
use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Hash of the suite this server's engine evaluates (see
    /// [`proto::spec_hash`]); producers with a different hash are refused
    /// at handshake. Defaults to the standard suite.
    pub spec_hash: u64,
    /// Maximum events a producer should keep in flight; advertised at
    /// handshake and re-advertised (minus current queue depth) as the
    /// headroom of every ack.
    pub window: u32,
    /// Flush the engine once this many events have been applied since
    /// the last flush (0: flush only on goodbye/disconnect). The gap
    /// between applied and flushed events is the "queue" the ack headroom
    /// reports.
    pub flush_every_events: u64,
    /// Cap on a frame's payload length.
    pub max_frame_len: u32,
    /// Deadline for a connection to complete its handshake. A peer that
    /// connects and then trickles (or never sends) its hello — the
    /// slowloris shape — is dropped when it expires instead of pinning a
    /// handler thread forever. `Duration::ZERO` disables the deadline.
    pub handshake_timeout: std::time::Duration,
    /// Reap a connection that has sent nothing for this long (counted in
    /// [`ServerStats::connections_reaped_idle`]; the producer's resume
    /// state is kept, so a live producer simply reconnects). A timeout
    /// that expires *mid-frame* also reaps — a peer dribbling one byte
    /// per frame period is indistinguishable from a dead one.
    /// `Duration::ZERO` disables reaping.
    pub idle_timeout: std::time::Duration,
    /// Quarantine a producer after this many protocol errors
    /// (undecodable frames, checksum mismatches, state-machine
    /// violations) across its connections: subsequent handshakes are
    /// refused with [`proto::status::QUARANTINED`] until
    /// [`crate::EngineServer::clear_quarantine`]. 0 disables quarantine.
    pub max_producer_protocol_errors: u32,
    /// Fault-injection seam for accepted sockets' I/O. Inert by default.
    pub faults: faults::Faults,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            spec_hash: proto::standard_spec_hash(),
            window: 4096,
            flush_every_events: 2048,
            max_frame_len: proto::DEFAULT_MAX_FRAME_LEN,
            handshake_timeout: std::time::Duration::from_secs(10),
            idle_timeout: std::time::Duration::ZERO,
            max_producer_protocol_errors: 8,
            faults: faults::Faults::none(),
        }
    }
}

/// Net-layer counters of a server (engine-level counters — applied,
/// rejected, flushes — live in the engine's own
/// [`online::SessionStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (handshake completed successfully).
    pub connections_accepted: u64,
    /// Handshakes refused (bad magic, version skew, spec mismatch).
    pub handshakes_refused: u64,
    /// Event batches received.
    pub batches_received: u64,
    /// Events received over all batches.
    pub events_received: u64,
    /// Events dropped as duplicates of an already-acknowledged sequence
    /// number (producer resend after a lost ack).
    pub events_deduplicated: u64,
    /// Connections dropped for malformed frames/messages.
    pub protocol_errors: u64,
    /// Connections dropped because the engine refused a whole batch
    /// (e.g. a WAL append failure on a durable engine) — the batch was
    /// **not** acknowledged, so the producer's reconnect resends it.
    pub ingest_failures: u64,
    /// Producers that ended their stream with a goodbye.
    pub goodbyes: u64,
    /// Connections reaped for silence: the handshake deadline or idle
    /// timeout expired (see [`ServerConfig`]).
    pub connections_reaped_idle: u64,
    /// Producers quarantined for repeated protocol errors.
    pub producers_quarantined: u64,
}

impl MetricsSource for ServerStats {
    fn collect_into(&self, out: &mut MetricsSnapshot) {
        // Exhaustive destructure: adding a ServerStats field without
        // deciding its metric name breaks this build.
        let ServerStats {
            connections_accepted,
            handshakes_refused,
            batches_received,
            events_received,
            events_deduplicated,
            protocol_errors,
            ingest_failures,
            goodbyes,
            connections_reaped_idle,
            producers_quarantined,
        } = *self;
        out.push_counter("kojak_net_connections_accepted_total", connections_accepted);
        out.push_counter("kojak_net_handshakes_refused_total", handshakes_refused);
        out.push_counter("kojak_net_batches_received_total", batches_received);
        out.push_counter("kojak_net_events_received_total", events_received);
        out.push_counter("kojak_net_events_deduplicated_total", events_deduplicated);
        out.push_counter("kojak_net_protocol_errors_total", protocol_errors);
        out.push_counter("kojak_net_ingest_failures_total", ingest_failures);
        out.push_counter("kojak_net_goodbyes_total", goodbyes);
        out.push_counter(
            "kojak_net_connections_reaped_idle_total",
            connections_reaped_idle,
        );
        out.push_counter(
            "kojak_net_producers_quarantined_total",
            producers_quarantined,
        );
    }
}

/// Per-producer resume state, shared by every connection that producer
/// (re)opens.
#[derive(Debug, Default)]
struct ProducerSlot {
    /// Highest sequence number applied and acknowledged.
    last_acked: u64,
    /// Protocol errors attributed to this producer across all of its
    /// connections.
    protocol_errors: u64,
    /// Refuses this producer's handshakes once set (see
    /// [`ServerConfig::max_producer_protocol_errors`]).
    quarantined: bool,
}

struct ServerInner {
    engine: Arc<dyn AnalysisEngine>,
    config: ServerConfig,
    producers: Mutex<HashMap<u64, Arc<Mutex<ProducerSlot>>>>,
    /// Events applied since the engine was last flushed — the "queue"
    /// behind the ack headroom.
    pending_events: AtomicU64,
    /// Serializes engine flushes (concurrent handlers skip rather than
    /// stack up behind one).
    flush_gate: Mutex<()>,
    stats: Mutex<ServerStats>,
    shutdown: AtomicBool,
    /// Live accepted sockets keyed by connection id, so shutdown (and
    /// [`EngineServer::sever_connections`]) can unblock their readers.
    /// Each handler removes its own entry on exit — a long-running
    /// server does not leak one fd per reconnect.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    /// Net-layer stage histograms (frame decode, message handling).
    registry: MetricsRegistry,
    decode_ns: Arc<obs::Histogram>,
    handle_ns: Arc<obs::Histogram>,
}

impl ServerInner {
    fn slot(&self, producer_id: u64) -> Arc<Mutex<ProducerSlot>> {
        let mut producers = self.producers.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(producers.entry(producer_id).or_default())
    }

    fn stats(&self) -> std::sync::MutexGuard<'_, ServerStats> {
        self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a protocol error against a producer, quarantining it once
    /// the configured threshold is crossed.
    fn note_protocol_error(&self, slot: &Arc<Mutex<ProducerSlot>>) {
        self.stats().protocol_errors += 1;
        let max = self.config.max_producer_protocol_errors;
        if max == 0 {
            return;
        }
        let mut producer = slot.lock().unwrap_or_else(|e| e.into_inner());
        producer.protocol_errors += 1;
        if !producer.quarantined && producer.protocol_errors >= u64::from(max) {
            producer.quarantined = true;
            self.stats().producers_quarantined += 1;
        }
    }

    fn headroom(&self) -> u32 {
        let pending = self.pending_events.load(Ordering::Relaxed);
        self.config
            .window
            .saturating_sub(pending.min(u32::MAX as u64) as u32)
    }

    /// Flush the engine if the applied-but-unflushed queue crossed the
    /// configured threshold (or unconditionally, at stream end).
    fn maybe_flush(&self, force: bool) {
        let threshold = self.config.flush_every_events;
        let due =
            force || (threshold > 0 && self.pending_events.load(Ordering::Relaxed) >= threshold);
        if !due {
            return;
        }
        let gate = if force {
            Some(self.flush_gate.lock().unwrap_or_else(|e| e.into_inner()))
        } else {
            self.flush_gate.try_lock().ok()
        };
        if gate.is_some() {
            // A failed flush re-queues its delta inside the engine and
            // resurfaces typed on the next flush; the server keeps
            // serving (and the headroom stays shrunk, throttling
            // producers while the engine is wedged). Subtract the
            // snapshot taken *before* the flush rather than zeroing:
            // events a concurrent handler applies mid-flush must keep
            // their claim on the next threshold flush.
            let covered = self.pending_events.load(Ordering::Relaxed);
            if self.engine.flush().is_ok() {
                self.pending_events.fetch_sub(covered, Ordering::Relaxed);
            }
        }
    }

    /// The whole stack's metric snapshot, assembled top-down: the
    /// engine's per-shard-merged metrics, the process-global compiled-eval
    /// cache counters (added exactly once, **here** — see
    /// [`online::eval_cache_metrics`]), the net-layer counters, and the
    /// net-layer stage histograms.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut out = self.engine.metrics();
        out.merge(&online::eval_cache_metrics());
        self.stats().collect_into(&mut out);
        self.registry.collect_into(&mut out);
        out.push_gauge(
            "kojak_net_pending_flush_events",
            self.pending_events.load(Ordering::Relaxed),
        );
        out
    }
}

/// A TCP front-end feeding one [`AnalysisEngine`].
pub struct EngineServer {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl EngineServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting producer connections into `engine`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<dyn AnalysisEngine>,
        config: ServerConfig,
    ) -> Result<EngineServer, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let registry = MetricsRegistry::default();
        let decode_ns = registry.histogram("kojak_net_decode_ns");
        let handle_ns = registry.histogram("kojak_net_handle_ns");
        let inner = Arc::new(ServerInner {
            engine,
            config,
            producers: Mutex::new(HashMap::new()),
            pending_events: AtomicU64::new(0),
            flush_gate: Mutex::new(()),
            stats: Mutex::new(ServerStats::default()),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            registry,
            decode_ns,
            handle_ns,
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_inner));
        Ok(EngineServer {
            inner,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (with the concrete port for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server feeds.
    pub fn engine(&self) -> &Arc<dyn AnalysisEngine> {
        &self.inner.engine
    }

    /// Net-layer counters.
    pub fn stats(&self) -> ServerStats {
        *self.inner.stats()
    }

    /// The whole stack's metric snapshot — exactly what an
    /// [`crate::proto::Message::Introspect`] poll over the wire returns:
    /// engine metrics (merged over shards), the process-global
    /// compiled-eval cache counters (added exactly once here), net-layer
    /// counters, and net-layer stage histograms.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics_snapshot()
    }

    /// The last sequence number acknowledged to `producer_id` (0 for an
    /// unknown producer).
    pub fn last_acked(&self, producer_id: u64) -> u64 {
        self.inner
            .producers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&producer_id)
            .map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).last_acked)
            .unwrap_or(0)
    }

    /// Producer ids currently quarantined for repeated protocol errors
    /// (their handshakes are refused with
    /// [`proto::status::QUARANTINED`]).
    pub fn quarantined_producers(&self) -> Vec<u64> {
        let producers = self
            .inner
            .producers
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<u64> = producers
            .iter()
            .filter(|(_, slot)| slot.lock().unwrap_or_else(|e| e.into_inner()).quarantined)
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Lift a producer's quarantine (its protocol-error count restarts
    /// from zero). Returns whether the producer was quarantined.
    pub fn clear_quarantine(&self, producer_id: u64) -> bool {
        let producers = self
            .inner
            .producers
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let Some(slot) = producers.get(&producer_id) else {
            return false;
        };
        let mut slot = slot.lock().unwrap_or_else(|e| e.into_inner());
        let was = slot.quarantined;
        slot.quarantined = false;
        slot.protocol_errors = 0;
        was
    }

    /// Forcibly shut down every accepted producer connection (a fault
    /// lever for tests and operators). Producers observe a socket error
    /// and go through reconnect-with-resume; nothing is lost. Returns
    /// how many sockets were severed.
    pub fn sever_connections(&self) -> usize {
        let mut conns = self.inner.conns.lock().unwrap_or_else(|e| e.into_inner());
        for conn in conns.values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let severed = conns.len();
        conns.clear();
        severed
    }

    /// Stop accepting, unblock and join every connection handler, flush
    /// the engine one final time.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection, and every
        // handler blocked in a read with a socket shutdown.
        let _ = TcpStream::connect(self.addr);
        for conn in self
            .inner
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Ok(handlers) = accept.join() {
            for h in handlers {
                let _ = h.join();
            }
        }
        self.inner.maybe_flush(true);
    }
}

impl Drop for EngineServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<ServerInner>) -> Vec<JoinHandle<()>> {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Bound growth across reconnect churn: handlers whose
        // connection ended are detached (their conn-map entry is gone
        // already — each handler removes its own on exit).
        handlers.retain(|h| !h.is_finished());
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let conn_id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            inner
                .conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(conn_id, clone);
        }
        let conn_inner = Arc::clone(&inner);
        handlers.push(std::thread::spawn(move || {
            let _ = handle_connection(stream, &conn_inner);
            conn_inner
                .conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&conn_id);
        }));
    }
    handlers
}

/// True for the socket errors a `SO_RCVTIMEO` expiry surfaces as.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Handshake, then the frame loop, for one producer connection. Any
/// [`NetError`] terminates the connection (counted in
/// [`ServerStats::protocol_errors`] when the peer misbehaved).
fn handle_connection(stream: TcpStream, inner: &ServerInner) -> Result<(), NetError> {
    // --- handshake ------------------------------------------------------
    // Slowloris guard: the hello must arrive within its deadline — a
    // peer that connects and goes silent must not pin a handler thread.
    if !inner.config.handshake_timeout.is_zero() {
        let _ = stream.set_read_timeout(Some(inner.config.handshake_timeout));
    }
    let mut stream = faults::FaultStream::new(stream, &inner.config.faults);
    // Read the version-bearing prefix first: a v1 producer's hello is
    // exactly this long, so waiting for a full v2 hello would deadlock
    // against it. The feature byte is consumed only from a peer whose
    // version says it sent one.
    let mut prefix_bytes = [0u8; proto::HELLO_PREFIX_LEN];
    if let Err(e) = stream.read_exact(&mut prefix_bytes) {
        // The shutdown poke (or a port scanner) — not a protocol error;
        // an expired handshake deadline is counted as a reap.
        if is_timeout(&e) {
            inner.stats().connections_reaped_idle += 1;
        }
        return Err(NetError::Closed);
    }
    let (version, mut hello) = match proto::decode_hello_prefix(&prefix_bytes) {
        Ok(decoded) => decoded,
        Err(e) => {
            inner.stats().handshakes_refused += 1;
            return Err(e);
        }
    };
    if version == proto::PROTO_VERSION {
        let mut features_byte = [0u8; 1];
        if stream.read_exact(&mut features_byte).is_err() {
            return Err(NetError::Closed);
        }
        hello.features = features_byte[0];
    }
    // Unknown feature bits are masked, not refused: an older server
    // simply answers with fewer features and a newer producer degrades.
    let features = hello.features & proto::FEATURES_SUPPORTED;
    let slot = inner.slot(hello.producer_id);
    let (last_acked, quarantined) = {
        let producer = slot.lock().unwrap_or_else(|e| e.into_inner());
        (producer.last_acked, producer.quarantined)
    };
    let refusal = if version != proto::PROTO_VERSION {
        Some(proto::status::UNSUPPORTED_PROTOCOL)
    } else if hello.spec_hash != inner.config.spec_hash {
        Some(proto::status::SPEC_MISMATCH)
    } else if quarantined {
        Some(proto::status::QUARANTINED)
    } else {
        None
    };
    let reply = HelloAck {
        status: refusal.unwrap_or(proto::status::ACCEPTED),
        spec_hash: inner.config.spec_hash,
        last_acked,
        window: inner.config.window,
        features,
    };
    // Count before replying: the peer acts on the reply the instant it
    // lands, and may query server counters right after.
    {
        let mut stats = inner.stats();
        match refusal {
            Some(_) => stats.handshakes_refused += 1,
            None => stats.connections_accepted += 1,
        }
    }
    std::io::Write::write_all(&mut stream, &proto::encode_hello_ack(&reply))?;
    if let Some(code) = refusal {
        return Err(NetError::Refused(code));
    }
    // Handshake done: switch the socket to the idle-reaping regime.
    let idle = inner.config.idle_timeout;
    let _ = stream
        .get_ref()
        .set_read_timeout(if idle.is_zero() { None } else { Some(idle) });

    // --- frame loop -----------------------------------------------------
    // One decode arena per connection: the frame payload buffer and the
    // event vectors are reused across frames, so the steady-state decode
    // → handle path allocates nothing per batch (the events' own heap
    // contents aside).
    let mut arena = proto::DecodeArena::new();
    loop {
        // The blocking socket read stays outside the decode timer — it
        // measures producer idle time, not decode work.
        match arena.read_frame(&mut stream, inner.config.max_frame_len) {
            Ok(()) => {}
            Err(NetError::Io(e)) if is_timeout(&e) && !idle.is_zero() => {
                // Idle (or dribbling) producer: reap the connection. Its
                // resume state is kept — a live producer reconnects and
                // resumes exactly.
                inner.stats().connections_reaped_idle += 1;
                inner.maybe_flush(true);
                return Ok(());
            }
            Err(NetError::Io(_)) | Err(NetError::Closed) => {
                // Producer died (or was killed): flush what it sent so
                // live reports reflect everything acknowledged.
                inner.maybe_flush(true);
                return Ok(());
            }
            Err(e) => {
                inner.note_protocol_error(&slot);
                return Err(e);
            }
        };
        let decoded = {
            let _stage = inner.decode_ns.start_timer();
            arena.decode()
        };
        let message = match decoded {
            Ok(m) => m,
            Err(e) => {
                inner.note_protocol_error(&slot);
                return Err(NetError::Wire(e));
            }
        };
        let _handle_stage = inner.handle_ns.start_timer();
        match message {
            Message::EventBatch { first_seq, events } => {
                let count = events.len() as u64;
                {
                    let mut stats = inner.stats();
                    stats.batches_received += 1;
                    stats.events_received += count;
                }
                // Dedup + apply + ack bookkeeping under the producer's
                // lock: a resend racing the original connection cannot
                // apply twice.
                let mut slot = slot.lock().unwrap_or_else(|e| e.into_inner());
                let last_seq = first_seq.saturating_add(count).saturating_sub(1);
                let fresh_from = slot.last_acked.saturating_add(1).max(first_seq);
                let skip = (fresh_from - first_seq) as usize;
                if skip > 0 {
                    let dup = skip.min(events.len()) as u64;
                    inner.stats().events_deduplicated += dup;
                }
                let fresh = &events[skip.min(events.len())..];
                if !fresh.is_empty() {
                    // Per-event rejections (unknown run/region, duplicate
                    // RunStarted) are isolated inside the engine: counted,
                    // the rest of the batch applies, and resending would
                    // only reject again — so the sequence still advances.
                    // A *batch-level* failure (a WAL append error on a
                    // durable engine applied nothing) must NOT be
                    // acknowledged: drop the connection instead, so the
                    // producer's reconnect resends the batch once the
                    // engine recovers. (For a sharded engine one shard may
                    // have applied its sub-batch; the resend converges —
                    // timing refinements are overwrite-idempotent and
                    // duplicate RunStarted events are rejected-and-counted,
                    // never applied twice.)
                    if let Err(e) = inner.engine.ingest_batch(fresh) {
                        if e.failed_wholesale() {
                            inner.stats().ingest_failures += 1;
                            return Err(NetError::Engine(e));
                        }
                    }
                    inner
                        .pending_events
                        .fetch_add(fresh.len() as u64, Ordering::Relaxed);
                }
                slot.last_acked = slot.last_acked.max(last_seq);
                let ack = Message::Ack(Ack {
                    high_water: slot.last_acked,
                    headroom: inner.headroom(),
                });
                drop(slot);
                inner.maybe_flush(false);
                proto::write_message(&mut stream, &ack)?;
                arena.recycle(events);
            }
            Message::Goodbye => {
                inner.stats().goodbyes += 1;
                inner.maybe_flush(true);
                // Socket-level shutdown (the accept loop holds a clone of
                // this fd, so a plain drop would not signal EOF): the
                // producer's graceful close waits for this as its barrier
                // that the goodbye — flush included — was processed.
                let _ = stream.get_ref().shutdown(Shutdown::Both);
                return Ok(());
            }
            Message::Introspect => {
                if features & proto::feature::INTROSPECT == 0 {
                    inner.note_protocol_error(&slot);
                    return Err(NetError::FeatureUnavailable("introspect"));
                }
                let report = Message::MetricsReport(inner.metrics_snapshot().encode());
                proto::write_message(&mut stream, &report)?;
            }
            other @ (Message::Ack(_) | Message::MetricsReport(_)) => {
                inner.note_protocol_error(&slot);
                return Err(NetError::UnexpectedMessage {
                    expected: "event-batch, introspect or goodbye",
                    got: other.kind(),
                });
            }
        }
    }
}
