//! # `kojak-net` — the framed TCP wire protocol
//!
//! The paper's premise is that COSY/ASL-specified analysis runs against
//! trace data produced by **real monitors**: instrumented processes on
//! other machines, not in-process fixtures. This crate is that seam — a
//! length-prefixed, CRC-32-checksummed, versioned frame protocol over
//! TCP carrying [`online::TraceEvent`]s, promoting the codec the
//! write-ahead log already trusts ([`online::wire`]) from a durability
//! detail to a network protocol.
//!
//! ```text
//!  TraceProducer ──TCP──▶ ┐
//!  TraceProducer ──TCP──▶ ├─ EngineServer ──▶ any AnalysisEngine
//!  TraceProducer ──TCP──▶ ┘   (seq dedup,      (batch / online /
//!    (windowed,                ack+headroom)    durable / sharded)
//!     reconnecting)
//! ```
//!
//! * [`EngineServer`] accepts N producer connections and routes decoded
//!   events into any [`engine::AnalysisEngine`] — one binary fronts every
//!   deployment shape [`engine::EngineBuilder`] can produce, including
//!   the shard-per-WAL [`engine::ShardedSession`].
//! * [`TraceProducer`] is the client: batched sends, a bounded in-flight
//!   window throttled by the server's ack headroom (backpressure instead
//!   of unbounded buffering), and reconnect-with-resume — the handshake
//!   returns the last acknowledged sequence number, so a producer restart
//!   never duplicates or drops an event (the server additionally
//!   deduplicates by sequence number under the producer's lock).
//! * The handshake exchanges a **spec hash** ([`proto::spec_hash`]): a
//!   producer built against a different property suite is refused with a
//!   typed [`NetError::SpecMismatch`] instead of silently feeding a
//!   server that would analyze its events differently.
//! * The handshake also negotiates **optional message sets** as a
//!   feature bitmask ([`proto::feature`]) — unknown bits are masked, not
//!   refused, so additions like the [`proto::Message::Introspect`] poll
//!   (answered with the server's live [`obs::MetricsSnapshot`], see
//!   [`TraceProducer::introspect`]) never force a hard version mismatch.
//!
//! Frame layout, handshake bytes, and message formats are documented in
//! [`proto`]; every failure mode is a typed [`NetError`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod error;
pub mod proto;
pub mod server;

pub use client::{decorrelated_backoff, NetStats, ProducerConfig, TraceProducer};
pub use error::NetError;
pub use proto::{
    feature, spec_hash, standard_spec_hash, Ack, Message, FEATURES_SUPPORTED, PROTO_VERSION,
};
pub use server::{EngineServer, ServerConfig, ServerStats};
