//! The producer side: a reconnecting, windowed TCP event source.
//!
//! A [`TraceProducer`] assigns every offered event a sequence number
//! equal to its **position in the producer's stream** (1-based). That
//! identity is what makes restart exact: a restarted producer re-offers
//! its stream from the beginning, the handshake tells it the server's
//! last acknowledged sequence number, and [`TraceProducer::send`]
//! silently skips the already-acknowledged prefix — no duplicates, no
//! losses, no producer-side persistence needed beyond the ability to
//! replay its own stream.
//!
//! In flight, unacknowledged batches are retained (encoded) until their
//! ack arrives; a connection failure triggers reconnect-with-resume: the
//! new handshake's high-water mark drops whatever the server already
//! applied, the rest is resent, and the server deduplicates any overlap
//! by sequence number. Sends block once the in-flight window — the
//! smaller of the server's advertised window and its latest ack
//! headroom, floored at one batch — is full: backpressure propagates to
//! the producer instead of buffering unboundedly on either side.

use crate::error::NetError;
use crate::proto::{self, Hello, Message};
use faults::{FaultStream, Faults};
use obs::{MetricsSnapshot, MetricsSource};
use online::TraceEvent;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The producer's socket, routed through the fault seam (an inert seam
/// is a zero-cost passthrough).
type ProducerStream = FaultStream<TcpStream>;

/// Producer configuration.
#[derive(Debug, Clone)]
pub struct ProducerConfig {
    /// Stable identity of this producer across restarts — the key of the
    /// server's resume registry. Two live producers must not share one.
    pub producer_id: u64,
    /// Hash of the suite this producer was built against (see
    /// [`proto::spec_hash`]); must match the server's.
    pub spec_hash: u64,
    /// Events per batch frame.
    pub batch_events: usize,
    /// Reconnect attempts before giving up.
    pub reconnect_attempts: u32,
    /// Base backoff before the first reconnect attempt. Subsequent waits
    /// use decorrelated jitter — each wait is drawn (deterministically,
    /// seeded by `producer_id`) from `[base, 3 × previous wait]`, capped
    /// at [`ProducerConfig::reconnect_backoff_cap`] — so a fleet of
    /// producers knocked over by one server restart does not stampede
    /// back in lockstep.
    pub reconnect_backoff: Duration,
    /// Ceiling on any single reconnect wait. `Duration::ZERO` means the
    /// default of one second.
    pub reconnect_backoff_cap: Duration,
    /// Wall-clock budget for one reconnect episode (sleeps included):
    /// once exceeded, the episode fails typed
    /// ([`NetError::ReconnectFailed`] with the elapsed time) even if
    /// attempts remain. `Duration::ZERO` disables the time budget —
    /// only [`ProducerConfig::reconnect_attempts`] bounds the episode.
    pub reconnect_max_elapsed: Duration,
    /// Cap on a received frame's payload length.
    pub max_frame_len: u32,
    /// Connect/read/write timeout. A dead peer that never sends a
    /// FIN/RST (host power loss, blackholed route) surfaces as a timed-
    /// out socket error and goes through the normal reconnect-with-
    /// resume path instead of hanging `send`/`flush` forever.
    /// `Duration::ZERO` disables timeouts.
    pub io_timeout: Duration,
    /// Optional message sets to offer at handshake (see
    /// [`proto::feature`]); the server masks this down to what it
    /// supports. Defaults to everything this build speaks.
    pub features: u8,
    /// Fault-injection seam for the producer's socket I/O. Inert by
    /// default; tests hand in a seeded [`faults::FaultPlan`]'s handle to
    /// exercise connection resets and partial writes deterministically.
    pub faults: Faults,
}

impl Default for ProducerConfig {
    fn default() -> Self {
        ProducerConfig {
            producer_id: 0,
            spec_hash: proto::standard_spec_hash(),
            batch_events: 256,
            reconnect_attempts: 5,
            reconnect_backoff: Duration::from_millis(25),
            reconnect_backoff_cap: Duration::from_secs(1),
            reconnect_max_elapsed: Duration::ZERO,
            max_frame_len: proto::DEFAULT_MAX_FRAME_LEN,
            io_timeout: Duration::from_secs(30),
            features: proto::FEATURES_SUPPORTED,
            faults: Faults::none(),
        }
    }
}

/// Producer-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Events offered to [`TraceProducer::send`].
    pub events_offered: u64,
    /// Offered events skipped because the server had already
    /// acknowledged their sequence number (restart resume).
    pub events_skipped_resume: u64,
    /// Events written to the socket (resends included).
    pub events_sent: u64,
    /// Events acknowledged by the server.
    pub events_acked: u64,
    /// Events currently in flight (sent or buffered, not yet acked).
    pub events_inflight: u64,
    /// Batch frames written.
    pub batches_sent: u64,
    /// Acks received.
    pub acks_received: u64,
    /// Successful reconnects.
    pub reconnects: u64,
    /// Events rewritten after a reconnect (unacked at failure time).
    pub events_resent: u64,
    /// The server's most recent advertised headroom.
    pub server_headroom: u32,
}

impl MetricsSource for NetStats {
    fn collect_into(&self, out: &mut MetricsSnapshot) {
        // Exhaustive destructure: adding a NetStats field without
        // deciding its metric name breaks this build.
        let NetStats {
            events_offered,
            events_skipped_resume,
            events_sent,
            events_acked,
            events_inflight,
            batches_sent,
            acks_received,
            reconnects,
            events_resent,
            server_headroom,
        } = *self;
        out.push_counter("kojak_net_events_offered_total", events_offered);
        out.push_counter(
            "kojak_net_events_skipped_resume_total",
            events_skipped_resume,
        );
        out.push_counter("kojak_net_events_sent_total", events_sent);
        out.push_counter("kojak_net_events_acked_total", events_acked);
        out.push_counter("kojak_net_batches_sent_total", batches_sent);
        out.push_counter("kojak_net_acks_received_total", acks_received);
        out.push_counter("kojak_net_reconnects_total", reconnects);
        out.push_counter("kojak_net_events_resent_total", events_resent);
        out.push_gauge("kojak_net_events_inflight", events_inflight);
        out.push_gauge("kojak_net_server_headroom", u64::from(server_headroom));
    }
}

/// A batch written to the socket and awaiting its ack. Events are
/// retained as their wire encoding — `body` holds consecutive
/// `len u32 | event bytes` entries, exactly the EventBatch body layout,
/// and `offsets` marks where each entry starts — so shipping and
/// resending re-frame cached bytes instead of re-serializing, and a
/// partially acknowledged batch can be trimmed on an entry boundary.
#[derive(Debug, Clone)]
struct SentBatch {
    first_seq: u64,
    offsets: Vec<usize>,
    body: Vec<u8>,
}

impl SentBatch {
    fn count(&self) -> usize {
        self.offsets.len()
    }

    fn last_seq(&self) -> u64 {
        self.first_seq + self.count() as u64 - 1
    }

    /// The EventBatch frame payload for this batch.
    fn payload(&self) -> Vec<u8> {
        proto::event_batch_payload(self.first_seq, self.count() as u32, &self.body)
    }

    /// Drop the entries acknowledged through `high_water` (which the
    /// caller guarantees covers a proper, non-empty prefix). Returns how
    /// many entries were dropped.
    fn trim_acked(&mut self, high_water: u64) -> usize {
        let covered = (high_water - self.first_seq + 1) as usize;
        let cut = self.offsets[covered];
        self.body.drain(..cut);
        self.offsets.drain(..covered);
        for offset in &mut self.offsets {
            *offset -= cut;
        }
        self.first_seq = high_water + 1;
        covered
    }
}

/// A reconnecting producer connection to an [`crate::EngineServer`].
pub struct TraceProducer {
    addr: String,
    config: ProducerConfig,
    stream: Option<ProducerStream>,
    /// 1-based position of the last offered event == its sequence number.
    position: u64,
    /// High-water mark of acknowledged sequence numbers.
    acked: u64,
    /// Server-advertised window (events in flight) from the handshake.
    window: u32,
    /// Headroom from the latest ack.
    headroom: u32,
    /// Feature set negotiated at the latest handshake.
    features: u8,
    /// Entry offsets into `pending_body` — the unsent tail of the
    /// stream, already wire-encoded (see [`SentBatch`]).
    pending_offsets: Vec<usize>,
    pending_body: Vec<u8>,
    /// Shipped, unacknowledged batches, oldest first.
    unacked: VecDeque<SentBatch>,
    /// Monotone draw counter for the deterministic reconnect jitter:
    /// successive reconnect episodes draw fresh waits.
    backoff_draws: u64,
    stats: NetStats,
}

impl TraceProducer {
    /// Connect and handshake. On success the producer knows the server's
    /// last acknowledged sequence number for this `producer_id`:
    /// [`TraceProducer::resume_from`] events of a re-offered stream will
    /// be skipped instead of resent.
    pub fn connect(addr: impl Into<String>, config: ProducerConfig) -> Result<Self, NetError> {
        let addr = addr.into();
        let (stream, ack) = handshake(&addr, &config)?;
        Ok(TraceProducer {
            addr,
            position: 0,
            acked: ack.last_acked,
            window: ack.window,
            headroom: ack.window,
            features: ack.features,
            pending_offsets: Vec::new(),
            pending_body: Vec::new(),
            unacked: VecDeque::new(),
            backoff_draws: 0,
            stats: NetStats::default(),
            stream: Some(stream),
            config,
        })
    }

    /// The stream position (== sequence number) up to which the server
    /// has acknowledged this producer's events. A restarted producer
    /// re-offering its stream sees this many leading events skipped.
    pub fn resume_from(&self) -> u64 {
        self.acked
    }

    /// Producer-side counters.
    pub fn stats(&self) -> NetStats {
        let mut stats = self.stats;
        stats.events_inflight = self.inflight_events() as u64;
        stats.server_headroom = self.headroom;
        stats
    }

    /// The feature set negotiated at the latest handshake (see
    /// [`proto::feature`]).
    pub fn features(&self) -> u8 {
        self.features
    }

    /// Poll the server's live metric registry over the connection: the
    /// engine's merged metrics, the process-global eval-cache counters,
    /// and the server's own net-layer counters and stage histograms —
    /// exactly what [`crate::EngineServer::metrics`] returns locally.
    ///
    /// Requires [`proto::feature::INTROSPECT`] to have been negotiated
    /// ([`NetError::FeatureUnavailable`] otherwise). The pending batch is
    /// shipped first so the poll observes everything offered so far;
    /// acks arriving ahead of the report are processed normally. Socket
    /// failures surface directly — a poll is cheap to retry, so it does
    /// not go through reconnect-with-resume.
    pub fn introspect(&mut self) -> Result<MetricsSnapshot, NetError> {
        if self.features & proto::feature::INTROSPECT == 0 {
            return Err(NetError::FeatureUnavailable("introspect"));
        }
        self.ship_pending()?;
        let Some(stream) = self.stream.as_mut() else {
            return Err(NetError::Closed);
        };
        proto::write_message(stream, &Message::Introspect)?;
        loop {
            let Some(stream) = self.stream.as_mut() else {
                return Err(NetError::Closed);
            };
            match proto::read_message(stream, self.config.max_frame_len)? {
                Message::Ack(ack) => {
                    self.stats.acks_received += 1;
                    self.headroom = ack.headroom;
                    self.retire_acked(ack.high_water);
                }
                Message::MetricsReport(bytes) => {
                    return MetricsSnapshot::decode(&bytes).map_err(NetError::Snapshot)
                }
                other => {
                    return Err(NetError::UnexpectedMessage {
                        expected: "ack or metrics-report",
                        got: other.kind(),
                    })
                }
            }
        }
    }

    fn inflight_events(&self) -> usize {
        self.unacked.iter().map(|b| b.count()).sum()
    }

    /// The in-flight budget: the server's advertised window, tightened by
    /// its latest ack headroom, floored at one batch so the stream can
    /// always make progress (the next ack re-opens the window).
    fn inflight_budget(&self) -> usize {
        (self.window.min(self.headroom.max(1)) as usize).max(self.config.batch_events)
    }

    /// Offer the next event of the stream. Events already acknowledged by
    /// the server (restart resume) are skipped; otherwise the event joins
    /// the pending batch, and a full batch is shipped — **blocking** while
    /// the in-flight window is full (backpressure from a slow server
    /// propagates here instead of growing memory).
    pub fn send(&mut self, event: &TraceEvent) -> Result<(), NetError> {
        self.position += 1;
        self.stats.events_offered += 1;
        if self.position <= self.acked {
            self.stats.events_skipped_resume += 1;
            return Ok(());
        }
        self.pending_offsets.push(self.pending_body.len());
        proto::encode_batch_entry(&mut self.pending_body, event);
        if self.pending_offsets.len() >= self.config.batch_events.max(1) {
            self.ship_pending()?;
        }
        Ok(())
    }

    /// Ship the pending (possibly partial) batch, then block until every
    /// in-flight event is acknowledged. After `Ok`, the server has
    /// applied everything offered so far.
    pub fn flush(&mut self) -> Result<(), NetError> {
        self.ship_pending()?;
        while !self.unacked.is_empty() {
            self.read_ack()?;
        }
        Ok(())
    }

    /// Flush, say goodbye, and return the final counters. Waits for the
    /// server to close the connection, so on `Ok` the goodbye — and the
    /// engine flush riding on it — has been fully processed.
    pub fn close(mut self) -> Result<NetStats, NetError> {
        use std::io::Read;
        self.flush()?;
        if let Some(stream) = self.stream.as_mut() {
            proto::write_message(stream, &Message::Goodbye)?;
            let mut sink = [0u8; 64];
            while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
        }
        self.stream = None;
        Ok(self.stats())
    }

    fn ship_pending(&mut self) -> Result<(), NetError> {
        let pending = self.pending_offsets.len();
        if pending == 0 {
            return Ok(());
        }
        // Throttle: wait for acks while the window has no room for this
        // batch (as long as acks are owed; with nothing in flight the
        // budget floor always admits one batch).
        while !self.unacked.is_empty() && self.inflight_events() + pending > self.inflight_budget()
        {
            self.read_ack()?;
        }
        let batch = SentBatch {
            first_seq: self.position - pending as u64 + 1,
            offsets: std::mem::take(&mut self.pending_offsets),
            body: std::mem::take(&mut self.pending_body),
        };
        let frame = batch.payload();
        self.stats.events_sent += pending as u64;
        self.stats.batches_sent += 1;
        self.unacked.push_back(batch);
        self.write_or_reconnect(&frame)
    }

    /// Read one ack frame, retiring acknowledged batches; reconnects on
    /// socket failure.
    fn read_ack(&mut self) -> Result<(), NetError> {
        let message = loop {
            let Some(stream) = self.stream.as_mut() else {
                return Err(NetError::Closed);
            };
            match proto::read_message(stream, self.config.max_frame_len) {
                Ok(m) => break m,
                Err(e) if e.is_transient() => {
                    self.reconnect(e)?;
                    // The reconnect handshake may have acknowledged
                    // everything that was owed.
                    if self.unacked.is_empty() {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        };
        match message {
            Message::Ack(ack) => {
                self.stats.acks_received += 1;
                self.headroom = ack.headroom;
                self.retire_acked(ack.high_water);
                Ok(())
            }
            other => Err(NetError::UnexpectedMessage {
                expected: "ack",
                got: other.kind(),
            }),
        }
    }

    /// Drop retained batches the server has acknowledged up to
    /// `high_water` (trimming a partially covered batch).
    fn retire_acked(&mut self, high_water: u64) {
        if high_water <= self.acked {
            return;
        }
        self.acked = high_water;
        while let Some(front) = self.unacked.front_mut() {
            if front.last_seq() <= high_water {
                self.stats.events_acked += front.count() as u64;
                self.unacked.pop_front();
            } else if front.first_seq <= high_water {
                self.stats.events_acked += front.trim_acked(high_water) as u64;
                break;
            } else {
                break;
            }
        }
    }

    fn write_or_reconnect(&mut self, frame: &[u8]) -> Result<(), NetError> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(NetError::Closed);
        };
        match write_raw(stream, frame) {
            Ok(()) => Ok(()),
            // The failed frame is already retained in `unacked`:
            // reconnect resends everything still owed, this frame
            // included.
            Err(e) => self.reconnect(NetError::Io(e)),
        }
    }

    /// The next reconnect wait (see [`decorrelated_backoff`]): the
    /// monotone draw counter makes the schedule deterministic per
    /// producer while staying decorrelated across producers.
    fn next_backoff(&mut self, previous: Duration) -> Duration {
        self.backoff_draws += 1;
        decorrelated_backoff(
            self.config.producer_id,
            self.backoff_draws,
            previous,
            self.config.reconnect_backoff,
            self.config.reconnect_backoff_cap,
        )
    }

    /// Reconnect with jittered backoff under the configured attempt and
    /// elapsed-time budgets; on success, retire what the server's
    /// handshake says it already applied and resend the rest.
    fn reconnect(&mut self, first_failure: NetError) -> Result<(), NetError> {
        self.stream = None;
        let start = Instant::now();
        let budget = self.config.reconnect_max_elapsed;
        let mut last = first_failure;
        let mut backoff = self.config.reconnect_backoff;
        let mut attempts = 0u32;
        while attempts < self.config.reconnect_attempts {
            if !budget.is_zero() && start.elapsed() + backoff > budget {
                // Sleeping through the next wait would blow the time
                // budget: fail typed now rather than overshoot.
                break;
            }
            std::thread::sleep(backoff);
            backoff = self.next_backoff(backoff);
            attempts += 1;
            match handshake(&self.addr, &self.config) {
                Ok((mut stream, hello_ack)) => {
                    self.window = hello_ack.window;
                    self.headroom = hello_ack.window;
                    self.features = hello_ack.features;
                    self.retire_acked(hello_ack.last_acked);
                    match resend_all(&mut stream, &self.unacked) {
                        Ok(resent) => {
                            self.stats.events_resent += resent.0;
                            self.stats.events_sent += resent.0;
                            self.stats.batches_sent += resent.1;
                            self.stats.reconnects += 1;
                            self.stream = Some(stream);
                            return Ok(());
                        }
                        // The new socket died mid-resend: this attempt
                        // failed as a whole, try again.
                        Err(e) => last = NetError::Io(e),
                    }
                }
                // A refusal (spec mismatch, version skew, quarantine)
                // recurs on every attempt: surface it immediately.
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => last = e,
            }
        }
        Err(NetError::ReconnectFailed {
            attempts,
            elapsed: start.elapsed(),
            last: Box::new(last),
        })
    }
}

/// One step of the decorrelated-jitter reconnect backoff:
/// `min(cap, base + draw % (3 × previous − base))`, where `draw` is a
/// pure splitmix64 function of `(producer_id, draw_index)`.
///
/// Deterministic per producer (a failure schedule reproduces exactly
/// from the producer id), decorrelated across producers (no reconnect
/// stampede when a server restart cuts a fleet at once). A zero `cap`
/// means the 1 s default.
pub fn decorrelated_backoff(
    producer_id: u64,
    draw_index: u64,
    previous: Duration,
    base: Duration,
    cap: Duration,
) -> Duration {
    let cap = if cap.is_zero() {
        Duration::from_secs(1)
    } else {
        cap
    };
    let draw = faults::splitmix64(
        producer_id
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(draw_index),
    );
    let base_ns = base.as_nanos().min(u64::MAX as u128) as u64;
    let span_ns = (previous.as_nanos().min(u64::MAX as u128) as u64)
        .saturating_mul(3)
        .saturating_sub(base_ns);
    let wait_ns = base_ns.saturating_add(if span_ns == 0 { 0 } else { draw % span_ns });
    Duration::from_nanos(wait_ns).min(cap)
}

/// Rewrite every retained batch on a fresh connection (cached bytes, no
/// re-serialization); returns (events, batches) resent.
fn resend_all(
    stream: &mut ProducerStream,
    unacked: &VecDeque<SentBatch>,
) -> std::io::Result<(u64, u64)> {
    let mut events = 0u64;
    let mut batches = 0u64;
    for batch in unacked {
        write_raw(stream, &batch.payload())?;
        events += batch.count() as u64;
        batches += 1;
    }
    Ok((events, batches))
}

fn write_raw(stream: &mut ProducerStream, payload: &[u8]) -> std::io::Result<()> {
    proto::write_frame(stream, payload)
}

/// Connect with the configured timeout (resolving `addr` may yield
/// several socket addresses; the first that connects wins).
fn connect_stream(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    use std::io;
    if timeout.is_zero() {
        return TcpStream::connect(addr);
    }
    use std::net::ToSocketAddrs;
    let mut last = io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing");
    for sock_addr in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sock_addr, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// TCP connect + handshake; refusals come back typed.
fn handshake(
    addr: &str,
    config: &ProducerConfig,
) -> Result<(ProducerStream, proto::HelloAck), NetError> {
    use std::io::{Read, Write};
    let stream = connect_stream(addr, config.io_timeout)?;
    let _ = stream.set_nodelay(true);
    if !config.io_timeout.is_zero() {
        stream.set_read_timeout(Some(config.io_timeout))?;
        stream.set_write_timeout(Some(config.io_timeout))?;
    }
    let mut stream = FaultStream::new(stream, &config.faults);
    stream.write_all(&proto::encode_hello(&Hello {
        producer_id: config.producer_id,
        spec_hash: config.spec_hash,
        features: config.features,
    }))?;
    let mut reply = [0u8; proto::HELLO_ACK_LEN];
    stream.read_exact(&mut reply)?;
    let ack = proto::decode_hello_ack(&reply)?;
    match ack.status {
        proto::status::ACCEPTED => Ok((stream, ack)),
        proto::status::SPEC_MISMATCH => Err(NetError::SpecMismatch {
            client: config.spec_hash,
            server: ack.spec_hash,
        }),
        proto::status::UNSUPPORTED_PROTOCOL => {
            Err(NetError::UnsupportedProtocol(proto::PROTO_VERSION))
        }
        proto::status::QUARANTINED => Err(NetError::Quarantined),
        code => Err(NetError::Refused(code)),
    }
}
