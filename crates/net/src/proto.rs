//! The wire protocol: handshake, frames, and messages.
//!
//! Everything on the socket reuses the hand-rolled binary primitives of
//! [`online::wire`] (little-endian integers, `f64` bit patterns,
//! length-prefixed strings) and the event encoding of
//! [`TraceEvent::encode_wire`] — the exact codec the write-ahead log
//! already trusts. The network adds three layers on top:
//!
//! ## Handshake
//!
//! A producer opens the connection with a fixed-size hello:
//!
//! ```text
//! ┌───────────┬──────────┬────────────────┬───────────────┬────────────┐
//! │ "KJNP"    │ proto: u8│ producer_id: u64│ spec_hash: u64│ features: u8│
//! └───────────┴──────────┴────────────────┴───────────────┴────────────┘
//! ```
//!
//! and the server answers with a fixed-size reply carrying its own spec
//! hash, the producer's **last acknowledged sequence number** (the resume
//! point after a producer restart), the in-flight **window**, and the
//! negotiated feature set:
//!
//! ```text
//! ┌────────┬──────────┬───────────┬──────────────┬───────────────┬────────────┬────────────┐
//! │ "KJNP" │ proto: u8│ status: u8│ spec_hash: u64│ last_acked: u64│ window: u32│ features: u8│
//! └────────┴──────────┴───────────┴──────────────┴───────────────┴────────────┴────────────┘
//! ```
//!
//! A spec-hash mismatch is refused at this point with a typed
//! [`NetError::SpecMismatch`]: a producer built against one property
//! suite must not silently feed a server evaluating another.
//!
//! ## Feature negotiation
//!
//! The trailing byte of each hello direction is a **feature bitmask**
//! (see [`feature`]): the producer offers the optional message sets it
//! can speak, the server echoes the intersection with what it supports
//! ([`FEATURES_SUPPORTED`]). Unknown bits are *masked, not refused* — a
//! newer peer degrades gracefully instead of tripping a hard version
//! mismatch. Only a change to the **core** message set (handshake,
//! event batches, acks) bumps [`PROTO_VERSION`]; optional additions like
//! [`Message::Introspect`] ride on a feature bit. The server reads the
//! version-bearing 21-byte prefix first ([`HELLO_PREFIX_LEN`]) and only
//! consumes the features byte from a version-2 peer, so a v1 producer is
//! refused promptly instead of deadlocking on a byte it never sends.
//!
//! ## Frames
//!
//! After the handshake both directions speak length-prefixed,
//! CRC-32-checksummed frames — the same layout as a WAL frame:
//!
//! ```text
//! ┌────────────┬─────────────┬─────────┐
//! │ len: u32 LE│ crc32: u32  │ payload │
//! └────────────┴─────────────┴─────────┘
//! ```
//!
//! The declared length is checked against a configurable cap *before*
//! any allocation ([`NetError::FrameTooLarge`]), so a corrupt or hostile
//! prefix cannot balloon memory.
//!
//! ## Messages
//!
//! A frame payload is one [`Message`], tagged by its first byte:
//! `EventBatch` (producer → server: a contiguous run of sequenced
//! events), `Ack` (server → producer: high-water mark + queue headroom —
//! the backpressure signal), or `Goodbye` (producer → server: graceful
//! end of stream).

use crate::error::NetError;
use asl_core::check::CheckedSpec;
use online::wire::{self, Reader, WireError};
use online::TraceEvent;
use std::io::{Read, Write};

/// Magic prefix opening both handshake directions.
pub const NET_MAGIC: &[u8; 4] = b"KJNP";
/// Protocol version. Bump on any **core** handshake/frame/message layout
/// change; both ends refuse unknown versions with a typed error. Optional
/// message sets are negotiated via [`feature`] bits instead. Version 2
/// appended the feature byte to both hello directions.
pub const PROTO_VERSION: u8 = 2;
/// Byte length of the producer hello.
pub const HELLO_LEN: usize = 22;
/// Byte length of the version-bearing hello prefix (everything before
/// the v2 feature byte — exactly the v1 hello). The server reads this
/// much first, so a v1 producer gets a prompt refusal instead of a stall
/// waiting for a feature byte it never sends.
pub const HELLO_PREFIX_LEN: usize = 21;
/// Byte length of the server hello reply.
pub const HELLO_ACK_LEN: usize = 27;
/// Default cap on a frame's payload length.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;

/// Optional message-set bits exchanged (and intersected) at handshake.
///
/// A peer sets a bit to offer the message set; the server's reply
/// carries the negotiated intersection. Unknown bits are masked off, not
/// refused, so future additions stay backward compatible.
pub mod feature {
    /// The observability message set: [`super::Message::Introspect`]
    /// (producer → server poll) answered by
    /// [`super::Message::MetricsReport`] (an encoded
    /// [`obs::MetricsSnapshot`]).
    pub const INTROSPECT: u8 = 1;
}

/// Every feature bit this build understands — the server masks a
/// producer's offer down to this set.
pub const FEATURES_SUPPORTED: u8 = feature::INTROSPECT;

/// Handshake status codes (byte 6 of the server reply).
pub mod status {
    /// Connection accepted; stream events.
    pub const ACCEPTED: u8 = 0;
    /// Producer and server evaluate different property suites.
    pub const SPEC_MISMATCH: u8 = 1;
    /// The producer's protocol version is not supported.
    pub const UNSUPPORTED_PROTOCOL: u8 = 2;
    /// The producer is quarantined (too many protocol errors on its
    /// previous connections); its handshakes are refused until the
    /// operator clears it server-side.
    pub const QUARANTINED: u8 = 3;
}

// ---------------------------------------------------------- spec hash ----

/// 64-bit FNV-1a over the canonical pretty-printing of the suite, with
/// the event-layout version mixed in: two endpoints agree on a hash only
/// when they evaluate the same properties *and* frame events the same
/// way. Exchanged at handshake; a mismatch refuses the connection.
pub fn spec_hash(spec: &CheckedSpec) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&[online::WIRE_VERSION]);
    eat(asl_core::pretty::print_spec(&spec.spec).as_bytes());
    h
}

/// [`spec_hash`] of the standard suite — the default both endpoints use
/// when no custom suite is configured.
pub fn standard_spec_hash() -> u64 {
    use std::sync::OnceLock;
    static HASH: OnceLock<u64> = OnceLock::new();
    *HASH.get_or_init(|| spec_hash(&cosy::suite::standard_suite()))
}

// ---------------------------------------------------------- handshake ----

/// The producer's opening bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Producer-chosen stable identity (the resume key).
    pub producer_id: u64,
    /// Hash of the suite the producer was built against.
    pub spec_hash: u64,
    /// Optional message sets the producer offers (see [`feature`]).
    pub features: u8,
}

/// Encode a producer hello.
pub fn encode_hello(hello: &Hello) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HELLO_LEN);
    buf.extend_from_slice(NET_MAGIC);
    wire::put_u8(&mut buf, PROTO_VERSION);
    wire::put_u64(&mut buf, hello.producer_id);
    wire::put_u64(&mut buf, hello.spec_hash);
    wire::put_u8(&mut buf, hello.features);
    buf
}

/// Decode the version-bearing prefix of a producer hello — everything
/// **except** the trailing v2 feature byte, which the server reads (and
/// fills in) only after seeing a version that has one. The protocol
/// version is returned alongside so the server can refuse politely (with
/// a reply) rather than drop the connection.
pub fn decode_hello_prefix(bytes: &[u8; HELLO_PREFIX_LEN]) -> Result<(u8, Hello), NetError> {
    if &bytes[..4] != NET_MAGIC {
        return Err(NetError::BadMagic(bytes[..4].try_into().unwrap()));
    }
    let mut r = Reader::new(&bytes[4..]);
    let version = r.get_u8("protocol version").map_err(NetError::Wire)?;
    let hello = Hello {
        producer_id: r.get_u64("producer id").map_err(NetError::Wire)?,
        spec_hash: r.get_u64("spec hash").map_err(NetError::Wire)?,
        features: 0,
    };
    Ok((version, hello))
}

/// Decode a complete v2 producer hello (prefix + feature byte).
pub fn decode_hello(bytes: &[u8; HELLO_LEN]) -> Result<(u8, Hello), NetError> {
    let prefix: &[u8; HELLO_PREFIX_LEN] = bytes[..HELLO_PREFIX_LEN].try_into().unwrap();
    let (version, mut hello) = decode_hello_prefix(prefix)?;
    hello.features = bytes[HELLO_PREFIX_LEN];
    Ok((version, hello))
}

/// The server's handshake reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAck {
    /// One of the [`status`] codes.
    pub status: u8,
    /// Hash of the suite the server evaluates.
    pub spec_hash: u64,
    /// Highest sequence number of this producer the server has applied
    /// and acknowledged — the producer resumes from the next one.
    pub last_acked: u64,
    /// Maximum events the producer should keep in flight (unacked).
    pub window: u32,
    /// Negotiated feature set: the producer's offer intersected with
    /// [`FEATURES_SUPPORTED`].
    pub features: u8,
}

/// Encode a server hello reply.
pub fn encode_hello_ack(ack: &HelloAck) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HELLO_ACK_LEN);
    buf.extend_from_slice(NET_MAGIC);
    wire::put_u8(&mut buf, PROTO_VERSION);
    wire::put_u8(&mut buf, ack.status);
    wire::put_u64(&mut buf, ack.spec_hash);
    wire::put_u64(&mut buf, ack.last_acked);
    wire::put_u32(&mut buf, ack.window);
    wire::put_u8(&mut buf, ack.features);
    buf
}

/// Decode a server hello reply.
pub fn decode_hello_ack(bytes: &[u8; HELLO_ACK_LEN]) -> Result<HelloAck, NetError> {
    if &bytes[..4] != NET_MAGIC {
        return Err(NetError::BadMagic(bytes[..4].try_into().unwrap()));
    }
    let mut r = Reader::new(&bytes[4..]);
    let version = r.get_u8("protocol version").map_err(NetError::Wire)?;
    if version != PROTO_VERSION {
        return Err(NetError::UnsupportedProtocol(version));
    }
    Ok(HelloAck {
        status: r.get_u8("handshake status").map_err(NetError::Wire)?,
        spec_hash: r.get_u64("spec hash").map_err(NetError::Wire)?,
        last_acked: r.get_u64("last acked").map_err(NetError::Wire)?,
        window: r.get_u32("window").map_err(NetError::Wire)?,
        features: r.get_u8("negotiated features").map_err(NetError::Wire)?,
    })
}

// ----------------------------------------------------------- messages ----

/// A batch acknowledgement — the backpressure signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Every event with sequence number ≤ this has been applied (or
    /// rejected with a counted [`online::IngestError`]) by the engine.
    pub high_water: u64,
    /// How many more events the server currently wants in flight: its
    /// configured window minus the events it has accepted but not yet
    /// flushed through analysis. Producers throttle on this instead of
    /// the server buffering unboundedly.
    pub headroom: u32,
}

/// One frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Producer → server: events with consecutive sequence numbers
    /// `first_seq, first_seq+1, …`.
    EventBatch {
        /// Sequence number of the first event.
        first_seq: u64,
        /// The events, in sequence order.
        events: Vec<TraceEvent>,
    },
    /// Server → producer: applied high-water mark + queue headroom.
    Ack(Ack),
    /// Producer → server: graceful end of stream.
    Goodbye,
    /// Producer → server: poll the server's live metric registry. Only
    /// valid when [`feature::INTROSPECT`] was negotiated; answered with a
    /// [`Message::MetricsReport`].
    Introspect,
    /// Server → producer: an encoded [`obs::MetricsSnapshot`] (the bytes
    /// of [`obs::MetricsSnapshot::encode`]; kept opaque at this layer so
    /// the frame codec does not depend on the snapshot codec's failure
    /// modes — the client decodes, mapping errors to
    /// [`NetError::Snapshot`]).
    MetricsReport(Vec<u8>),
}

const KIND_EVENT_BATCH: u8 = 1;
const KIND_ACK: u8 = 2;
const KIND_GOODBYE: u8 = 3;
const KIND_INTROSPECT: u8 = 4;
const KIND_METRICS_REPORT: u8 = 5;

impl Message {
    /// Short message-kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::EventBatch { .. } => "event-batch",
            Message::Ack(_) => "ack",
            Message::Goodbye => "goodbye",
            Message::Introspect => "introspect",
            Message::MetricsReport(_) => "metrics-report",
        }
    }
}

/// Append one `len u32 | encoded event` entry of an EventBatch body.
/// Producers encode each event exactly once with this and retain the
/// bytes until acknowledged, so a resend re-frames cached bytes instead
/// of re-serializing.
pub fn encode_batch_entry(body: &mut Vec<u8>, event: &TraceEvent) {
    let len_at = body.len();
    wire::put_u32(body, 0); // back-patched below
    event.encode_wire(body);
    let len = (body.len() - len_at - 4) as u32;
    body[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Build a full EventBatch frame payload from a pre-encoded body of
/// `count` [`encode_batch_entry`] entries.
pub fn event_batch_payload(first_seq: u64, count: u32, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(13 + body.len());
    wire::put_u8(&mut payload, KIND_EVENT_BATCH);
    wire::put_u64(&mut payload, first_seq);
    wire::put_u32(&mut payload, count);
    payload.extend_from_slice(body);
    payload
}

/// Append the encoding of `message` to `buf`.
pub fn encode_message(buf: &mut Vec<u8>, message: &Message) {
    match message {
        Message::EventBatch { first_seq, events } => {
            wire::put_u8(buf, KIND_EVENT_BATCH);
            wire::put_u64(buf, *first_seq);
            wire::put_u32(buf, events.len() as u32);
            for event in events {
                encode_batch_entry(buf, event);
            }
        }
        Message::Ack(ack) => {
            wire::put_u8(buf, KIND_ACK);
            wire::put_u64(buf, ack.high_water);
            wire::put_u32(buf, ack.headroom);
        }
        Message::Goodbye => wire::put_u8(buf, KIND_GOODBYE),
        Message::Introspect => wire::put_u8(buf, KIND_INTROSPECT),
        Message::MetricsReport(bytes) => {
            wire::put_u8(buf, KIND_METRICS_REPORT);
            wire::put_u32(buf, bytes.len() as u32);
            buf.extend_from_slice(bytes);
        }
    }
}

/// Decode one frame payload. The whole payload must be consumed; typed
/// errors on anything else — a socket feeds this arbitrary bytes.
pub fn decode_message(payload: &[u8]) -> Result<Message, WireError> {
    decode_message_with_pool(payload, &mut Vec::new())
}

/// [`decode_message`] with a recycled-vector pool: an `EventBatch`
/// decodes into a vector popped from `pool` (allocation-free once warm)
/// instead of a fresh one. See [`DecodeArena`] for the owning handle.
fn decode_message_with_pool(
    payload: &[u8],
    pool: &mut Vec<Vec<TraceEvent>>,
) -> Result<Message, WireError> {
    let mut r = Reader::new(payload);
    let message = match r.get_u8("message kind")? {
        KIND_EVENT_BATCH => {
            let first_seq = r.get_u64("first sequence")?;
            let count = r.get_u32("event count")? as usize;
            // Preallocation guard: a wire-encoded event is ≥ 2 bytes plus
            // its 4-byte length prefix, so `count` can never legitimately
            // exceed remaining/6 — a hostile count is caught by the
            // bounds-checked reads below, and must not balloon capacity.
            let mut events = pool.pop().unwrap_or_default();
            events.reserve(count.min(r.remaining() / 6 + 1));
            for _ in 0..count {
                let len = r.get_u32("event length")? as usize;
                let bytes = r.get_bytes(len, "event payload")?;
                events.push(TraceEvent::decode_wire(bytes)?);
            }
            Message::EventBatch { first_seq, events }
        }
        KIND_ACK => Message::Ack(Ack {
            high_water: r.get_u64("ack high water")?,
            headroom: r.get_u32("ack headroom")?,
        }),
        KIND_GOODBYE => Message::Goodbye,
        KIND_INTROSPECT => Message::Introspect,
        KIND_METRICS_REPORT => {
            let len = r.get_u32("metrics report length")? as usize;
            Message::MetricsReport(r.get_bytes(len, "metrics report payload")?.to_vec())
        }
        code => {
            return Err(WireError::BadEnum {
                what: "message kind",
                code,
            })
        }
    };
    r.finish()?;
    Ok(message)
}

// ------------------------------------------------------------- frames ----

/// Write `payload` as one frame (len + crc32 + payload, a single write).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    wire::put_u32(&mut frame, payload.len() as u32);
    wire::put_u32(&mut frame, wire::crc32(payload));
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Encode and write `message` as one frame.
pub fn write_message(w: &mut impl Write, message: &Message) -> std::io::Result<()> {
    let mut payload = Vec::with_capacity(64);
    encode_message(&mut payload, message);
    write_frame(w, &payload)
}

/// Read one frame payload, verifying length cap and checksum before
/// anything downstream sees the bytes.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Vec<u8>, NetError> {
    let mut payload = Vec::new();
    read_frame_into(r, max_len, &mut payload)?;
    Ok(payload)
}

/// [`read_frame`] into a caller-owned buffer (cleared first): the hot
/// path reuses one buffer per connection instead of allocating per
/// frame. The length cap is enforced *before* the buffer grows, so a
/// hostile prefix still cannot balloon memory.
pub fn read_frame_into(
    r: &mut impl Read,
    max_len: u32,
    payload: &mut Vec<u8>,
) -> Result<(), NetError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > max_len {
        return Err(NetError::FrameTooLarge { len, max: max_len });
    }
    payload.clear();
    payload.resize(len as usize, 0);
    r.read_exact(payload)?;
    let actual = wire::crc32(payload);
    if actual != crc {
        return Err(NetError::Checksum {
            expected: crc,
            actual,
        });
    }
    Ok(())
}

/// A per-connection decode arena: one payload buffer reused across
/// frames, plus a small pool of recycled event vectors, so the server's
/// decode → handle path performs no per-frame (let alone per-event)
/// buffer allocations once warm. The handler hands an `EventBatch`'s
/// vector back through [`DecodeArena::recycle`] after ingesting it.
#[derive(Debug, Default)]
pub struct DecodeArena {
    payload: Vec<u8>,
    pool: Vec<Vec<TraceEvent>>,
}

/// Recycled event vectors kept per arena; beyond this, returned vectors
/// are simply dropped (one in flight is the norm — the handler recycles
/// before the next frame is read).
const ARENA_POOL_CAP: usize = 4;

impl DecodeArena {
    /// A fresh arena (buffers grow on first use).
    pub fn new() -> DecodeArena {
        DecodeArena::default()
    }

    /// Read one frame into the arena's payload buffer (see
    /// [`read_frame_into`]).
    pub fn read_frame(&mut self, r: &mut impl Read, max_len: u32) -> Result<(), NetError> {
        read_frame_into(r, max_len, &mut self.payload)
    }

    /// Decode the last frame read by [`DecodeArena::read_frame`]. An
    /// `EventBatch` decodes into a recycled vector from the pool.
    pub fn decode(&mut self) -> Result<Message, WireError> {
        let payload = std::mem::take(&mut self.payload);
        let result = decode_message_with_pool(&payload, &mut self.pool);
        self.payload = payload;
        result
    }

    /// Return an `EventBatch`'s event vector for reuse by a later decode.
    pub fn recycle(&mut self, mut events: Vec<TraceEvent>) {
        if self.pool.len() < ARENA_POOL_CAP {
            events.clear();
            self.pool.push(events);
        }
    }
}

/// Read one frame and decode its [`Message`].
pub fn read_message(r: &mut impl Read, max_len: u32) -> Result<Message, NetError> {
    let payload = read_frame(r, max_len)?;
    decode_message(&payload).map_err(NetError::Wire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use online::RunKey;

    #[test]
    fn hello_roundtrip_and_refusals() {
        let hello = Hello {
            producer_id: 7,
            spec_hash: 0xdead_beef_cafe_f00d,
            features: feature::INTROSPECT,
        };
        let bytes = encode_hello(&hello);
        assert_eq!(bytes.len(), HELLO_LEN);
        let (version, back) = decode_hello(&bytes.try_into().unwrap()).unwrap();
        assert_eq!(version, PROTO_VERSION);
        assert_eq!(back, hello);

        let mut bad = encode_hello(&hello);
        bad[..4].copy_from_slice(b"HTTP");
        assert!(matches!(
            decode_hello(&bad.try_into().unwrap()),
            Err(NetError::BadMagic(m)) if &m == b"HTTP"
        ));
    }

    #[test]
    fn hello_prefix_is_exactly_the_v1_hello() {
        // The prefix decode sees everything but the feature byte — the
        // bytes a v1 producer sends. The server relies on this to refuse
        // v1 hellos without waiting for a 22nd byte.
        let hello = Hello {
            producer_id: 9,
            spec_hash: 77,
            features: feature::INTROSPECT,
        };
        let bytes = encode_hello(&hello);
        let prefix: [u8; HELLO_PREFIX_LEN] = bytes[..HELLO_PREFIX_LEN].try_into().unwrap();
        let (version, decoded) = decode_hello_prefix(&prefix).unwrap();
        assert_eq!(version, PROTO_VERSION);
        assert_eq!(decoded.producer_id, 9);
        assert_eq!(decoded.spec_hash, 77);
        assert_eq!(decoded.features, 0, "prefix carries no features");
    }

    #[test]
    fn hello_ack_roundtrip() {
        let ack = HelloAck {
            status: status::ACCEPTED,
            spec_hash: 42,
            last_acked: 1000,
            window: 4096,
            features: feature::INTROSPECT,
        };
        let bytes = encode_hello_ack(&ack);
        assert_eq!(bytes.len(), HELLO_ACK_LEN);
        assert_eq!(decode_hello_ack(&bytes.try_into().unwrap()).unwrap(), ack);

        let mut skewed = encode_hello_ack(&ack);
        skewed[4] = 99;
        assert!(matches!(
            decode_hello_ack(&skewed.try_into().unwrap()),
            Err(NetError::UnsupportedProtocol(99))
        ));
    }

    #[test]
    fn message_roundtrip() {
        let messages = [
            Message::EventBatch {
                first_seq: 17,
                events: vec![
                    TraceEvent::RunFinished { run: RunKey(1) },
                    TraceEvent::RunFinished { run: RunKey(2) },
                ],
            },
            Message::Ack(Ack {
                high_water: 18,
                headroom: 512,
            }),
            Message::Goodbye,
            Message::Introspect,
            Message::MetricsReport(vec![0xab; 37]),
        ];
        for message in &messages {
            let mut buf = Vec::new();
            encode_message(&mut buf, message);
            assert_eq!(
                &decode_message(&buf).unwrap(),
                message,
                "{}",
                message.kind()
            );
        }
    }

    #[test]
    fn frame_roundtrip_checksum_and_cap() {
        let mut socket = Vec::new();
        write_message(&mut socket, &Message::Goodbye).unwrap();
        let mut cursor = &socket[..];
        assert_eq!(
            read_message(&mut cursor, DEFAULT_MAX_FRAME_LEN).unwrap(),
            Message::Goodbye
        );

        // Flip a payload byte: checksum catches it.
        let mut bent = socket.clone();
        let last = bent.len() - 1;
        bent[last] ^= 0xff;
        assert!(matches!(
            read_message(&mut &bent[..], DEFAULT_MAX_FRAME_LEN),
            Err(NetError::Checksum { .. })
        ));

        // A hostile length prefix is refused before allocation.
        let mut huge = socket;
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_message(&mut &huge[..], DEFAULT_MAX_FRAME_LEN),
            Err(NetError::FrameTooLarge { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn hostile_event_count_does_not_balloon_capacity() {
        // A batch declaring u32::MAX events with an empty body must fail
        // typed without attempting a u32::MAX-capacity allocation.
        let mut payload = Vec::new();
        wire::put_u8(&mut payload, 1);
        wire::put_u64(&mut payload, 1);
        wire::put_u32(&mut payload, u32::MAX);
        assert!(matches!(
            decode_message(&payload),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn spec_hash_separates_suites() {
        use asl_core::check::check;
        let standard = standard_spec_hash();
        assert_eq!(standard, spec_hash(&cosy::suite::standard_suite()));
        let tiny = check(&asl_core::parser::parse("").unwrap()).unwrap();
        assert_ne!(standard, spec_hash(&tiny));
    }
}
