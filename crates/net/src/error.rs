//! The typed failure hierarchy of the network layer.

use online::WireError;
use std::fmt;
use std::io;

/// Any failure of the framed TCP protocol — connecting, handshaking,
/// framing, or decoding. Everything a socket can feed us is attacker-ish
/// bytes, so every malformed input maps to a variant here; nothing panics.
#[derive(Debug)]
pub enum NetError {
    /// An underlying socket operation failed.
    Io(io::Error),
    /// A frame payload (or the handshake) did not decode.
    Wire(WireError),
    /// A frame's payload does not match its CRC-32 checksum.
    Checksum {
        /// Checksum the frame header declared.
        expected: u32,
        /// Checksum of the bytes actually received.
        actual: u32,
    },
    /// A frame header declared a length beyond the configured cap — the
    /// frame is refused *before* any allocation, so a corrupt or hostile
    /// length prefix cannot balloon memory.
    FrameTooLarge {
        /// Declared payload length.
        len: u32,
        /// Configured maximum.
        max: u32,
    },
    /// The peer did not open with the protocol magic — not a kojak
    /// endpoint (or a desynchronized stream).
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    UnsupportedProtocol(u8),
    /// The server evaluates a different property suite than the producer
    /// was built against; analysis results would not mean what the
    /// producer thinks, so the connection is refused at handshake.
    SpecMismatch {
        /// The producer's spec hash.
        client: u64,
        /// The server's spec hash.
        server: u64,
    },
    /// The server refused the handshake with a status code this build
    /// does not recognize.
    Refused(u8),
    /// The peer sent a message kind that is invalid in the current
    /// protocol state (e.g. an ack flowing producer→server).
    UnexpectedMessage {
        /// What the state machine could accept.
        expected: &'static str,
        /// What arrived.
        got: &'static str,
    },
    /// The engine behind the server refused a whole batch (e.g. a WAL
    /// append failure on a durable engine): nothing from the failing
    /// event on was applied, so the batch was **not** acknowledged and
    /// the connection is dropped — the producer's reconnect resends it.
    Engine(engine::EngineError),
    /// An optional message set was used without having been negotiated
    /// at handshake (e.g. an introspect poll against a peer that masked
    /// the [`crate::proto::feature::INTROSPECT`] bit off).
    FeatureUnavailable(&'static str),
    /// A metrics report's payload did not decode as an
    /// [`obs::MetricsSnapshot`].
    Snapshot(obs::SnapshotDecodeError),
    /// The connection (or server) is closed.
    Closed,
    /// The server quarantined this producer (too many protocol errors on
    /// its connections) and refuses its handshakes. Reconnecting will not
    /// help; the operator must clear the quarantine server-side.
    Quarantined,
    /// Reconnecting gave up — the configured attempt or elapsed-time
    /// budget ran out.
    ReconnectFailed {
        /// Attempts made.
        attempts: u32,
        /// Wall-clock time spent reconnecting (including backoff sleeps).
        elapsed: std::time::Duration,
        /// The failure of the final attempt.
        last: Box<NetError>,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Wire(e) => write!(f, "frame payload malformed: {e}"),
            NetError::Checksum { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: declared {expected:#010x}, computed {actual:#010x}"
                )
            }
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            NetError::BadMagic(m) => write!(
                f,
                "peer is not speaking the kojak protocol (opened with {m:02x?})"
            ),
            NetError::UnsupportedProtocol(v) => write!(f, "unsupported protocol version {v}"),
            NetError::SpecMismatch { client, server } => write!(
                f,
                "property-suite mismatch: producer spec {client:#018x}, server spec {server:#018x}"
            ),
            NetError::Refused(code) => {
                write!(f, "server refused the handshake with unknown status {code}")
            }
            NetError::UnexpectedMessage { expected, got } => {
                write!(f, "unexpected {got} message (expected {expected})")
            }
            NetError::Engine(e) => write!(f, "engine refused the batch un-applied: {e}"),
            NetError::FeatureUnavailable(what) => {
                write!(f, "the {what} feature was not negotiated at handshake")
            }
            NetError::Snapshot(e) => write!(f, "metrics report malformed: {e}"),
            NetError::Closed => write!(f, "connection is closed"),
            NetError::Quarantined => {
                write!(f, "server has quarantined this producer")
            }
            NetError::ReconnectFailed {
                attempts,
                elapsed,
                last,
            } => {
                write!(
                    f,
                    "gave up reconnecting after {attempts} attempt(s) over {elapsed:?}: {last}"
                )
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::Engine(e) => Some(e),
            NetError::Snapshot(e) => Some(e),
            NetError::ReconnectFailed { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl NetError {
    /// True for failures a reconnect could plausibly heal (socket-level
    /// trouble), false for protocol-level refusals that would recur on
    /// every attempt (spec mismatch, version skew, malformed peer).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NetError::Io(_) | NetError::Closed | NetError::Checksum { .. }
        )
    }
}
