//! Dead-declaration lints: unused constants, helper functions and types.
//!
//! The type rule is deliberately *bidirectional*: a class counts as used
//! when it is reachable from any type annotation (parameter, `LET`,
//! constant, function return) **or** when it is connected to a used class
//! through an attribute or the inheritance chain — in either direction.
//! The root container of a data model (e.g. the paper's `Program`, which
//! holds `ProgVersion`s but is named by no property parameter) must not
//! be flagged; only fully isolated declarations are dead.

use super::{walk_expr, LintCx, LintRule};
use crate::Finding;
use asl_core::ast::{Expr, ExprKind, Specification, TypeExprKind};
use asl_core::types::Type;
use std::collections::HashSet;

/// Who owns an expression body, for self-reference accounting.
#[derive(Clone, Copy, PartialEq)]
enum Owner<'a> {
    Const(&'a str),
    Func(&'a str),
    Prop(&'a str),
}

/// Visit every expression body of the spec with its owning declaration.
fn for_each_body<'s>(spec: &'s Specification, f: &mut impl FnMut(Owner<'s>, &'s Expr)) {
    for c in &spec.constants {
        f(Owner::Const(&c.name.name), &c.value);
    }
    for fun in &spec.functions {
        f(Owner::Func(&fun.name.name), &fun.body);
    }
    for p in &spec.properties {
        let owner = Owner::Prop(&p.name.name);
        for l in &p.lets {
            f(owner, &l.value);
        }
        for c in &p.conditions {
            f(owner, &c.expr);
        }
        for arm in p.confidence.arms.iter().chain(p.severity.arms.iter()) {
            f(owner, &arm.expr);
        }
    }
}

/// `unused-constant`: a global constant no expression ever reads.
pub struct UnusedConstant;

impl LintRule for UnusedConstant {
    fn name(&self) -> &'static str {
        "unused-constant"
    }

    fn description(&self) -> &'static str {
        "global constant that no expression references"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        let spec = &cx.spec.spec;
        let mut used: HashSet<&str> = HashSet::new();
        for_each_body(spec, &mut |owner, body| {
            walk_expr(body, &mut |e| {
                if let ExprKind::Var(n) = &e.kind {
                    if owner != Owner::Const(n.as_str()) && spec.constant(n).is_some() {
                        used.insert(n.as_str());
                    }
                }
            });
        });
        for c in &spec.constants {
            if !used.contains(c.name.name.as_str()) {
                out.push(Finding {
                    rule: self.name(),
                    message: format!("constant `{}` is never referenced", c.name.name),
                    span: c.name.span,
                    owner: format!("constant {}", c.name.name),
                    ..Finding::default()
                });
            }
        }
    }
}

/// `unused-function`: a helper function nothing calls (a function whose
/// only caller is itself is equally dead).
pub struct UnusedFunction;

impl LintRule for UnusedFunction {
    fn name(&self) -> &'static str {
        "unused-function"
    }

    fn description(&self) -> &'static str {
        "helper function never called from outside its own definition"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        let spec = &cx.spec.spec;
        let mut called: HashSet<&str> = HashSet::new();
        let mut self_called: HashSet<&str> = HashSet::new();
        for_each_body(spec, &mut |owner, body| {
            walk_expr(body, &mut |e| {
                if let ExprKind::Call(name, _) = &e.kind {
                    if spec.function(&name.name).is_some() {
                        if owner == Owner::Func(name.name.as_str()) {
                            self_called.insert(name.name.as_str());
                        } else {
                            called.insert(name.name.as_str());
                        }
                    }
                }
            });
        });
        for f in &spec.functions {
            let name = f.name.name.as_str();
            if called.contains(name) {
                continue;
            }
            let message = if self_called.contains(name) {
                format!("helper function `{name}` is only called from its own definition")
            } else {
                format!("helper function `{name}` is never called")
            };
            out.push(Finding {
                rule: self.name(),
                message,
                span: f.name.span,
                owner: format!("function {name}"),
                ..Finding::default()
            });
        }
    }
}

/// `unused-type`: a class or enum connected to nothing.
pub struct UnusedType;

impl UnusedType {
    /// Named class/enum inside a semantic type, looking through `setof`.
    fn named(t: &Type) -> Option<&str> {
        match t {
            Type::Class(n) | Type::Enum(n) => Some(n),
            Type::Set(inner) => Self::named(inner),
            _ => None,
        }
    }
}

impl LintRule for UnusedType {
    fn name(&self) -> &'static str {
        "unused-type"
    }

    fn description(&self) -> &'static str {
        "class or enum not connected to any property, function, constant or used type"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        let spec = &cx.spec.spec;
        let model = cx.model();
        let mut used: HashSet<String> = HashSet::new();

        // Anchors: every syntactic type annotation in the spec.
        let mut anchor = |kind: &TypeExprKind| {
            let (TypeExprKind::Named(n) | TypeExprKind::Setof(n)) = kind;
            if model.classes.contains_key(n) || model.enums.contains_key(n) {
                used.insert(n.clone());
            }
        };
        for c in &spec.constants {
            anchor(&c.ty.kind);
        }
        for f in &spec.functions {
            anchor(&f.ret_ty.kind);
            for p in &f.params {
                anchor(&p.ty.kind);
            }
        }
        for p in &spec.properties {
            for param in &p.params {
                anchor(&param.ty.kind);
            }
            for l in &p.lets {
                anchor(&l.ty.kind);
            }
        }

        // An enum is anchored by any reference to one of its variants.
        for_each_body(spec, &mut |_, body| {
            walk_expr(body, &mut |e| {
                if let ExprKind::Var(n) = &e.kind {
                    if let Some(owner) = model.variant_owner.get(n) {
                        used.insert(owner.clone());
                    }
                }
            });
        });

        // Grow to a fixpoint along attribute and inheritance edges, in
        // both directions: a used class marks its attribute types and its
        // whole inheritance chain; a class holding an attribute of a used
        // type is a live container and is marked too.
        loop {
            let mut grew = false;
            for (cname, ci) in &model.classes {
                let class_used = used.contains(cname);
                for a in &ci.own_attrs {
                    if let Some(n) = Self::named(&a.ty) {
                        if class_used && used.insert(n.to_string()) {
                            grew = true;
                        }
                        if !class_used && used.contains(n) && used.insert(cname.clone()) {
                            grew = true;
                        }
                    }
                }
                if let Some(base) = &ci.base {
                    if used.contains(cname) && used.insert(base.clone()) {
                        grew = true;
                    }
                    if used.contains(base) && used.insert(cname.clone()) {
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }

        for c in &spec.classes {
            if !used.contains(&c.name.name) {
                out.push(Finding {
                    rule: self.name(),
                    message: format!(
                        "class `{}` is never used: no declaration names it and it shares \
                         no attribute or inheritance edge with a used type",
                        c.name.name
                    ),
                    span: c.name.span,
                    owner: format!("class {}", c.name.name),
                    ..Finding::default()
                });
            }
        }
        for e in &spec.enums {
            if !used.contains(&e.name.name) {
                out.push(Finding {
                    rule: self.name(),
                    message: format!(
                        "enum `{}` is never used: no declaration names it and none of \
                         its variants is referenced",
                        e.name.name
                    ),
                    span: e.name.span,
                    owner: format!("enum {}", e.name.name),
                    ..Finding::default()
                });
            }
        }
    }
}
