//! Condition/arm lints: constant conditions, unreachable guarded arms,
//! and overlapping `MAX` arms.
//!
//! Without the flow pass, unreachable arms are detected by constant
//! folding (guard condition folds to `FALSE`) and overlaps by
//! threshold-literal implication. With it, both generalize to
//! arbitrary guard expressions: an arm is unreachable when the
//! abstract interpreter proves its guard condition `False`, and two
//! `MAX` arms overlap when one guard's constraint set implies the
//! other's.

use super::{LintCx, LintRule};
use crate::fold::{implies, threshold_of, Const, Threshold};
use crate::{Finding, Note};
use asl_core::ast::{ArmSpec, Condition, PropertyDecl};
use flow::Tri;
use std::collections::HashMap;

/// Display label for a condition: its id when named, its 1-based index
/// otherwise.
fn cond_label(c: &Condition, index: usize) -> String {
    match &c.id {
        Some(id) => format!("({})", id.name),
        None => format!("#{}", index + 1),
    }
}

/// `constant-condition`: a property condition folds to a constant.
pub struct ConstantCondition;

impl LintRule for ConstantCondition {
    fn name(&self) -> &'static str {
        "constant-condition"
    }

    fn description(&self) -> &'static str {
        "property condition that folds to a compile-time constant"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        for p in &cx.spec.spec.properties {
            for (i, c) in p.conditions.iter().enumerate() {
                if let Some(Const::Bool(b)) = cx.folder.fold(&c.expr) {
                    out.push(Finding {
                        rule: self.name(),
                        message: format!(
                            "condition `{}` is constantly {}",
                            cond_label(c, i),
                            if b { "TRUE" } else { "FALSE" }
                        ),
                        span: c.span,
                        owner: format!("property {}", p.name.name),
                        ..Finding::default()
                    });
                }
            }
        }
    }
}

/// `unreachable-arm`: a confidence/severity arm guarded by a condition
/// that folds to `FALSE` can never be selected.
pub struct UnreachableArm;

impl UnreachableArm {
    fn check_section(
        &self,
        cx: &LintCx<'_>,
        p: &PropertyDecl,
        section: &str,
        spec: &ArmSpec,
        false_ids: &[String],
        out: &mut Vec<Finding>,
    ) {
        for arm in &spec.arms {
            let Some(guard) = &arm.guard else { continue };
            if false_ids.contains(&guard.name) {
                out.push(Finding {
                    rule: LintRule::name(self),
                    message: format!(
                        "{section} arm guarded by `({})` is unreachable: the condition \
                         is constantly FALSE",
                        guard.name
                    ),
                    span: arm.span,
                    owner: format!("property {}", p.name.name),
                    ..Finding::default()
                });
            }
        }
        let _ = cx;
    }
}

impl LintRule for UnreachableArm {
    fn name(&self) -> &'static str {
        "unreachable-arm"
    }

    fn description(&self) -> &'static str {
        "guarded arm whose condition folds to FALSE"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        if let Some(fr) = cx.flow {
            self.run_flow(cx, fr, out);
            return;
        }
        for p in &cx.spec.spec.properties {
            let false_ids: Vec<String> = p
                .conditions
                .iter()
                .filter(|c| cx.folder.fold(&c.expr) == Some(Const::Bool(false)))
                .filter_map(|c| c.id.as_ref().map(|i| i.name.clone()))
                .collect();
            if false_ids.is_empty() {
                continue;
            }
            self.check_section(cx, p, "confidence", &p.confidence, &false_ids, out);
            self.check_section(cx, p, "severity", &p.severity, &false_ids, out);
        }
    }
}

impl UnreachableArm {
    /// Flow-driven variant: an arm is unreachable when the abstract
    /// interpreter proves its guard condition `False` over all runs —
    /// this covers constant folding (the syntactic case) and arbitrary
    /// guard expressions with provably-empty solution sets.
    fn run_flow(&self, cx: &LintCx<'_>, fr: &flow::FlowReport, out: &mut Vec<Finding>) {
        for p in &cx.spec.spec.properties {
            let Some(pf) = fr.property(&p.name.name) else {
                continue;
            };
            let false_conds: Vec<&flow::CondFlow> = pf
                .conditions
                .iter()
                .filter(|c| c.value == Tri::False && c.id.is_some())
                .collect();
            if false_conds.is_empty() {
                continue;
            }
            for (section, spec) in [("confidence", &p.confidence), ("severity", &p.severity)] {
                for arm in &spec.arms {
                    let Some(guard) = &arm.guard else { continue };
                    let Some(cf) = false_conds
                        .iter()
                        .find(|c| c.id.as_deref() == Some(guard.name.as_str()))
                    else {
                        continue;
                    };
                    // Keep the syntactic wording when folding alone
                    // decides it, so the no-flow path reads the same.
                    let folded = p
                        .conditions
                        .iter()
                        .find(|c| c.id.as_ref().is_some_and(|i| i.name == guard.name))
                        .is_some_and(|c| cx.folder.fold(&c.expr) == Some(Const::Bool(false)));
                    let how = if folded {
                        "the condition is constantly FALSE"
                    } else {
                        "the condition can never hold"
                    };
                    out.push(Finding {
                        rule: LintRule::name(self),
                        message: format!(
                            "{section} arm guarded by `({})` is unreachable: {how}",
                            guard.name
                        ),
                        span: arm.span,
                        owner: format!("property {}", p.name.name),
                        verdict: Some("proven"),
                        notes: vec![Note {
                            span: cf.span,
                            message: format!(
                                "guard condition {} proven unsatisfiable here",
                                cf.label
                            ),
                        }],
                    });
                }
            }
        }
    }
}

/// `overlapping-arms`: two arms of one `MAX` section are guarded by
/// threshold conditions over the same expression where one condition
/// implies the other — the "specialized" arm never fires alone, which
/// usually means the thresholds were meant to be mutually exclusive.
pub struct OverlappingArms;

impl LintRule for OverlappingArms {
    fn name(&self) -> &'static str {
        "overlapping-arms"
    }

    fn description(&self) -> &'static str {
        "MAX arms guarded by threshold conditions where one implies the other"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        if let Some(fr) = cx.flow {
            self.run_flow(cx, fr, out);
            return;
        }
        for p in &cx.spec.spec.properties {
            // Threshold shape per named condition.
            let mut thresholds: HashMap<&str, Threshold> = HashMap::new();
            for c in &p.conditions {
                if let (Some(id), Some(t)) = (&c.id, threshold_of(&c.expr, &cx.folder)) {
                    thresholds.insert(&id.name, t);
                }
            }
            if thresholds.len() < 2 {
                continue;
            }
            for (section, spec) in [("confidence", &p.confidence), ("severity", &p.severity)] {
                if !spec.is_max {
                    continue;
                }
                let guards: Vec<&asl_core::ast::Arm> = spec
                    .arms
                    .iter()
                    .filter(|a| {
                        a.guard
                            .as_ref()
                            .is_some_and(|g| thresholds.contains_key(g.name.as_str()))
                    })
                    .collect();
                for (i, a) in guards.iter().enumerate() {
                    for b in &guards[i + 1..] {
                        let (ga, gb) = (
                            a.guard.as_ref().expect("filtered on guard"),
                            b.guard.as_ref().expect("filtered on guard"),
                        );
                        if ga.name == gb.name {
                            continue;
                        }
                        let (ta, tb) =
                            (&thresholds[ga.name.as_str()], &thresholds[gb.name.as_str()]);
                        // Report at the implied (weaker) guard; on mutual
                        // implication report only once.
                        let (strong, weak) = if implies(ta, tb) {
                            (ga, gb)
                        } else if implies(tb, ta) {
                            (gb, ga)
                        } else {
                            continue;
                        };
                        out.push(Finding {
                            rule: self.name(),
                            message: format!(
                                "{section} arms overlap: whenever `({})` holds, `({})` \
                                 holds too (`{}` thresholds are nested, not exclusive)",
                                strong.name, weak.name, ta.key
                            ),
                            span: weak.span,
                            owner: format!("property {}", p.name.name),
                            ..Finding::default()
                        });
                    }
                }
            }
        }
    }
}

impl OverlappingArms {
    /// Flow-driven variant: one guard's constraint set implying the
    /// other's generalizes threshold nesting to arbitrary conjunctions
    /// of interval constraints.
    fn run_flow(&self, cx: &LintCx<'_>, fr: &flow::FlowReport, out: &mut Vec<Finding>) {
        for p in &cx.spec.spec.properties {
            let Some(pf) = fr.property(&p.name.name) else {
                continue;
            };
            // Constraint view (and span) per named condition.
            let by_id: HashMap<&str, &flow::CondFlow> = pf
                .conditions
                .iter()
                .filter_map(|c| c.id.as_deref().map(|i| (i, c)))
                .collect();
            for (section, spec) in [("confidence", &p.confidence), ("severity", &p.severity)] {
                if !spec.is_max {
                    continue;
                }
                let guards: Vec<&asl_core::ast::Arm> = spec
                    .arms
                    .iter()
                    .filter(|a| {
                        a.guard
                            .as_ref()
                            .is_some_and(|g| by_id.contains_key(g.name.as_str()))
                    })
                    .collect();
                for (i, a) in guards.iter().enumerate() {
                    for b in &guards[i + 1..] {
                        let (ga, gb) = (
                            a.guard.as_ref().expect("filtered on guard"),
                            b.guard.as_ref().expect("filtered on guard"),
                        );
                        if ga.name == gb.name {
                            continue;
                        }
                        let (ca, cb) = (by_id[ga.name.as_str()], by_id[gb.name.as_str()]);
                        // An unsatisfiable premise implies everything;
                        // that is unreachable-arm's finding, not ours.
                        // A conclusion with no representable atom would
                        // make the implication vacuous — require one.
                        let fwd = !ca.constraints.unsat()
                            && !cb.constraints.atoms.is_empty()
                            && ca.constraints.implies(&cb.constraints);
                        let bwd = !cb.constraints.unsat()
                            && !ca.constraints.atoms.is_empty()
                            && cb.constraints.implies(&ca.constraints);
                        // Report at the implied (weaker) guard; on
                        // mutual implication report only once.
                        let (strong, weak, sc, wc) = if fwd {
                            (ga, gb, ca, cb)
                        } else if bwd {
                            (gb, ga, cb, ca)
                        } else {
                            continue;
                        };
                        out.push(Finding {
                            rule: self.name(),
                            message: format!(
                                "{section} arms overlap: whenever `({})` holds, `({})` \
                                 holds too (the guard constraints are nested, not \
                                 exclusive)",
                                strong.name, weak.name
                            ),
                            span: weak.span,
                            owner: format!("property {}", p.name.name),
                            verdict: Some("proven"),
                            notes: vec![
                                Note {
                                    span: sc.span,
                                    message: format!("the stronger condition {} …", sc.label),
                                },
                                Note {
                                    span: wc.span,
                                    message: format!("… implies the weaker condition {}", wc.label),
                                },
                            ],
                        });
                    }
                }
            }
        }
    }
}
