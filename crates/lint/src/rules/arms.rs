//! Condition/arm lints: constant conditions, unreachable guarded arms,
//! and overlapping `MAX` arms detected by threshold-interval implication.

use super::{LintCx, LintRule};
use crate::fold::{implies, threshold_of, Const, Threshold};
use crate::Finding;
use asl_core::ast::{ArmSpec, Condition, PropertyDecl};
use std::collections::HashMap;

/// Display label for a condition: its id when named, its 1-based index
/// otherwise.
fn cond_label(c: &Condition, index: usize) -> String {
    match &c.id {
        Some(id) => format!("({})", id.name),
        None => format!("#{}", index + 1),
    }
}

/// `constant-condition`: a property condition folds to a constant.
pub struct ConstantCondition;

impl LintRule for ConstantCondition {
    fn name(&self) -> &'static str {
        "constant-condition"
    }

    fn description(&self) -> &'static str {
        "property condition that folds to a compile-time constant"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        for p in &cx.spec.spec.properties {
            for (i, c) in p.conditions.iter().enumerate() {
                if let Some(Const::Bool(b)) = cx.folder.fold(&c.expr) {
                    out.push(Finding {
                        rule: self.name(),
                        message: format!(
                            "condition `{}` is constantly {}",
                            cond_label(c, i),
                            if b { "TRUE" } else { "FALSE" }
                        ),
                        span: c.span,
                        owner: format!("property {}", p.name.name),
                    });
                }
            }
        }
    }
}

/// `unreachable-arm`: a confidence/severity arm guarded by a condition
/// that folds to `FALSE` can never be selected.
pub struct UnreachableArm;

impl UnreachableArm {
    fn check_section(
        &self,
        cx: &LintCx<'_>,
        p: &PropertyDecl,
        section: &str,
        spec: &ArmSpec,
        false_ids: &[String],
        out: &mut Vec<Finding>,
    ) {
        for arm in &spec.arms {
            let Some(guard) = &arm.guard else { continue };
            if false_ids.contains(&guard.name) {
                out.push(Finding {
                    rule: LintRule::name(self),
                    message: format!(
                        "{section} arm guarded by `({})` is unreachable: the condition \
                         is constantly FALSE",
                        guard.name
                    ),
                    span: arm.span,
                    owner: format!("property {}", p.name.name),
                });
            }
        }
        let _ = cx;
    }
}

impl LintRule for UnreachableArm {
    fn name(&self) -> &'static str {
        "unreachable-arm"
    }

    fn description(&self) -> &'static str {
        "guarded arm whose condition folds to FALSE"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        for p in &cx.spec.spec.properties {
            let false_ids: Vec<String> = p
                .conditions
                .iter()
                .filter(|c| cx.folder.fold(&c.expr) == Some(Const::Bool(false)))
                .filter_map(|c| c.id.as_ref().map(|i| i.name.clone()))
                .collect();
            if false_ids.is_empty() {
                continue;
            }
            self.check_section(cx, p, "confidence", &p.confidence, &false_ids, out);
            self.check_section(cx, p, "severity", &p.severity, &false_ids, out);
        }
    }
}

/// `overlapping-arms`: two arms of one `MAX` section are guarded by
/// threshold conditions over the same expression where one condition
/// implies the other — the "specialized" arm never fires alone, which
/// usually means the thresholds were meant to be mutually exclusive.
pub struct OverlappingArms;

impl LintRule for OverlappingArms {
    fn name(&self) -> &'static str {
        "overlapping-arms"
    }

    fn description(&self) -> &'static str {
        "MAX arms guarded by threshold conditions where one implies the other"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        for p in &cx.spec.spec.properties {
            // Threshold shape per named condition.
            let mut thresholds: HashMap<&str, Threshold> = HashMap::new();
            for c in &p.conditions {
                if let (Some(id), Some(t)) = (&c.id, threshold_of(&c.expr, &cx.folder)) {
                    thresholds.insert(&id.name, t);
                }
            }
            if thresholds.len() < 2 {
                continue;
            }
            for (section, spec) in [("confidence", &p.confidence), ("severity", &p.severity)] {
                if !spec.is_max {
                    continue;
                }
                let guards: Vec<&asl_core::ast::Arm> = spec
                    .arms
                    .iter()
                    .filter(|a| {
                        a.guard
                            .as_ref()
                            .is_some_and(|g| thresholds.contains_key(g.name.as_str()))
                    })
                    .collect();
                for (i, a) in guards.iter().enumerate() {
                    for b in &guards[i + 1..] {
                        let (ga, gb) = (
                            a.guard.as_ref().expect("filtered on guard"),
                            b.guard.as_ref().expect("filtered on guard"),
                        );
                        if ga.name == gb.name {
                            continue;
                        }
                        let (ta, tb) =
                            (&thresholds[ga.name.as_str()], &thresholds[gb.name.as_str()]);
                        // Report at the implied (weaker) guard; on mutual
                        // implication report only once.
                        let (strong, weak) = if implies(ta, tb) {
                            (ga, gb)
                        } else if implies(tb, ta) {
                            (gb, ga)
                        } else {
                            continue;
                        };
                        out.push(Finding {
                            rule: self.name(),
                            message: format!(
                                "{section} arms overlap: whenever `({})` holds, `({})` \
                                 holds too (`{}` thresholds are nested, not exclusive)",
                                strong.name, weak.name, ta.key
                            ),
                            span: weak.span,
                            owner: format!("property {}", p.name.name),
                        });
                    }
                }
            }
        }
    }
}
