//! `unit-mismatch`: the flow pass infers a unit/dimension for every
//! numeric expression (time, count, bytes and their quotients, seeded
//! from the [`perfdata`] attribute schema) and this rule reports the
//! sites where an addition, subtraction or ordered comparison mixes
//! two *different proven* dimensions — adding a time to a count,
//! comparing a ratio against a time. Dimensionless or unknown operands
//! never fire, so the common `Ratio > 0.25` threshold idiom stays
//! quiet. Flow-only: silent without [`LintCx::flow`].

use super::{LintCx, LintRule};
use crate::{Finding, Note};
use asl_core::ast::BinOp;
use flow::UnitMismatch;

/// See module docs.
pub struct UnitMismatchRule;

fn emit(owner: &str, mismatches: &[UnitMismatch], out: &mut Vec<Finding>) {
    for m in mismatches {
        let message = match m.op {
            BinOp::Add | BinOp::Sub => format!(
                "unit mismatch: cannot {} `{}` ({}) and `{}` ({})",
                if m.op == BinOp::Add {
                    "add"
                } else {
                    "subtract"
                },
                m.left.display,
                m.left.unit,
                m.right.display,
                m.right.unit
            ),
            _ => format!(
                "unit mismatch: comparing `{}` ({}) against `{}` ({})",
                m.left.display, m.left.unit, m.right.display, m.right.unit
            ),
        };
        out.push(Finding {
            rule: "unit-mismatch",
            message,
            span: m.span,
            owner: owner.to_string(),
            verdict: Some("proven"),
            notes: vec![
                Note {
                    span: m.left.span,
                    message: format!("`{}` has unit {}", m.left.display, m.left.unit),
                },
                Note {
                    span: m.right.span,
                    message: format!("`{}` has unit {}", m.right.display, m.right.unit),
                },
            ],
        });
    }
}

impl LintRule for UnitMismatchRule {
    fn name(&self) -> &'static str {
        "unit-mismatch"
    }

    fn description(&self) -> &'static str {
        "arithmetic or comparison mixing two different proven units (flow only)"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        let Some(fr) = cx.flow else { return };
        for d in fr.consts.iter().chain(&fr.functions) {
            emit(&d.owner, &d.units, out);
        }
        for p in &fr.properties {
            emit(&format!("property {}", p.name), &p.units, out);
        }
    }
}
