//! Performance lints grounded in the compiled-IR lowering rules.
//!
//! These rules reuse `asl_eval::compile::shape` — the *exact* predicate
//! decomposition the compiler performs — so a lint fires precisely when
//! the compiled engine would (or would fail to) use an indexed load, and
//! `asl_eval::native_index` to know which `(class, set, attr)` triples
//! the COSY store can actually serve in O(matches).

use super::{elem_of, walk_scoped, LintCx, LintRule};
use crate::Finding;
use asl_core::ast::{BinOp, Expr, ExprKind, Ident};
use asl_core::check::{infer_expr_type, Scope};
use asl_core::types::Type;
use asl_eval::compile::shape::{and_conjuncts, eq_filter_conjunct, indexed_filter};
use asl_eval::native_index;
use std::collections::HashSet;

/// A set construct the compiler's `lower_source` extraction applies to
/// (quantifiers are excluded: `FORALL`/`EXISTS` never use the indexed
/// filter).
struct Construct<'e> {
    binder: &'e Ident,
    source: &'e Expr,
    pred: Option<&'e Expr>,
}

impl<'e> Construct<'e> {
    fn of(e: &'e Expr) -> Option<Construct<'e>> {
        match &e.kind {
            ExprKind::SetComp {
                binder,
                source,
                pred,
            } => Some(Construct {
                binder,
                source,
                pred: Some(pred),
            }),
            ExprKind::Aggregate {
                binder,
                source,
                pred,
                ..
            } => Some(Construct {
                binder,
                source,
                pred: pred.as_deref(),
            }),
            _ => None,
        }
    }
}

/// Visit every expression of the spec with the lexical type scope of its
/// position, tagging each with its owning declaration.
fn for_each_expr(cx: &LintCx<'_>, f: &mut impl FnMut(&Expr, &mut Scope, &str)) {
    let model = cx.model();
    let spec = &cx.spec.spec;
    for c in &spec.constants {
        let mut scope = Scope::new();
        let owner = format!("constant {}", c.name.name);
        walk_scoped(model, &c.value, &mut scope, &mut |e, s| f(e, s, &owner));
    }
    for fun in &spec.functions {
        let mut scope = Scope::new();
        super::bind_params(model, &mut scope, &fun.params);
        let owner = format!("function {}", fun.name.name);
        walk_scoped(model, &fun.body, &mut scope, &mut |e, s| f(e, s, &owner));
    }
    for p in &spec.properties {
        let mut scope = Scope::new();
        super::bind_params(model, &mut scope, &p.params);
        let owner = format!("property {}", p.name.name);
        for l in &p.lets {
            walk_scoped(model, &l.value, &mut scope, &mut |e, s| f(e, s, &owner));
            scope.bind(&l.name.name, super::decl_ty(model, &l.ty));
        }
        for c in &p.conditions {
            walk_scoped(model, &c.expr, &mut scope, &mut |e, s| f(e, s, &owner));
        }
        for arm in p.confidence.arms.iter().chain(p.severity.arms.iter()) {
            walk_scoped(model, &arm.expr, &mut scope, &mut |e, s| f(e, s, &owner));
        }
    }
}

/// The class of an object-valued expression, via type inference.
fn class_of(cx: &LintCx<'_>, e: &Expr, scope: &mut Scope) -> Option<String> {
    match infer_expr_type(cx.model(), e, scope) {
        Ok(Type::Class(c)) => Some(c),
        _ => None,
    }
}

/// Recognize a per-element equality *membership* filter on one attribute
/// of the binder: either a single `b.Attr == key` conjunct or an `OR`
/// chain of such comparisons over the same attribute
/// (`b.Type == PtpSend OR b.Type == PtpRecv OR …`). Returns the
/// attribute and the number of compared keys.
fn eq_membership<'e>(e: &'e Expr, binder: &str) -> Option<(&'e str, usize)> {
    if let Some((attr, _key)) = eq_filter_conjunct(e, binder) {
        return Some((attr, 1));
    }
    if let ExprKind::Binary(BinOp::Or, l, r) = &e.kind {
        let (la, ln) = eq_membership(l, binder)?;
        let (ra, rn) = eq_membership(r, binder)?;
        if la == ra {
            return Some((la, ln + rn));
        }
    }
    None
}

/// `residual-filter-scan`: the compiler extracts an indexed
/// `b.Attr == key` load the store serves natively, but the predicate
/// carries a *second* equality filter on another attribute that must run
/// per element — a two-key filter (e.g. `Run == t AND Type == Barrier`)
/// the store has no composite index for.
pub struct ResidualFilterScan;

impl LintRule for ResidualFilterScan {
    fn name(&self) -> &'static str {
        "residual-filter-scan"
    }

    fn description(&self) -> &'static str {
        "two-key equality filter: indexed load plus a per-element residual equality"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        for_each_expr(cx, &mut |e, scope, owner| {
            let Some(c) = Construct::of(e) else { return };
            let Some(f) = indexed_filter(&c.binder.name, c.source, c.pred) else {
                return;
            };
            let Some(class) = class_of(cx, f.base, scope) else {
                return;
            };
            if !native_index(&class, f.set_attr, f.elem_attr) {
                return;
            }
            for r in &f.residual {
                let Some((attr, n_keys)) = eq_membership(r, &c.binder.name) else {
                    continue;
                };
                let keys = if n_keys == 1 {
                    "…".to_string()
                } else {
                    format!("one of {n_keys} keys")
                };
                out.push(Finding {
                    rule: LintRule::name(self),
                    message: format!(
                        "`{b}.{attr} == {keys}` runs per element after the indexed \
                         `{b}.{ea} ==` load: `{class}.{sa}` has no ({ea}, {attr}) \
                         two-key index, so the residual filter scans every match",
                        b = c.binder.name,
                        ea = f.elem_attr,
                        sa = f.set_attr,
                    ),
                    span: r.span,
                    owner: owner.to_string(),
                    ..Finding::default()
                });
            }
        });
    }
}

/// `full-scan-where-indexed`: the predicate contains an equality
/// conjunct the store could serve with an indexed load, but its position
/// keeps the compiler from extracting it — the construct scans the whole
/// set even though a `FilterEq` load exists.
pub struct FullScanWhereIndexed;

impl LintRule for FullScanWhereIndexed {
    fn name(&self) -> &'static str {
        "full-scan-where-indexed"
    }

    fn description(&self) -> &'static str {
        "full scan although an equality conjunct could use the indexed load"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        for_each_expr(cx, &mut |e, scope, owner| {
            let Some(c) = Construct::of(e) else { return };
            let (ExprKind::Attr(base, set_attr), Some(pred)) = (&c.source.kind, c.pred) else {
                return;
            };
            let Some(class) = class_of(cx, base, scope) else {
                return;
            };
            // When the first conjunct is already extracted *and* natively
            // served, the construct is fine (a second servable conjunct is
            // the two-key case handled by residual-filter-scan).
            if indexed_filter(&c.binder.name, c.source, c.pred)
                .is_some_and(|f| native_index(&class, f.set_attr, f.elem_attr))
            {
                return;
            }
            for (i, conj) in and_conjuncts(pred).into_iter().enumerate() {
                let Some((attr, _)) = eq_filter_conjunct(conj, &c.binder.name) else {
                    continue;
                };
                if !native_index(&class, &set_attr.name, attr) {
                    continue;
                }
                let why = if i == 0 {
                    // First conjunct, but extraction still failed (e.g. a
                    // non-simple key): unreachable today, kept for safety.
                    "the compiler could not extract it".to_string()
                } else {
                    format!(
                        "it is conjunct {} — only the first conjunct is extracted",
                        i + 1
                    )
                };
                out.push(Finding {
                    rule: LintRule::name(self),
                    message: format!(
                        "this construct scans `{class}.{sa}` in full although \
                         `{b}.{attr} ==` could be served by the indexed load; {why}. \
                         Move it to the front of the predicate",
                        sa = set_attr.name,
                        b = c.binder.name,
                    ),
                    span: conj.span,
                    owner: owner.to_string(),
                    ..Finding::default()
                });
                return; // one finding per construct is enough
            }
        });
    }
}

/// `per-element-set-clone`: a set-valued attribute load that depends on
/// a construct's binder is re-materialized (cloned out of the store) on
/// every iteration of that construct. Binder-independent set loads are
/// hoisted and cached by the compiler; binder-dependent ones cannot be.
pub struct PerElementSetClone;

impl LintRule for PerElementSetClone {
    fn name(&self) -> &'static str {
        "per-element-set-clone"
    }

    fn description(&self) -> &'static str {
        "set-valued attribute materialized on every loop iteration"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        let model = cx.model();
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for_each_expr(cx, &mut |e, scope, owner| {
            let (binder, source, bodies): (_, _, Vec<&Expr>) = match &e.kind {
                ExprKind::SetComp {
                    binder,
                    source,
                    pred,
                } => (binder, source, vec![pred]),
                ExprKind::Aggregate {
                    binder,
                    source,
                    pred,
                    value,
                    ..
                } => {
                    let mut b: Vec<&Expr> = vec![value];
                    b.extend(pred.as_deref());
                    (binder, source, b)
                }
                ExprKind::Quantifier {
                    binder,
                    source,
                    pred,
                    ..
                } => (binder, source, vec![pred]),
                _ => return,
            };
            let et = elem_of(model, source, scope);
            scope.push();
            scope.bind(&binder.name, et);
            for body in bodies {
                walk_scoped(model, body, scope, &mut |inner, inner_scope| {
                    if !matches!(inner.kind, ExprKind::Attr(..)) {
                        return;
                    }
                    if !super::uses_var(inner, &binder.name) {
                        return;
                    }
                    if !matches!(infer_expr_type(model, inner, inner_scope), Ok(Type::Set(_))) {
                        return;
                    }
                    if seen.insert((inner.span.start, inner.span.end)) {
                        out.push(Finding {
                            rule: "per-element-set-clone",
                            message: format!(
                                "set-valued attribute `{}` depends on binder `{}` and is \
                                 materialized (cloned) on every iteration; hoist it or \
                                 restructure the loop if the set is large",
                                asl_core::pretty::print_expr(inner),
                                binder.name
                            ),
                            span: inner.span,
                            owner: owner.to_string(),
                            ..Finding::default()
                        });
                    }
                });
            }
            scope.pop();
        });
    }
}
