//! `shadowing`: a binder, `LET` binding or parameter reuses a name that
//! is already visible (an outer binder, a parameter, an earlier `LET`,
//! or a global constant). ASL resolves the innermost binding, so the
//! code still type-checks — which is exactly why a silent rebind is
//! worth a warning.

use super::{LintCx, LintRule};
use crate::Finding;
use asl_core::ast::{Expr, ExprKind, Ident, Param};
use std::collections::HashSet;

/// See module docs.
pub struct Shadowing;

struct Walk<'a> {
    /// Global constant names (shadowing one is legal but confusing).
    consts: HashSet<&'a str>,
    /// Currently visible local bindings, innermost last: (name, kind).
    stack: Vec<(String, &'static str)>,
    owner: String,
    out: &'a mut Vec<Finding>,
}

impl Walk<'_> {
    fn check(&mut self, name: &Ident, what: &'static str) {
        let shadowed = self
            .stack
            .iter()
            .rev()
            .find(|(n, _)| n == &name.name)
            .map(|(_, kind)| *kind)
            .or_else(|| {
                self.consts
                    .contains(name.name.as_str())
                    .then_some("global constant")
            });
        if let Some(kind) = shadowed {
            self.out.push(Finding {
                rule: "shadowing",
                message: format!("{what} `{}` shadows a {kind} of the same name", name.name),
                span: name.span,
                owner: self.owner.clone(),
                ..Finding::default()
            });
        }
    }

    fn params(&mut self, params: &[Param]) {
        for p in params {
            self.check(&p.name, "parameter");
            self.stack.push((p.name.name.clone(), "parameter"));
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::StrLit(_)
            | ExprKind::BoolLit(_)
            | ExprKind::Var(_) => {}
            ExprKind::Attr(base, _) => self.expr(base),
            ExprKind::Call(_, args) => args.iter().for_each(|a| self.expr(a)),
            ExprKind::Unary(_, i) | ExprKind::Unique(i) | ExprKind::CountSet(i) => self.expr(i),
            ExprKind::Binary(_, l, r) => {
                self.expr(l);
                self.expr(r);
            }
            ExprKind::SetComp {
                binder,
                source,
                pred,
            } => self.binder_scope(binder, source, [Some(&**pred)]),
            ExprKind::Aggregate {
                value,
                binder,
                source,
                pred,
                ..
            } => self.binder_scope(binder, source, [Some(&**value), pred.as_deref()]),
            ExprKind::Quantifier {
                binder,
                source,
                pred,
                ..
            } => self.binder_scope(binder, source, [Some(&**pred)]),
        }
    }

    fn binder_scope<const N: usize>(
        &mut self,
        binder: &Ident,
        source: &Expr,
        bodies: [Option<&Expr>; N],
    ) {
        // The source is evaluated outside the binder's scope.
        self.expr(source);
        self.check(binder, "binder");
        self.stack.push((binder.name.clone(), "binder"));
        for body in bodies.into_iter().flatten() {
            self.expr(body);
        }
        self.stack.pop();
    }
}

impl LintRule for Shadowing {
    fn name(&self) -> &'static str {
        "shadowing"
    }

    fn description(&self) -> &'static str {
        "binding reuses a name that is already visible in an enclosing scope"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        let spec = &cx.spec.spec;
        let consts: HashSet<&str> = spec
            .constants
            .iter()
            .map(|c| c.name.name.as_str())
            .collect();

        for f in &spec.functions {
            let mut w = Walk {
                consts: consts.clone(),
                stack: Vec::new(),
                owner: format!("function {}", f.name.name),
                out,
            };
            w.params(&f.params);
            w.expr(&f.body);
        }
        for p in &spec.properties {
            let mut w = Walk {
                consts: consts.clone(),
                stack: Vec::new(),
                owner: format!("property {}", p.name.name),
                out,
            };
            w.params(&p.params);
            for l in &p.lets {
                // The value sees everything bound so far, but not itself.
                w.expr(&l.value);
                w.check(&l.name, "LET binding");
                w.stack.push((l.name.name.clone(), "LET binding"));
            }
            for c in &p.conditions {
                w.expr(&c.expr);
            }
            for arm in p.confidence.arms.iter().chain(p.severity.arms.iter()) {
                w.expr(&arm.expr);
            }
        }
    }
}
