//! `subsumed-property`: a whole-suite pass over the flow results. A
//! property `P` is *subsumed* by `Q` when they range over the same
//! parameter signature, `P`'s condition provably implies `Q`'s
//! (constraint-set implication over canonical expression keys), and
//! `Q` reports at equal-or-higher severity — so every apprenticeship
//! bottleneck `P` would flag, `Q` already flags at least as loudly and
//! on a strictly larger run set. `P` is redundant.
//!
//! The comparison is deliberately narrow: single-condition properties
//! with a single severity arm, implication only through representable
//! interval atoms (opaque conjuncts on the conclusion side block it),
//! and an unsatisfiable premise never counts (that is dead code,
//! reported elsewhere). On mutual implication the later-declared
//! property is reported. Flow-only: silent without [`LintCx::flow`].

use super::{LintCx, LintRule};
use crate::{Finding, Note};
use flow::PropFlow;

/// See module docs.
pub struct SubsumedProperty;

/// Is `p`'s single severity arm dominated by `q`'s (equal canonical
/// expression, or both constants with `p`'s not above `q`'s)?
fn severity_dominated(p: &PropFlow, q: &PropFlow) -> bool {
    let [a] = p.severity.as_slice() else {
        return false;
    };
    let [b] = q.severity.as_slice() else {
        return false;
    };
    a.key == b.key || matches!((a.konst, b.konst), (Some(x), Some(y)) if x <= y)
}

/// Does `q` subsume `p`?
fn subsumes(q: &PropFlow, p: &PropFlow) -> bool {
    if p.param_sig != q.param_sig || p.param_sig.is_empty() {
        return false;
    }
    let ([pc], [qc]) = (p.conditions.as_slice(), q.conditions.as_slice()) else {
        return false;
    };
    !pc.constraints.unsat()
        && !qc.constraints.atoms.is_empty()
        && pc.constraints.implies(&qc.constraints)
        && severity_dominated(p, q)
}

impl LintRule for SubsumedProperty {
    fn name(&self) -> &'static str {
        "subsumed-property"
    }

    fn description(&self) -> &'static str {
        "property whose condition implies another's at equal-or-lower severity (flow only)"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        let Some(fr) = cx.flow else { return };
        let props = &fr.properties;
        for i in 0..props.len() {
            for j in i + 1..props.len() {
                let (a, b) = (&props[i], &props[j]);
                // On mutual implication the properties are equivalent:
                // keep the first-declared one, report the later.
                let (subsumed, by) = if subsumes(a, b) {
                    (b, a)
                } else if subsumes(b, a) {
                    (a, b)
                } else {
                    continue;
                };
                let (sc, bc) = (&subsumed.conditions[0], &by.conditions[0]);
                out.push(Finding {
                    rule: self.name(),
                    message: format!(
                        "property `{}` is subsumed by `{}`: whenever its condition \
                         holds, `{}`'s condition holds too, at equal-or-higher severity",
                        subsumed.name, by.name, by.name
                    ),
                    span: sc.span,
                    owner: format!("property {}", subsumed.name),
                    verdict: Some("proven"),
                    notes: vec![Note {
                        span: bc.span,
                        message: format!("the subsuming condition of `{}`", by.name),
                    }],
                });
            }
        }
    }
}
