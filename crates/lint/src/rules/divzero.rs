//! `possible-div-by-zero`: a division (or modulo) whose denominator
//! *provably* can be zero — it folds to zero, it is a `COUNT` (zero on
//! an empty set), or it is syntactically `E - E`. A denominator that is
//! a plain variable is resolved one level through the property's LET
//! bindings, so the common `LET int N = COUNT(…) … / N` idiom is caught.
//!
//! The rule is deliberately one-sided: attribute loads and calls have
//! unknown ranges and stay quiet. A finding is suppressed when a
//! property condition proves the denominator nonzero (e.g. the arm
//! `Cost / N` under the guarding condition `N > 0`), since
//! severity/confidence arms only run once a condition holds.
//!
//! With the flow pass ([`LintCx::flow`]) the same sites are triaged by
//! the abstract interpreter instead: every finding carries a verdict
//! (`proven-div-by-zero` / `possible`), and sites the interpreter
//! proves safe become [proof entries](crate::LintReport::proofs) with
//! the proving guard in the span chain.

use super::{walk_expr, LintCx, LintRule};
use crate::fold::{provably_can_be_zero, proves_nonzero, threshold_of, Threshold};
use crate::{Finding, Note};
use asl_core::ast::{BinOp, Expr, ExprKind};
use asl_core::pretty;
use asl_eval::compile::shape::and_conjuncts;
use flow::{DivSite, DivVerdict};

/// See module docs.
pub struct PossibleDivByZero;

/// Translate flow division sites for one owner into findings/proofs.
/// Only *triggered* sites (trigger shapes the syntactic rule reports)
/// surface at all, so a flow run never flags more sites than the
/// syntactic rule — it only sharpens their verdicts.
fn emit_flow_sites(rule: &'static str, owner: &str, sites: &[DivSite], out: &mut Vec<Finding>) {
    for s in sites.iter().filter(|s| s.triggered) {
        let what = if s.is_mod { "modulo" } else { "division" };
        let (verdict, message) = match s.verdict {
            DivVerdict::ProvenZero => (
                "proven-div-by-zero",
                format!("proven {what} by zero: {}", s.reason),
            ),
            DivVerdict::Possible => ("possible", format!("possible {what} by zero: {}", s.reason)),
            DivVerdict::ProvenSafe => ("proven-safe", format!("{what} proven safe: {}", s.reason)),
            DivVerdict::Unknown => continue,
        };
        let notes = match (&s.guard, s.guard_span) {
            (Some(g), Some(span)) => vec![Note {
                span,
                message: format!("condition {g} proves the denominator nonzero"),
            }],
            _ => Vec::new(),
        };
        out.push(Finding {
            rule,
            message,
            span: s.span,
            owner: owner.to_string(),
            verdict: Some(verdict),
            notes,
        });
    }
}

impl PossibleDivByZero {
    fn check_body(
        &self,
        cx: &LintCx<'_>,
        owner: &str,
        body: &Expr,
        facts: &[Threshold],
        lets: &[(&str, &Expr)],
        out: &mut Vec<Finding>,
    ) {
        walk_expr(body, &mut |e| {
            let ExprKind::Binary(op @ (BinOp::Div | BinOp::Mod), _, den) = &e.kind else {
                return;
            };
            // Resolve a plain-variable denominator one level through the
            // LET bindings in scope (latest binding of the name wins).
            let resolved = match &den.kind {
                ExprKind::Var(v) => lets
                    .iter()
                    .rev()
                    .find(|(n, _)| *n == v.as_str())
                    .map(|(_, value)| *value),
                _ => None,
            };
            let Some(reason) = provably_can_be_zero(den, &cx.folder).or_else(|| {
                resolved.and_then(|value| {
                    provably_can_be_zero(value, &cx.folder)
                        .map(|r| format!("{r} (`{}` is LET-bound to it)", pretty::print_expr(den)))
                })
            }) else {
                return;
            };
            // A condition fact can name either the variable or the bound
            // expression itself; both prove the denominator nonzero.
            let mut keys = vec![pretty::print_expr(den)];
            if let Some(value) = resolved {
                keys.push(pretty::print_expr(value));
            }
            let proven_nonzero = facts
                .iter()
                .any(|t| keys.contains(&t.key) && proves_nonzero(t));
            if proven_nonzero {
                return;
            }
            let what = match op {
                BinOp::Mod => "modulo",
                _ => "division",
            };
            out.push(Finding {
                rule: LintRule::name(self),
                message: format!("possible {what} by zero: {reason}"),
                span: den.span,
                owner: owner.to_string(),
                ..Finding::default()
            });
        });
    }
}

/// Threshold facts established by a condition expression (all of its
/// top-level conjuncts).
fn condition_facts(cx: &LintCx<'_>, cond: &Expr) -> Vec<Threshold> {
    and_conjuncts(cond)
        .into_iter()
        .filter_map(|c| threshold_of(c, &cx.folder))
        .collect()
}

impl LintRule for PossibleDivByZero {
    fn name(&self) -> &'static str {
        "possible-div-by-zero"
    }

    fn description(&self) -> &'static str {
        "division whose denominator provably can be zero"
    }

    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>) {
        if let Some(fr) = cx.flow {
            let rule = LintRule::name(self);
            for d in fr.consts.iter().chain(&fr.functions) {
                emit_flow_sites(rule, &d.owner, &d.divisions, out);
            }
            for p in &fr.properties {
                let owner = format!("property {}", p.name);
                emit_flow_sites(rule, &owner, &p.divisions, out);
            }
            return;
        }
        let spec = &cx.spec.spec;
        for c in &spec.constants {
            self.check_body(
                cx,
                &format!("constant {}", c.name.name),
                &c.value,
                &[],
                &[],
                out,
            );
        }
        for f in &spec.functions {
            self.check_body(
                cx,
                &format!("function {}", f.name.name),
                &f.body,
                &[],
                &[],
                out,
            );
        }
        for p in &spec.properties {
            let owner = format!("property {}", p.name.name);
            // LETs and conditions evaluate before any condition is known
            // to hold: no facts apply there. Each LET body sees only the
            // bindings declared before it.
            let mut lets: Vec<(&str, &Expr)> = Vec::new();
            for l in &p.lets {
                self.check_body(cx, &owner, &l.value, &[], &lets, out);
                lets.push((&l.name.name, &l.value));
            }
            for c in &p.conditions {
                self.check_body(cx, &owner, &c.expr, &[], &lets, out);
            }
            // Arms run only once the property holds. A guarded arm is
            // protected by its own condition; an unguarded arm is only
            // protected when the property has exactly one condition.
            let sole_facts = match p.conditions.as_slice() {
                [only] => condition_facts(cx, &only.expr),
                _ => Vec::new(),
            };
            for arm in p.confidence.arms.iter().chain(p.severity.arms.iter()) {
                let guard_facts = arm
                    .guard
                    .as_ref()
                    .and_then(|g| {
                        p.conditions
                            .iter()
                            .find(|c| c.id.as_ref().is_some_and(|i| i.name == g.name))
                    })
                    .map(|c| condition_facts(cx, &c.expr));
                let facts = guard_facts.as_deref().unwrap_or(&sole_facts);
                self.check_body(cx, &owner, &arm.expr, facts, &lets, out);
            }
        }
    }
}
