//! The lint-rule framework and the rule registry.
//!
//! Every rule implements [`LintRule`] and pushes [`Finding`]s with the
//! most precise [`asl_core::Span`] it can attribute — that span drives
//! both the caret snippet of the text renderer and the line/column of
//! the JSON output, so rules must never fall back to `Span::default()`
//! when the AST offers a real location.

pub mod arms;
pub mod divzero;
pub mod perf;
pub mod shadow;
pub mod subsume;
pub mod units;
pub mod unused;

use crate::fold::Folder;
use crate::Finding;
use asl_core::ast::{Expr, ExprKind, Param, TypeExpr, TypeExprKind};
use asl_core::check::{infer_expr_type, CheckedSpec, Scope};
use asl_core::types::{Model, Type};

/// Shared context handed to every rule: the checked spec, the constant
/// folder (built once over the spec's global constants), and — when the
/// flow pass ran — the abstract-interpretation results.
pub struct LintCx<'a> {
    /// The type-checked specification under analysis.
    pub spec: &'a CheckedSpec,
    /// Constant folder over the spec's global constants.
    pub folder: Folder,
    /// Flow results over the compiled IR, when the pass ran. Semantic
    /// rules branch on this: with flow they consume proven facts, without
    /// it they fall back to their syntactic approximation (or stay
    /// silent, for the flow-only rules).
    pub flow: Option<&'a flow::FlowReport>,
}

impl<'a> LintCx<'a> {
    /// Build the context for a syntactic-only lint run.
    pub fn new(spec: &'a CheckedSpec) -> Self {
        LintCx::with_flow(spec, None)
    }

    /// Build the context, optionally wiring in flow results.
    pub fn with_flow(spec: &'a CheckedSpec, flow: Option<&'a flow::FlowReport>) -> Self {
        LintCx {
            folder: Folder::new(&spec.spec),
            spec,
            flow,
        }
    }

    /// The resolved data-model metadata.
    pub fn model(&self) -> &Model {
        &self.spec.model
    }
}

/// A single lint rule.
pub trait LintRule {
    /// Stable kebab-case rule name (used by `allow(...)` directives and
    /// the JSON output).
    fn name(&self) -> &'static str;
    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;
    /// Run the rule, appending findings.
    fn run(&self, cx: &LintCx<'_>, out: &mut Vec<Finding>);
}

/// All registered rules, in a stable order.
pub fn all() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(unused::UnusedConstant),
        Box::new(unused::UnusedFunction),
        Box::new(unused::UnusedType),
        Box::new(shadow::Shadowing),
        Box::new(arms::ConstantCondition),
        Box::new(arms::UnreachableArm),
        Box::new(arms::OverlappingArms),
        Box::new(divzero::PossibleDivByZero),
        Box::new(units::UnitMismatchRule),
        Box::new(subsume::SubsumedProperty),
        Box::new(perf::ResidualFilterScan),
        Box::new(perf::FullScanWhereIndexed),
        Box::new(perf::PerElementSetClone),
    ]
}

/// Pre-order walk over every sub-expression, without scope tracking.
pub(crate) fn walk_expr<'e>(e: &'e Expr, f: &mut impl FnMut(&'e Expr)) {
    f(e);
    match &e.kind {
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::Var(_) => {}
        ExprKind::Attr(base, _) => walk_expr(base, f),
        ExprKind::Call(_, args) => {
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Unary(_, inner) | ExprKind::Unique(inner) | ExprKind::CountSet(inner) => {
            walk_expr(inner, f)
        }
        ExprKind::Binary(_, l, r) => {
            walk_expr(l, f);
            walk_expr(r, f);
        }
        ExprKind::SetComp { source, pred, .. } => {
            walk_expr(source, f);
            walk_expr(pred, f);
        }
        ExprKind::Aggregate {
            value,
            source,
            pred,
            ..
        } => {
            walk_expr(source, f);
            walk_expr(value, f);
            if let Some(p) = pred {
                walk_expr(p, f);
            }
        }
        ExprKind::Quantifier { source, pred, .. } => {
            walk_expr(source, f);
            walk_expr(pred, f);
        }
    }
}

/// Pre-order walk that keeps a type [`Scope`] current: set-construct
/// binders are bound (to the inferred element type of their source)
/// around the sub-expressions that can see them. The callback observes
/// each node with the scope of its *surrounding* context — a construct's
/// own binder is not yet bound when the construct node itself is visited.
pub(crate) fn walk_scoped(
    model: &Model,
    e: &Expr,
    scope: &mut Scope,
    f: &mut impl FnMut(&Expr, &mut Scope),
) {
    f(e, scope);
    match &e.kind {
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::Var(_) => {}
        ExprKind::Attr(base, _) => walk_scoped(model, base, scope, f),
        ExprKind::Call(_, args) => {
            for a in args {
                walk_scoped(model, a, scope, f);
            }
        }
        ExprKind::Unary(_, inner) | ExprKind::Unique(inner) | ExprKind::CountSet(inner) => {
            walk_scoped(model, inner, scope, f)
        }
        ExprKind::Binary(_, l, r) => {
            walk_scoped(model, l, scope, f);
            walk_scoped(model, r, scope, f);
        }
        ExprKind::SetComp {
            binder,
            source,
            pred,
        } => {
            walk_scoped(model, source, scope, f);
            let et = elem_of(model, source, scope);
            scope.push();
            scope.bind(&binder.name, et);
            walk_scoped(model, pred, scope, f);
            scope.pop();
        }
        ExprKind::Aggregate {
            value,
            binder,
            source,
            pred,
            ..
        } => {
            walk_scoped(model, source, scope, f);
            let et = elem_of(model, source, scope);
            scope.push();
            scope.bind(&binder.name, et);
            walk_scoped(model, value, scope, f);
            if let Some(p) = pred {
                walk_scoped(model, p, scope, f);
            }
            scope.pop();
        }
        ExprKind::Quantifier {
            binder,
            source,
            pred,
            ..
        } => {
            walk_scoped(model, source, scope, f);
            let et = elem_of(model, source, scope);
            scope.push();
            scope.bind(&binder.name, et);
            walk_scoped(model, pred, scope, f);
            scope.pop();
        }
    }
}

/// The element type of a set-valued source expression, `Type::Error`
/// when inference fails (rules must treat `Error` as "unknown").
pub(crate) fn elem_of(model: &Model, source: &Expr, scope: &mut Scope) -> Type {
    match infer_expr_type(model, source, scope) {
        Ok(Type::Set(e)) => *e,
        _ => Type::Error,
    }
}

/// Resolve a syntactic type annotation against the model.
pub(crate) fn decl_ty(model: &Model, te: &TypeExpr) -> Type {
    match &te.kind {
        TypeExprKind::Named(n) => model.named_type(n).unwrap_or(Type::Error),
        TypeExprKind::Setof(n) => model
            .named_type(n)
            .map(|t| Type::Set(Box::new(t)))
            .unwrap_or(Type::Error),
    }
}

/// Bind declaration parameters into the current scope frame.
pub(crate) fn bind_params(model: &Model, scope: &mut Scope, params: &[Param]) {
    for p in params {
        scope.bind(&p.name.name, decl_ty(model, &p.ty));
    }
}

/// Does `e` reference the variable `name` freely (i.e. not under a
/// construct that rebinds the same name)?
pub(crate) fn uses_var(e: &Expr, name: &str) -> bool {
    match &e.kind {
        ExprKind::Var(n) => n == name,
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::BoolLit(_) => false,
        ExprKind::Attr(base, _) => uses_var(base, name),
        ExprKind::Call(_, args) => args.iter().any(|a| uses_var(a, name)),
        ExprKind::Unary(_, inner) | ExprKind::Unique(inner) | ExprKind::CountSet(inner) => {
            uses_var(inner, name)
        }
        ExprKind::Binary(_, l, r) => uses_var(l, name) || uses_var(r, name),
        ExprKind::SetComp {
            binder,
            source,
            pred,
        } => uses_var(source, name) || (binder.name != name && uses_var(pred, name)),
        ExprKind::Aggregate {
            value,
            binder,
            source,
            pred,
            ..
        } => {
            uses_var(source, name)
                || (binder.name != name
                    && (uses_var(value, name)
                        || pred.as_deref().is_some_and(|p| uses_var(p, name))))
        }
        ExprKind::Quantifier {
            binder,
            source,
            pred,
            ..
        } => uses_var(source, name) || (binder.name != name && uses_var(pred, name)),
    }
}
