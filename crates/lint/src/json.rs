//! Machine-readable (JSON) rendering of a lint report.
//!
//! Hand-rolled serialization: the workspace's `serde` shim is
//! marker-only (no registry access), so the renderer writes the JSON
//! text directly. The schema is stable, versioned by the top-level
//! `"schema"` field, and covered by golden tests:
//!
//! ```json
//! {
//!   "schema":     1,
//!   "findings":   [{"rule", "message", "owner", "verdict", "line", "col",
//!                   "start", "end", "notes": [{"message", "line", "col",
//!                   "start", "end"}]}],
//!   "suppressed": [ same shape ],
//!   "proofs":     [ same shape; verdict is always "proven-safe" ],
//!   "costs":      [{"property", "ir_nodes", "indexed_loads", "scan_constructs",
//!                   "cached_subtrees", "max_loop_depth", "estimated_units"}]
//! }
//! ```
//!
//! `"verdict"` is `null` for syntactic findings; flow-decided findings
//! carry the verdict tag (`"proven-div-by-zero"`, `"possible"`,
//! `"proven"`, `"proven-safe"`). `"notes"` is the dominating span
//! chain (proving guards, unsatisfiable conditions, mismatched
//! operands).

use crate::{Finding, LintReport};
use asl_core::SourceMap;
use std::fmt::Write;

/// Escape a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding, map: &SourceMap) -> String {
    let loc = map.locate(f.span.start);
    let verdict = match f.verdict {
        Some(v) => format!("\"{}\"", escape(v)),
        None => "null".to_string(),
    };
    let notes = f
        .notes
        .iter()
        .map(|n| {
            let nloc = map.locate(n.span.start);
            format!(
                "{{\"message\":\"{}\",\"line\":{},\"col\":{},\"start\":{},\"end\":{}}}",
                escape(&n.message),
                nloc.line,
                nloc.col,
                n.span.start,
                n.span.end
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"rule\":\"{}\",\"message\":\"{}\",\"owner\":\"{}\",\"verdict\":{},\
         \"line\":{},\"col\":{},\"start\":{},\"end\":{},\"notes\":[{}]}}",
        escape(f.rule),
        escape(&f.message),
        escape(&f.owner),
        verdict,
        loc.line,
        loc.col,
        f.span.start,
        f.span.end,
        notes
    )
}

/// Render a full report as a single JSON object.
pub fn report_to_json(report: &LintReport, source: &str) -> String {
    let map = SourceMap::new(source);
    let list = |fs: &[Finding]| {
        fs.iter()
            .map(|f| finding_json(f, &map))
            .collect::<Vec<_>>()
            .join(",")
    };
    let costs = report
        .costs
        .iter()
        .map(|c| {
            format!(
                "{{\"property\":\"{}\",\"ir_nodes\":{},\"indexed_loads\":{},\
                 \"scan_constructs\":{},\"cached_subtrees\":{},\
                 \"max_loop_depth\":{},\"estimated_units\":{}}}",
                escape(&c.property),
                c.ir_nodes,
                c.indexed_loads,
                c.scan_constructs,
                c.cached_subtrees,
                c.max_loop_depth,
                c.estimated_units
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"schema\":1,\"findings\":[{}],\"suppressed\":[{}],\"proofs\":[{}],\"costs\":[{}]}}",
        list(&report.findings),
        list(&report.suppressed),
        list(&report.proofs),
        costs
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
