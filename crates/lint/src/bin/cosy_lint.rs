//! `cosy_lint` — command-line front end for the `kojak-lint` pass.
//!
//! Lints one or more ASL specification files and prints a text or JSON
//! report per file. By default the `kojak-flow` abstract interpreter
//! runs over the compiled IR, so findings carry proven verdicts;
//! `--no-flow` falls back to the purely syntactic rules.
//!
//! Exit codes form a stable contract (see `--help`):
//!
//! * `0` — every file is clean (no active finding),
//! * `1` — at least one active finding (warn level),
//! * `2` — a file could not be read, parsed or type-checked.

use std::process::ExitCode;

const USAGE: &str = "\
cosy_lint — static analysis for COSY/ASL specifications

USAGE:
    cosy_lint [OPTIONS] <FILE>...

OPTIONS:
    --json          emit the report as JSON (schema 1) instead of text
    --costs         also print the static per-property cost ranking
    --flow          run the dataflow (abstract interpretation) pass [default]
    --no-flow       syntactic rules only; flow-only rules stay silent
    --with-suite    prepend the COSY data model to each file before linting
    --rules         list every rule with its description and exit
    -h, --help      print this help and exit

EXIT CODES:
    0    all files are clean: no active lint finding
    1    at least one active finding (findings are warnings, never errors)
    2    a file could not be read, parsed or type-checked (or bad usage)
";

struct Opts {
    json: bool,
    costs: bool,
    flow: bool,
    with_suite: bool,
    files: Vec<String>,
}

/// A command-line usage error; rendered above USAGE and exits with 2.
enum UsageError {
    UnknownOption(String),
    NoInputFiles,
}

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UsageError::UnknownOption(flag) => write!(f, "unknown option `{flag}`"),
            UsageError::NoInputFiles => write!(f, "no input files"),
        }
    }
}

fn parse_args(args: &[String]) -> Result<Option<Opts>, UsageError> {
    let mut opts = Opts {
        json: false,
        costs: false,
        flow: true,
        with_suite: false,
        files: Vec::new(),
    };
    for a in args {
        match a.as_str() {
            "--json" => opts.json = true,
            "--costs" => opts.costs = true,
            "--flow" => opts.flow = true,
            "--no-flow" => opts.flow = false,
            "--with-suite" => opts.with_suite = true,
            "--rules" => {
                for (name, desc) in lint::rule_catalog() {
                    println!("{name:<24} {desc}");
                }
                return Ok(None);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            flag if flag.starts_with('-') => {
                return Err(UsageError::UnknownOption(flag.to_string()));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() {
        return Err(UsageError::NoInputFiles);
    }
    Ok(Some(opts))
}

/// Lint one file; returns the exit code it contributes.
fn run_file(path: &str, opts: &Opts) -> u8 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cosy_lint: {path}: {e}");
            return 2;
        }
    };
    let source = if opts.with_suite {
        format!("{}\n{text}", asl_eval::COSY_DATA_MODEL)
    } else {
        text
    };
    let spec = match asl_core::parse_and_check(&source) {
        Ok(s) => s,
        Err(diags) => {
            eprint!("{}", diags.render(&source));
            return 2;
        }
    };
    let report = lint::lint_with(&spec, &source, opts.flow);
    if opts.json {
        println!("{}", report.to_json(&source));
    } else {
        print!("{}", report.render_text(&source));
        if opts.costs {
            print!("{}", report.render_costs());
        }
    }
    u8::from(!report.is_clean())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cosy_lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut code = 0u8;
    for (i, file) in opts.files.iter().enumerate() {
        if opts.files.len() > 1 && !opts.json {
            if i > 0 {
                println!();
            }
            println!("==> {file}");
        }
        code = code.max(run_file(file, &opts));
    }
    ExitCode::from(code)
}
