//! # `kojak-lint` — static analysis for COSY/ASL specifications
//!
//! A span-precise lint pass over a type-checked specification
//! ([`asl_core::CheckedSpec`]) *and* its compiled slot IR
//! ([`asl_eval::CompiledSpec`]). Two rule tiers:
//!
//! * **Correctness lints** — dead declarations (constants, helper
//!   functions, fully isolated classes/enums), identifier shadowing,
//!   constant conditions and unreachable guarded arms, overlapping
//!   `MAX` arms, divisions by a provably-zero denominator, unit
//!   mismatches, and whole-suite property subsumption.
//! * **Performance lints** — grounded in the compiled engine's actual
//!   lowering rules (`asl_eval::compile::shape`) and the COSY store's
//!   native index coverage (`asl_eval::native_index`): two-key
//!   `Run == t AND Type == X` filters the store cannot serve with one
//!   indexed load, full scans where an indexed load exists but the
//!   conjunct order hides it, and per-element set clones. A static
//!   [IR cost estimator](asl_eval::CompiledSpec::property_costs) ranks
//!   properties by estimated evaluation cost.
//!
//! By default the pass runs the `kojak-flow` abstract interpreter over
//! the compiled IR ([`flow::analyze`]) and the semantic rules consume
//! its results: division sites are triaged into
//! proven-safe / possible / proven-div-by-zero verdicts,
//! unreachable/overlapping arms are decided by guard implication over
//! arbitrary expressions (not just threshold literals), unit mismatches
//! are reported from the inferred dimension lattice, and flow-proven
//! cardinality bounds sharpen the cost ranking. [`lint_with`] with
//! `run_flow = false` falls back to the purely syntactic rules.
//!
//! Every [`Finding`] carries a real [`Span`], an optional flow
//! *verdict* tag, and [`Note`]s pointing at the dominating spans (the
//! guard that proves a division safe, the condition proven
//! unsatisfiable). Reports render as rustc-style caret snippets
//! ([`LintReport::render_text`]) or JSON ([`LintReport::to_json`]).
//! Findings can be suppressed per rule with a file-wide comment
//! directive:
//!
//! ```text
//! // cosy-lint: allow(residual-filter-scan): accepted until the store
//! // serves two-key filters natively.
//! ```
//!
//! A directive that suppresses nothing is itself reported
//! (`unused-allow`), so stale suppressions cannot linger silently.
//!
//! The [`LintGate`] integrates the pass into engine construction:
//! `Warn` surfaces findings, `Deny` refuses to load a dirty suite —
//! including suites with a proven division by zero or a unit mismatch.
//!
//! ```
//! use asl_core::parse_and_check;
//!
//! let src = "class TestRun { int NoPe; }\n\
//!            class Dead { int X; }\n\
//!            float Answer = 42.0;\n\
//!            PROPERTY P(TestRun t) {\n\
//!                CONDITION: t.NoPe > 1;\n\
//!                CONFIDENCE: 1;\n\
//!                SEVERITY: 1.0;\n\
//!            }";
//! let spec = parse_and_check(src).unwrap();
//! let report = lint::lint(&spec, src);
//! let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
//! assert!(rules.contains(&"unused-type"));     // class Dead
//! assert!(rules.contains(&"unused-constant")); // Answer
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod rules;

pub use flow::fold;

use asl_core::{CheckedSpec, Diagnostic, Diagnostics, SourceMap, Span};
use asl_eval::PropCost;
use std::collections::HashSet;
use std::fmt;
use std::fmt::Write as _;

/// A secondary span attached to a finding: part of the dominating span
/// chain (the guard condition that proves a division safe, the
/// condition an unreachable arm is guarded by, the two operands of a
/// unit mismatch).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Note {
    /// The span the note points at.
    pub span: Span,
    /// What that span contributes to the finding.
    pub message: String,
}

/// One lint finding, attributed to a rule and a source span.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Finding {
    /// Stable kebab-case rule name (also the `allow(...)` key).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
    /// The most precise source span the rule could attribute.
    pub span: Span,
    /// The enclosing declaration (`property X`, `function F`, …), or
    /// empty when the finding is not owned by one declaration.
    pub owner: String,
    /// Flow verdict tag, when the finding was decided by the abstract
    /// interpreter: `"proven-div-by-zero"`, `"possible"`, `"proven"`
    /// (unreachable arms, overlaps, unit mismatches, subsumption) or
    /// `"proven-safe"` (proof entries). `None` for syntactic findings.
    pub verdict: Option<&'static str>,
    /// The dominating span chain, innermost first.
    pub notes: Vec<Note>,
}

/// The result of one lint run: active findings, findings suppressed by
/// `allow(...)` directives, flow proofs, and the static per-property
/// cost ranking.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Findings not suppressed by any directive, in source order.
    pub findings: Vec<Finding>,
    /// Findings matched by an `allow(...)` directive, in source order.
    pub suppressed: Vec<Finding>,
    /// Flow proofs: sites a syntactic rule would have flagged that the
    /// abstract interpreter proved safe (verdict `"proven-safe"`).
    /// Informational — proofs never make a report dirty.
    pub proofs: Vec<Finding>,
    /// Per-property static cost estimates, most expensive first. When
    /// the flow pass ran, proven cardinality bounds sharpen the
    /// estimates.
    pub costs: Vec<PropCost>,
}

impl LintReport {
    /// True when no active finding remains.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the active findings as rustc-style caret snippets against
    /// the source, followed by proof lines and a one-line summary.
    pub fn render_text(&self, source: &str) -> String {
        let map = SourceMap::new(source);
        let mut out = String::new();
        for f in &self.findings {
            let d = Diagnostic::warning(f.span, format!("[{}] {}", f.rule, f.message));
            out.push_str(&d.render_snippet(source, &map));
            if let Some(v) = f.verdict {
                let _ = writeln!(out, "   = verdict: {v}");
            }
            for n in &f.notes {
                let loc = map.locate(n.span.start);
                let _ = writeln!(out, "   = note (line {}): {}", loc.line, n.message);
            }
            if !f.owner.is_empty() {
                let _ = writeln!(out, "   = in {}", f.owner);
            }
        }
        for p in &self.proofs {
            let loc = map.locate(p.span.start);
            let owner = if p.owner.is_empty() {
                String::new()
            } else {
                format!(" (in {})", p.owner)
            };
            let _ = writeln!(
                out,
                "proof: [{}] line {}:{}: {}{}",
                p.rule, loc.line, loc.col, p.message, owner
            );
        }
        let n = self.findings.len();
        let mut extras = Vec::new();
        if !self.suppressed.is_empty() {
            extras.push(format!(
                "{} suppressed by allow directives",
                self.suppressed.len()
            ));
        }
        if !self.proofs.is_empty() {
            extras.push(format!("{} proven safe", self.proofs.len()));
        }
        let extras = if extras.is_empty() {
            String::new()
        } else {
            format!(" ({})", extras.join(", "))
        };
        if n == 0 {
            let _ = writeln!(out, "lint: clean{extras}");
        } else {
            let _ = writeln!(out, "lint: {n} warning{}{extras}", plural(n));
        }
        out
    }

    /// Render the static cost ranking as an aligned text table.
    pub fn render_costs(&self) -> String {
        let mut out = String::from(
            "property                       est.units  ir  idx-loads  scans  cached  depth\n",
        );
        for c in &self.costs {
            let _ = writeln!(
                out,
                "{:<30} {:>9}  {:>2}  {:>9}  {:>5}  {:>6}  {:>5}",
                c.property,
                c.estimated_units,
                c.ir_nodes,
                c.indexed_loads,
                c.scan_constructs,
                c.cached_subtrees,
                c.max_loop_depth
            );
        }
        out
    }

    /// Render the full report (findings, suppressions, proofs, costs)
    /// as JSON.
    pub fn to_json(&self, source: &str) -> String {
        json::report_to_json(self, source)
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// One file-wide `cosy-lint: allow(rule)` directive occurrence, with
/// the span of the rule name inside the directive (so an unused
/// directive can be reported at a real location).
#[derive(Debug, Clone)]
struct AllowDirective {
    rule: String,
    span: Span,
}

/// Scan the source for `cosy-lint: allow(...)` directives (inside
/// comments; the scan is line-based and does not require the directive
/// to parse as ASL).
fn allow_directives(source: &str) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    let mut line_start = 0usize;
    for line in source.split_inclusive('\n') {
        let mut scan = || -> Option<()> {
            let idx = line.find("cosy-lint:")?;
            let rest = &line[idx + "cosy-lint:".len()..];
            let open = rest.find("allow(")?;
            // Byte offset of the first character inside `allow(...)`.
            let inner_start = idx + "cosy-lint:".len() + open + "allow(".len();
            let inner = &line[inner_start..];
            let close = inner.find(')')?;
            let mut at = inner_start;
            for rule in inner[..close].split(',') {
                let trimmed = rule.trim();
                if !trimmed.is_empty() {
                    let lead = rule.len() - rule.trim_start().len();
                    let start = (line_start + at + lead) as u32;
                    out.push(AllowDirective {
                        rule: trimmed.to_string(),
                        span: Span::new(start, start + trimmed.len() as u32),
                    });
                }
                at += rule.len() + 1; // past the comma
            }
            None
        };
        let _ = scan();
        line_start += line.len();
    }
    out
}

/// Run every registered rule over a checked spec, with the flow pass
/// enabled (see [`lint_with`]).
pub fn lint(spec: &CheckedSpec, source: &str) -> LintReport {
    lint_with(spec, source, true)
}

/// Run every registered rule over a checked spec.
///
/// `source` must be the text the spec was parsed from: it feeds the
/// `allow(...)` directive scan and all span rendering. Checker warnings
/// recorded on the success path ([`CheckedSpec::warnings`]) are included
/// as `checker-warning` findings, so one gate covers both passes. The
/// spec is also compiled (to the slot IR) for the static cost ranking.
///
/// With `run_flow`, the `kojak-flow` abstract interpreter analyzes the
/// compiled IR first and the semantic rules (div-by-zero triage,
/// unreachable/overlapping arms, unit mismatch, property subsumption)
/// consume its results; without it, the syntactic fallback rules run
/// and the flow-only rules stay silent.
pub fn lint_with(spec: &CheckedSpec, source: &str, run_flow: bool) -> LintReport {
    let comp = asl_eval::compile(spec);
    let flow_report = run_flow.then(|| flow::analyze(spec, &comp));
    let cx = rules::LintCx::with_flow(spec, flow_report.as_ref());
    let mut findings: Vec<Finding> = spec
        .warnings
        .iter()
        .map(|w| Finding {
            rule: "checker-warning",
            message: w.message.clone(),
            span: w.span,
            owner: "checker".to_string(),
            ..Finding::default()
        })
        .collect();
    for rule in rules::all() {
        rule.run(&cx, &mut findings);
    }
    let by_span = |a: &Finding, b: &Finding| {
        (a.span.start, a.span.end, a.rule).cmp(&(b.span.start, b.span.end, b.rule))
    };
    findings.sort_by(by_span);

    // Proof entries (verdict "proven-safe") are informational: they
    // never dirty the report and are not subject to allow directives.
    let (proofs, findings): (Vec<_>, Vec<_>) = findings
        .into_iter()
        .partition(|f| f.verdict == Some("proven-safe"));

    let directives = allow_directives(source);
    let allowed: HashSet<&str> = directives.iter().map(|d| d.rule.as_str()).collect();
    let (mut suppressed, mut findings): (Vec<_>, Vec<_>) =
        findings.into_iter().partition(|f| allowed.contains(f.rule));

    // `unused-allow`: a directive that suppressed nothing is itself a
    // finding, reported at the rule name inside the directive. An
    // `allow(unused-allow)` directive suppresses those in turn — and is
    // itself unused when there was nothing to suppress.
    let used: HashSet<&str> = suppressed.iter().map(|f| f.rule).collect();
    let as_unused = |d: &AllowDirective| Finding {
        rule: "unused-allow",
        message: format!(
            "allow({}) suppresses no findings; remove the stale directive",
            d.rule
        ),
        span: d.span,
        ..Finding::default()
    };
    let mut unused: Vec<Finding> = directives
        .iter()
        .filter(|d| d.rule != "unused-allow" && !used.contains(d.rule.as_str()))
        .map(as_unused)
        .collect();
    let meta: Vec<&AllowDirective> = directives
        .iter()
        .filter(|d| d.rule == "unused-allow")
        .collect();
    if unused.is_empty() {
        unused.extend(meta.into_iter().map(as_unused));
    } else if !meta.is_empty() {
        suppressed.append(&mut unused);
    }
    findings.append(&mut unused);
    findings.sort_by(by_span);
    suppressed.sort_by(by_span);

    let mut costs = match &flow_report {
        Some(fr) => comp.property_costs_with_bounds(&|n| fr.loop_bound(n)),
        None => comp.property_costs(),
    };
    costs.sort_by_key(|c| std::cmp::Reverse(c.estimated_units));

    LintReport {
        findings,
        suppressed,
        proofs,
        costs,
    }
}

/// Parse, check and lint a source text in one step. Front-end errors
/// (parse or type-check) are returned as [`Diagnostics`]; lint findings
/// are never errors and land in the report.
pub fn lint_source(source: &str) -> Result<LintReport, Diagnostics> {
    let spec = asl_core::parse_and_check(source)?;
    Ok(lint(&spec, source))
}

/// Name and one-line description of every registered rule (plus the
/// pseudo-rules handled outside the registry), for `--help`-style
/// listings.
pub fn rule_catalog() -> Vec<(&'static str, &'static str)> {
    let mut out = vec![
        (
            "checker-warning",
            "warning recorded by the type checker on the success path",
        ),
        (
            "unused-allow",
            "allow(...) directive that suppresses no findings",
        ),
    ];
    out.extend(rules::all().iter().map(|r| (r.name(), r.description())));
    out
}

/// How strictly engine construction treats lint findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintGate {
    /// Do not run the lint pass at all.
    Off,
    /// Run the pass and surface findings, but accept the suite.
    #[default]
    Warn,
    /// Refuse to load a suite with any active finding — including
    /// proven divisions by zero and unit mismatches from the flow pass.
    Deny,
}

/// Why a suite was rejected by a [`LintGate::Deny`] gate.
#[derive(Debug, Clone)]
pub struct GateRejection {
    /// The active findings that caused the rejection.
    pub findings: Vec<Finding>,
    /// The full caret-snippet rendering of those findings.
    pub rendered: String,
}

impl fmt::Display for GateRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lint gate rejected the specification: {} finding{}",
            self.findings.len(),
            plural(self.findings.len())
        )
    }
}

impl std::error::Error for GateRejection {}

impl LintGate {
    /// Apply the gate to a report. `Deny` with any active finding is a
    /// rejection; `Warn` and `Off` always pass (the caller decides how
    /// to surface `Warn` findings).
    pub fn evaluate(self, report: &LintReport, source: &str) -> Result<(), GateRejection> {
        match self {
            LintGate::Deny if !report.is_clean() => Err(GateRejection {
                findings: report.findings.clone(),
                rendered: report.render_text(source),
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIRTY: &str = "class TestRun { int NoPe; }\n\
                         float Unused = 1.0;\n\
                         PROPERTY P(TestRun t) {\n\
                             CONDITION: t.NoPe > 0;\n\
                             CONFIDENCE: 1;\n\
                             SEVERITY: 1.0;\n\
                         }";

    #[test]
    fn allow_directive_suppresses_by_rule() {
        let with_allow = format!("// cosy-lint: allow(unused-constant): kept\n{DIRTY}");
        let report = lint_source(&with_allow).unwrap();
        assert!(report.is_clean(), "unexpected: {:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].rule, "unused-constant");
    }

    #[test]
    fn unused_allow_directive_is_reported_at_its_span() {
        let src = format!("// cosy-lint: allow(shadowing): nothing shadows\n{DIRTY}");
        let report = lint_source(&src).unwrap();
        let ua: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == "unused-allow")
            .collect();
        assert_eq!(ua.len(), 1, "{:?}", report.findings);
        assert_eq!(ua[0].span.slice(&src), "shadowing");
        // ... and allow(unused-allow) suppresses it.
        let src2 = format!("// cosy-lint: allow(unused-allow)\n{src}");
        let report2 = lint_source(&src2).unwrap();
        assert!(!report2.findings.iter().any(|f| f.rule == "unused-allow"));
        assert!(report2.suppressed.iter().any(|f| f.rule == "unused-allow"));
        // A lone allow(unused-allow) with nothing to suppress is itself
        // unused.
        let src3 = format!("// cosy-lint: allow(unused-allow)\n{DIRTY}");
        let report3 = lint_source(&src3).unwrap();
        assert!(report3.findings.iter().any(|f| f.rule == "unused-allow"));
    }

    #[test]
    fn gate_deny_rejects_and_warn_passes() {
        let report = lint_source(DIRTY).unwrap();
        assert!(!report.is_clean());
        assert!(LintGate::Warn.evaluate(&report, DIRTY).is_ok());
        let err = LintGate::Deny.evaluate(&report, DIRTY).unwrap_err();
        assert_eq!(err.findings.len(), report.findings.len());
        assert!(err.rendered.contains("unused-constant"));
    }

    #[test]
    fn findings_are_source_ordered_with_real_spans() {
        let report = lint_source(DIRTY).unwrap();
        for f in &report.findings {
            assert_ne!(f.span, Span::default(), "{}: span missing", f.rule);
        }
        let starts: Vec<u32> = report.findings.iter().map(|f| f.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn cost_ranking_is_descending() {
        let report = lint_source(DIRTY).unwrap();
        assert_eq!(report.costs.len(), 1);
        let json = report.to_json(DIRTY);
        assert!(json.contains("\"property\":\"P\""));
        assert!(json.contains("\"schema\":1"));
    }

    #[test]
    fn no_flow_fallback_matches_syntactic_rules() {
        let spec = asl_core::parse_and_check(DIRTY).unwrap();
        let syntactic = lint_with(&spec, DIRTY, false);
        assert!(!syntactic.is_clean());
        assert!(syntactic.proofs.is_empty());
    }
}
