//! # `kojak-lint` — static analysis for COSY/ASL specifications
//!
//! A span-precise lint pass over a type-checked specification
//! ([`asl_core::CheckedSpec`]) *and* its compiled slot IR
//! ([`asl_eval::CompiledSpec`]). Two rule tiers:
//!
//! * **Correctness lints** — dead declarations (constants, helper
//!   functions, fully isolated classes/enums), identifier shadowing,
//!   constant conditions and unreachable guarded arms (by constant
//!   folding), overlapping `MAX` arms (by threshold-interval
//!   implication), and divisions whose denominator provably can be zero.
//! * **Performance lints** — grounded in the compiled engine's actual
//!   lowering rules (`asl_eval::compile::shape`) and the COSY store's
//!   native index coverage (`asl_eval::native_index`): two-key
//!   `Run == t AND Type == X` filters the store cannot serve with one
//!   indexed load, full scans where an indexed load exists but the
//!   conjunct order hides it, and per-element set clones. A static
//!   [IR cost estimator](asl_eval::CompiledSpec::property_costs) ranks
//!   properties by estimated evaluation cost.
//!
//! Every [`Finding`] carries a real [`Span`]; reports render as
//! rustc-style caret snippets ([`LintReport::render_text`]) or JSON
//! ([`LintReport::to_json`]). Findings can be suppressed per rule with a
//! file-wide comment directive:
//!
//! ```text
//! // cosy-lint: allow(residual-filter-scan): accepted until the store
//! // serves two-key filters natively.
//! ```
//!
//! The [`LintGate`] integrates the pass into engine construction:
//! `Warn` surfaces findings, `Deny` refuses to load a dirty suite.
//!
//! ```
//! use asl_core::parse_and_check;
//!
//! let src = "class TestRun { int NoPe; }\n\
//!            class Dead { int X; }\n\
//!            float Answer = 42.0;\n\
//!            PROPERTY P(TestRun t) {\n\
//!                CONDITION: t.NoPe > 1;\n\
//!                CONFIDENCE: 1;\n\
//!                SEVERITY: 1.0;\n\
//!            }";
//! let spec = parse_and_check(src).unwrap();
//! let report = lint::lint(&spec, src);
//! let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
//! assert!(rules.contains(&"unused-type"));     // class Dead
//! assert!(rules.contains(&"unused-constant")); // Answer
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fold;
pub mod json;
pub mod rules;

use asl_core::{CheckedSpec, Diagnostic, Diagnostics, SourceMap, Span};
use asl_eval::PropCost;
use std::collections::HashSet;
use std::fmt;
use std::fmt::Write as _;

/// One lint finding, attributed to a rule and a source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Stable kebab-case rule name (also the `allow(...)` key).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
    /// The most precise source span the rule could attribute.
    pub span: Span,
    /// The enclosing declaration (`property X`, `function F`, …), or
    /// empty when the finding is not owned by one declaration.
    pub owner: String,
}

/// The result of one lint run: active findings, findings suppressed by
/// `allow(...)` directives, and the static per-property cost ranking.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Findings not suppressed by any directive, in source order.
    pub findings: Vec<Finding>,
    /// Findings matched by an `allow(...)` directive, in source order.
    pub suppressed: Vec<Finding>,
    /// Per-property static cost estimates, most expensive first.
    pub costs: Vec<PropCost>,
}

impl LintReport {
    /// True when no active finding remains.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the active findings as rustc-style caret snippets against
    /// the source, followed by a one-line summary.
    pub fn render_text(&self, source: &str) -> String {
        let map = SourceMap::new(source);
        let mut out = String::new();
        for f in &self.findings {
            let d = Diagnostic::warning(f.span, format!("[{}] {}", f.rule, f.message));
            out.push_str(&d.render_snippet(source, &map));
            if !f.owner.is_empty() {
                let _ = writeln!(out, "   = in {}", f.owner);
            }
        }
        let n = self.findings.len();
        let m = self.suppressed.len();
        match (n, m) {
            (0, 0) => out.push_str("lint: clean\n"),
            (0, m) => {
                let _ = writeln!(out, "lint: clean ({m} suppressed by allow directives)");
            }
            (n, 0) => {
                let _ = writeln!(out, "lint: {n} warning{}", plural(n));
            }
            (n, m) => {
                let _ = writeln!(
                    out,
                    "lint: {n} warning{} ({m} suppressed by allow directives)",
                    plural(n)
                );
            }
        }
        out
    }

    /// Render the static cost ranking as an aligned text table.
    pub fn render_costs(&self) -> String {
        let mut out = String::from(
            "property                       est.units  ir  idx-loads  scans  cached  depth\n",
        );
        for c in &self.costs {
            let _ = writeln!(
                out,
                "{:<30} {:>9}  {:>2}  {:>9}  {:>5}  {:>6}  {:>5}",
                c.property,
                c.estimated_units,
                c.ir_nodes,
                c.indexed_loads,
                c.scan_constructs,
                c.cached_subtrees,
                c.max_loop_depth
            );
        }
        out
    }

    /// Render the full report (findings, suppressions, costs) as JSON.
    pub fn to_json(&self, source: &str) -> String {
        json::report_to_json(self, source)
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Rule names allowed by file-wide `cosy-lint: allow(...)` directives in
/// the source (inside comments; the scan is line-based and does not
/// require the directive to parse as ASL).
fn allowed_rules(source: &str) -> HashSet<String> {
    let mut out = HashSet::new();
    for line in source.lines() {
        let Some(idx) = line.find("cosy-lint:") else {
            continue;
        };
        let rest = &line[idx + "cosy-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let inner = &rest[open + "allow(".len()..];
        let Some(close) = inner.find(')') else {
            continue;
        };
        for rule in inner[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.insert(rule.to_string());
            }
        }
    }
    out
}

/// Run every registered rule over a checked spec.
///
/// `source` must be the text the spec was parsed from: it feeds the
/// `allow(...)` directive scan and all span rendering. Checker warnings
/// recorded on the success path ([`CheckedSpec::warnings`]) are included
/// as `checker-warning` findings, so one gate covers both passes. The
/// spec is also compiled (to the slot IR) for the static cost ranking.
pub fn lint(spec: &CheckedSpec, source: &str) -> LintReport {
    let cx = rules::LintCx::new(spec);
    let mut findings: Vec<Finding> = spec
        .warnings
        .iter()
        .map(|w| Finding {
            rule: "checker-warning",
            message: w.message.clone(),
            span: w.span,
            owner: "checker".to_string(),
        })
        .collect();
    for rule in rules::all() {
        rule.run(&cx, &mut findings);
    }
    findings.sort_by(|a, b| {
        (a.span.start, a.span.end, a.rule).cmp(&(b.span.start, b.span.end, b.rule))
    });

    let allowed = allowed_rules(source);
    let (suppressed, findings): (Vec<_>, Vec<_>) =
        findings.into_iter().partition(|f| allowed.contains(f.rule));

    let mut costs = asl_eval::compile(spec).property_costs();
    costs.sort_by_key(|c| std::cmp::Reverse(c.estimated_units));

    LintReport {
        findings,
        suppressed,
        costs,
    }
}

/// Parse, check and lint a source text in one step. Front-end errors
/// (parse or type-check) are returned as [`Diagnostics`]; lint findings
/// are never errors and land in the report.
pub fn lint_source(source: &str) -> Result<LintReport, Diagnostics> {
    let spec = asl_core::parse_and_check(source)?;
    Ok(lint(&spec, source))
}

/// Name and one-line description of every registered rule (plus the
/// pseudo-rule for checker warnings), for `--help`-style listings.
pub fn rule_catalog() -> Vec<(&'static str, &'static str)> {
    let mut out = vec![(
        "checker-warning",
        "warning recorded by the type checker on the success path",
    )];
    out.extend(rules::all().iter().map(|r| (r.name(), r.description())));
    out
}

/// How strictly engine construction treats lint findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintGate {
    /// Do not run the lint pass at all.
    Off,
    /// Run the pass and surface findings, but accept the suite.
    #[default]
    Warn,
    /// Refuse to load a suite with any active finding.
    Deny,
}

/// Why a suite was rejected by a [`LintGate::Deny`] gate.
#[derive(Debug, Clone)]
pub struct GateRejection {
    /// The active findings that caused the rejection.
    pub findings: Vec<Finding>,
    /// The full caret-snippet rendering of those findings.
    pub rendered: String,
}

impl fmt::Display for GateRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lint gate rejected the specification: {} finding{}",
            self.findings.len(),
            plural(self.findings.len())
        )
    }
}

impl std::error::Error for GateRejection {}

impl LintGate {
    /// Apply the gate to a report. `Deny` with any active finding is a
    /// rejection; `Warn` and `Off` always pass (the caller decides how
    /// to surface `Warn` findings).
    pub fn evaluate(self, report: &LintReport, source: &str) -> Result<(), GateRejection> {
        match self {
            LintGate::Deny if !report.is_clean() => Err(GateRejection {
                findings: report.findings.clone(),
                rendered: report.render_text(source),
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIRTY: &str = "class TestRun { int NoPe; }\n\
                         float Unused = 1.0;\n\
                         PROPERTY P(TestRun t) {\n\
                             CONDITION: t.NoPe > 0;\n\
                             CONFIDENCE: 1;\n\
                             SEVERITY: 1.0;\n\
                         }";

    #[test]
    fn allow_directive_suppresses_by_rule() {
        let with_allow = format!("// cosy-lint: allow(unused-constant): kept\n{DIRTY}");
        let report = lint_source(&with_allow).unwrap();
        assert!(report.is_clean(), "unexpected: {:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].rule, "unused-constant");
    }

    #[test]
    fn gate_deny_rejects_and_warn_passes() {
        let report = lint_source(DIRTY).unwrap();
        assert!(!report.is_clean());
        assert!(LintGate::Warn.evaluate(&report, DIRTY).is_ok());
        let err = LintGate::Deny.evaluate(&report, DIRTY).unwrap_err();
        assert_eq!(err.findings.len(), report.findings.len());
        assert!(err.rendered.contains("unused-constant"));
    }

    #[test]
    fn findings_are_source_ordered_with_real_spans() {
        let report = lint_source(DIRTY).unwrap();
        for f in &report.findings {
            assert_ne!(f.span, Span::default(), "{}: span missing", f.rule);
        }
        let starts: Vec<u32> = report.findings.iter().map(|f| f.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn cost_ranking_is_descending() {
        let report = lint_source(DIRTY).unwrap();
        assert_eq!(report.costs.len(), 1);
        let json = report.to_json(DIRTY);
        assert!(json.contains("\"property\":\"P\""));
    }
}
