// Golden fixture: division by a provably-possibly-zero denominator — a
// constant folding to zero, a COUNT over a possibly-empty set, and a
// structurally-equal subtraction. The guarded SEVERITY arm divides by N
// under a condition that proves N nonzero, so it stays quiet.

float Zero = 3.0 - 3.0;

Property DivTrouble(Region r, TestRun t, Region Basis) {
    LET int N = COUNT(r.TotTimes);
        float FromConst = 1.0 / Zero;
        float PerRecord = Duration(r, t) / N;
        float Wild = 1.0 / (Duration(r, t) - Duration(r, t))
    IN
    CONDITION: (nonempty) N > 0;
    CONFIDENCE: 1;
    SEVERITY: MAX((nonempty) -> PerRecord * Wild * FromConst / N / Duration(Basis, t));
}
