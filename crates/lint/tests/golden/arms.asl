// Golden fixture: severity-arm analysis — a condition that constant-folds
// to TRUE, one that folds to FALSE (making its arm unreachable), and a
// pair of threshold conditions where one implies the other (overlapping
// guarded arms in both the CONFIDENCE and SEVERITY sections).

float AlwaysOn = 1.0;

Property ArmTrouble(Region r, TestRun t, Region Basis) {
    LET float Load = SUM(s.Incl WHERE s IN r.TotTimes AND s.Run == t)
    IN
    CONDITION: (big) Load > 10.0 OR (huge) Load > 100.0
            OR (on) AlwaysOn > 0.0 OR (never) 0.0 > 1.0;
    CONFIDENCE: MAX((big) -> 0.5, (huge) -> 0.9, (never) -> 0.2);
    SEVERITY: MAX((big) -> Load / Duration(Basis, t), (huge) -> 1.0, (on) -> 0.5);
}
