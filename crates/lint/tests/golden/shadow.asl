// Golden fixture: shadowing — a LET rebinding a global constant's name
// and a construct binder reusing an enclosing property parameter. The
// shadowed constant also becomes unused, since every reference now
// resolves to the LET.

float Scale = 4.0;

Property Shadows(Region r, TestRun t, Region Basis) {
    LET float Scale = 2.0;
        float Total = SUM(t.Incl WHERE t IN r.TotTimes)
    IN
    CONDITION: Total * Scale > 0;
    CONFIDENCE: 1;
    SEVERITY: Total / Duration(Basis, t);
}
