// Golden fixture: subsumed-property. `HighLoad`'s condition
// (COUNT > 100 AND NoPe > 0) implies `SomeLoad`'s (COUNT > 10 AND
// NoPe > 0) — its constraint intervals are subsets on the same
// canonical keys — and its constant severity is not higher, so every
// run `HighLoad` would flag, `SomeLoad` already flags at least as
// loudly. `HighLoad` is redundant.
//
// cosy-lint: allow(unused-function): the fixture does not call Duration.

Property HighLoad(Region r, TestRun t) {
    CONDITION: (hot) COUNT(r.TotTimes) > 100 AND t.NoPe > 0;
    CONFIDENCE: 1;
    SEVERITY: 0.5;
}

Property SomeLoad(Region r, TestRun t) {
    CONDITION: (warm) COUNT(r.TotTimes) > 10 AND t.NoPe > 0;
    CONFIDENCE: 1;
    SEVERITY: 0.8;
}
