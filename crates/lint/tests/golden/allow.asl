// Golden fixture: file-wide suppression. The directive below silences the
// unused-constant finding for `Tuning`; the suppressed finding still shows
// up in the JSON report's "suppressed" array and the text summary count.
//
// cosy-lint: allow(unused-constant): reserved knob for a future property.

float Tuning = 0.5;

Property Allowed(Region r, TestRun t, Region Basis) {
    CONDITION: Duration(r, t) > 0;
    CONFIDENCE: 1;
    SEVERITY: Duration(r, t) / Duration(Basis, t);
}
