// Golden fixture: the three performance lints over the store's native
// (owner, Run) indexes. `TwoKey` pays a per-element residual `Type ==`
// after the indexed load; `OneKey` is served entirely by the index and
// stays quiet; `Reordered` puts the servable `Run ==` conjunct second, so
// the whole filter degrades to a full scan. `CloneTrouble` materializes
// `c.Sums` once per outer element.

Property PerfTrouble(Region r, TestRun t, Region Basis) {
    LET float TwoKey = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
            AND tt.Type == Barrier);
        float OneKey = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t);
        float Reordered = SUM(tt.Time WHERE tt IN r.TypTimes
            AND tt.Type == Barrier AND tt.Run == t)
    IN
    CONDITION: TwoKey + OneKey + Reordered > 0;
    CONFIDENCE: 1;
    SEVERITY: TwoKey / Duration(Basis, t);
}

Property CloneTrouble(Function f, TestRun t, Region Basis) {
    LET float Worst = MAX(SUM(ct.MeanTime WHERE ct IN c.Sums) WHERE c IN f.Calls)
    IN
    CONDITION: Worst > 0;
    CONFIDENCE: 1;
    SEVERITY: Worst / Duration(Basis, t);
}
