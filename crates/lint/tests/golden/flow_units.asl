// Golden fixture: unit-mismatch. `TotalTiming.Excl`/`Incl` carry the
// time dimension and `TestRun.NoPe` the count dimension (seeded from
// the perfdata attribute schema), so comparing or adding them is a
// proven dimensional error. The division by the dimensionless literal
// stays quiet — only two *different proven* dimensions fire.
//
// cosy-lint: allow(unused-function): the fixture does not call Duration.

Property FlowUnits(TotalTiming tt, TestRun t) {
    CONDITION: (skewed) tt.Excl > t.NoPe;
    CONFIDENCE: 1;
    SEVERITY: (tt.Incl + t.NoPe) / 100.0;
}
