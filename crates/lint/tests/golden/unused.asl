// Golden fixture: dead declarations of every kind — an unused constant, a
// helper function nobody calls, a fully isolated class and an isolated
// enum. The property keeps the rest of the data model anchored.

float DeadWeight = 2.5;

float Twice(TestRun t) = t.NoPe * 2.0;

class Orphan {
    int Tag;
}

enum OrphanKind {
    Stray,
    Lost
}

Property UsesModel(Region r, TestRun t, Region Basis) {
    CONDITION: Duration(r, t) > 0;
    CONFIDENCE: 1;
    SEVERITY: Duration(r, t) / Duration(Basis, t);
}
