// Golden fixture: unused-allow. The directive below names a rule that
// produces no finding in this file, so the directive itself is
// reported — at the span of the rule name inside the directive.
//
// cosy-lint: allow(shadowing): left over from an old revision.

Property AllGood(Region r, TestRun t) {
    CONDITION: Duration(r, t) > 0.0;
    CONFIDENCE: 1;
    SEVERITY: 1.0;
}
