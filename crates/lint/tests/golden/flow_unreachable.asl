// Golden fixture: flow-proven unreachable arm with a NON-literal guard.
// `(impossible)` compares a COUNT — whose abstract range is [0, +inf) —
// against 0, so the interpreter proves the condition False even though
// constant folding cannot (the expression is not a literal). The arm it
// guards is reported unreachable with a note at the condition.
//
// cosy-lint: allow(unused-function): the fixture does not call Duration.

Property FlowUnreachable(Region r, TestRun t) {
    CONDITION: (busy) COUNT(r.TotTimes) > t.NoPe
            OR (impossible) COUNT(r.TotTimes) < 0;
    CONFIDENCE: 1;
    SEVERITY: MAX((busy) -> 1.0, (impossible) -> 0.5);
}
