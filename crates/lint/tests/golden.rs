//! Golden-file tests: one `.asl` fixture per rule family under
//! `tests/golden/`, each checked against a blessed text report
//! (`render_text`) and a blessed JSON report (`to_json`).
//!
//! Every fixture is linted with the COSY data model prepended, exactly as
//! `cosy_lint --with-suite` would do for a standalone property file, so
//! the performance rules see the store's real `(owner, Run)` indexes and
//! spans/line numbers in the goldens are offsets into the combined
//! source.
//!
//! To bless new output after an intentional change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p kojak-lint --test golden
//! ```

use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check_golden(path: &Path, actual: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|_| {
        panic!("missing golden file {path:?}; run with UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {path:?}; run with UPDATE_GOLDEN=1 to bless"
    );
}

fn run_fixture(name: &str) {
    let dir = golden_dir();
    let fixture = std::fs::read_to_string(dir.join(format!("{name}.asl"))).unwrap();
    let source = format!("{}\n{fixture}", asl_eval::COSY_DATA_MODEL);
    let report = match lint::lint_source(&source) {
        Ok(r) => r,
        Err(d) => panic!("fixture {name} does not check:\n{}", d.render(&source)),
    };
    check_golden(
        &dir.join(format!("{name}.txt")),
        &report.render_text(&source),
    );
    check_golden(&dir.join(format!("{name}.json")), &report.to_json(&source));
}

#[test]
fn golden_unused() {
    run_fixture("unused");
}

#[test]
fn golden_shadow() {
    run_fixture("shadow");
}

#[test]
fn golden_arms() {
    run_fixture("arms");
}

#[test]
fn golden_divzero() {
    run_fixture("divzero");
}

#[test]
fn golden_perf() {
    run_fixture("perf");
}

#[test]
fn golden_allow() {
    run_fixture("allow");
}

/// Regression pin for the cost lints: a two-key `Run == t AND Type == X`
/// filter over an indexed set is flagged (the `Type ==` test runs per
/// element after the indexed load), while the structurally identical
/// single-key filter — served entirely by the store's `FilterEq` index —
/// stays quiet.
#[test]
fn two_key_filter_flagged_filtereq_equivalent_quiet() {
    let prop = |filter: &str| {
        format!(
            "{}\nProperty P(Region r, TestRun t, Region Basis) {{\n\
             LET float X = SUM(tt.Time WHERE tt IN r.TypTimes AND {filter})\n\
             IN CONDITION: X > 0; CONFIDENCE: 1;\n\
             SEVERITY: X / Duration(Basis, t); }}",
            asl_eval::COSY_DATA_MODEL
        )
    };

    let two_key = prop("tt.Run == t AND tt.Type == Barrier");
    let report = lint::lint_source(&two_key).unwrap();
    let residual: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "residual-filter-scan")
        .collect();
    assert_eq!(residual.len(), 1, "{}", report.render_text(&two_key));
    assert!(
        residual[0].message.contains("Type"),
        "finding names the residual key: {}",
        residual[0].message
    );

    let one_key = prop("tt.Run == t");
    let report = lint::lint_source(&one_key).unwrap();
    assert!(
        report.is_clean(),
        "FilterEq-served filter must stay quiet:\n{}",
        report.render_text(&one_key)
    );
}

#[test]
fn golden_flow_unreachable() {
    run_fixture("flow_unreachable");
}

#[test]
fn golden_flow_units() {
    run_fixture("flow_units");
}

#[test]
fn golden_flow_subsumed() {
    run_fixture("flow_subsumed");
}

#[test]
fn golden_unused_allow() {
    run_fixture("unused_allow");
}
