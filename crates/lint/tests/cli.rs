//! End-to-end tests for the `cosy_lint` binary: the exit-code contract
//! (0 = clean, 1 = findings, 2 = front-end/IO error), the
//! `--flow`/`--no-flow` switch, and the JSON schema field.

use std::path::PathBuf;
use std::process::{Command, Output};

fn write_fixture(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("cosy_lint_test_{}_{name}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cosy_lint"))
        .args(args)
        .output()
        .expect("spawn cosy_lint")
}

const CLEAN: &str = "class TestRun { int NoPe; }\n\
                     PROPERTY P(TestRun t) {\n\
                         CONDITION: t.NoPe > 0;\n\
                         CONFIDENCE: 1;\n\
                         SEVERITY: 1.0;\n\
                     }";

const DIRTY: &str = "class TestRun { int NoPe; }\n\
                     float Unused = 1.0;\n\
                     PROPERTY P(TestRun t) {\n\
                         LET int N = t.NoPe - t.NoPe;\n\
                         IN CONDITION: t.NoPe > 0;\n\
                         CONFIDENCE: 1;\n\
                         SEVERITY: 1.0 / N;\n\
                     }";

#[test]
fn exit_zero_on_clean_file() {
    let f = write_fixture("clean.asl", CLEAN);
    let out = run(&[f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("lint: clean"));
}

#[test]
fn exit_one_on_findings_and_flow_default() {
    let f = write_fixture("dirty.asl", DIRTY);
    let out = run(&[f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    // Flow is on by default: the LET-resolved `N = t.NoPe - t.NoPe`
    // denominator is proven, not merely possible.
    assert!(text.contains("proven division by zero"), "{text}");
    assert!(text.contains("verdict: proven-div-by-zero"), "{text}");
}

#[test]
fn no_flow_falls_back_to_syntactic_wording() {
    let f = write_fixture("dirty_noflow.asl", DIRTY);
    let out = run(&["--no-flow", f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("possible division by zero"), "{text}");
    assert!(!text.contains("verdict:"), "{text}");
}

#[test]
fn json_output_carries_schema_and_verdicts() {
    let f = write_fixture("dirty_json.asl", DIRTY);
    let out = run(&["--json", f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"schema\":1"), "{json}");
    assert!(
        json.contains("\"verdict\":\"proven-div-by-zero\""),
        "{json}"
    );
}

#[test]
fn exit_two_on_missing_file_and_parse_error() {
    let out = run(&["/nonexistent/file.asl"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let f = write_fixture("broken.asl", "PROPERTY oops {");
    let out = run(&[f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let out = run(&["--definitely-not-a-flag"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn help_documents_the_exit_code_contract() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let help = String::from_utf8_lossy(&out.stdout);
    assert!(help.contains("EXIT CODES"), "{help}");
    assert!(help.contains("--no-flow"), "{help}");
    let out = run(&["--rules"]);
    assert_eq!(out.status.code(), Some(0));
    let rules = String::from_utf8_lossy(&out.stdout);
    assert!(rules.contains("unit-mismatch"), "{rules}");
    assert!(rules.contains("subsumed-property"), "{rules}");
    assert!(rules.contains("unused-allow"), "{rules}");
}
