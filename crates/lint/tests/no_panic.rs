//! parse → check → lint → cost-estimate must never panic.
//!
//! Randomized property suites layered over the real data model and the
//! standard COSY properties: random aggregates, filter shapes (indexed
//! single-key, two-key, reordered, `OR`-membership, non-equality), random
//! comparisons and thresholds, guarded arms, and denominators that hit
//! every `possible-div-by-zero` path (`E - E`, LET-bound `COUNT`, plain
//! `COUNT`). The specs are well-typed by construction; the assertion is
//! simply that the whole analysis pipeline — rules, cost model, text and
//! JSON rendering, gate evaluation — returns on all of them.

use proptest::prelude::*;

/// Tiny deterministic splitmix64 stream for spec shaping (same scheme as
/// `asl-eval`'s `compiled_equiv` generator).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

fn generated_properties(seed: u64) -> String {
    let mut rng = Rng(seed ^ 0x51c0_ffee);
    let mut out = String::new();
    for i in 0..4 {
        let agg = ["SUM", "MIN", "MAX", "AVG", "COUNT"][rng.below(5) as usize];
        let cmp = [">", "<", ">=", "<=", "==", "!="][rng.below(6) as usize];
        let ty = ["Barrier", "Lock", "PtpSend", "Broadcast", "IoRead"][rng.below(5) as usize];
        let ty2 = ["IoWrite", "Reduce", "Gather"][rng.below(3) as usize];
        let filter = match rng.below(5) {
            0 => format!("tt.Run == t AND tt.Type == {ty}"),
            1 => "tt.Run == t".to_string(),
            2 => format!("tt.Type == {ty} AND tt.Run == t"),
            3 => format!("tt.Run == t AND (tt.Type == {ty} OR tt.Type == {ty2})"),
            _ => format!("tt.Time > {:.2}", rng.f64_in(0.0, 2.0)),
        };
        let denom = match rng.below(4) {
            0 => "Duration(Basis, t)",
            1 => "N",
            2 => "(X - X)",
            _ => "COUNT(r.TotTimes)",
        };
        let t1 = rng.f64_in(0.0, 2.0);
        let t2 = rng.f64_in(0.0, 4.0);
        let conf = rng.f64_in(0.0, 1.0);
        out.push_str(&format!(
            "Property Gen{i}(Region r, TestRun t, Region Basis) {{\n\
             LET float X = {agg}(tt.Time WHERE tt IN r.TypTimes AND {filter});\n\
                 int N = COUNT(r.TotTimes)\n\
             IN CONDITION: (a) X {cmp} {t1:.2} OR (b) X > {t2:.2} OR (c) N > 0;\n\
             CONFIDENCE: MAX((a) -> 0.9, (b) -> {conf:.2});\n\
             SEVERITY: MAX((a) -> X / {denom}, (c) -> X / N);\n\
             }}\n"
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lint_and_cost_estimate_never_panic(seed in 0u64..1_000_000_000) {
        let src = format!(
            "{}\n{}\n{}",
            asl_eval::COSY_DATA_MODEL,
            cosy::suite::SUITE_PROPERTIES,
            generated_properties(seed)
        );
        let spec = asl_core::parse_and_check(&src).expect("generated spec must check");
        let report = lint::lint(&spec, &src);
        let _ = report.render_text(&src);
        let _ = report.to_json(&src);
        let _ = report.render_costs();
        let _ = lint::LintGate::Deny.evaluate(&report, &src);
    }
}
