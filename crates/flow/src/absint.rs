//! The fixpoint abstract interpreter over the compiled IR.
//!
//! [`analyze`] walks the exact slot-indexed program the compiled engine
//! executes ([`asl_eval::CompiledSpec`]) — not the AST — so every claim
//! it makes is about the code that actually runs:
//!
//! 1. **Fixpoint over declarations.** Global constants and helper
//!    functions are summarized bottom-up: summaries start at `Bottom`,
//!    are joined round-by-round (widening after a few rounds bounds the
//!    iteration), and anything still `Bottom` afterwards (dead or
//!    recursive beyond the cutoff) is topped off from its declared type.
//! 2. **Per-property pass.** Parameters are seeded from the model
//!    signature (with units from [`perfdata::attr_unit`] propagating
//!    through attribute loads), `LET`s are evaluated in order,
//!    conditions are decided three-valued, and each confidence/severity
//!    arm is re-evaluated under the *facts* of its guard — the
//!    conjunction of interval constraints the guard condition implies.
//! 3. **Verdicts.** Every division/modulo site gets a [`DivVerdict`];
//!    unit mismatches and per-condition constraint sets are recorded;
//!    `COUNT`-guard upper bounds are exported for the static cost
//!    model ([`asl_eval::CompiledSpec::property_costs_with_bounds`]).
//!
//! Everything is conservative: `Unknown` never justifies a finding, and
//! the soundness property test checks `ProvenSafe` / proven-`False`
//! claims against both runtime backends.

use crate::domain::{cmp_tri, AbsVal, Itv, Tri, Unit};
use asl_core::ast::{AggOp, BinOp, UnOp};
use asl_core::types::Type;
use asl_core::{CheckedSpec, Span};
use asl_eval::{CompiledSpec, FnIr, Ir, NodeRef, PropIr};
use std::collections::HashMap;

/// Verdict for one division/modulo site, ordered from worst to best.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivVerdict {
    /// The denominator is provably zero whenever the site executes.
    ProvenZero,
    /// The denominator's shape can produce zero and the analysis cannot
    /// rule it out (the classic "possible division by zero").
    Possible,
    /// No claim either way (silent in the lint: the denominator's shape
    /// is not one whose range provably includes zero).
    Unknown,
    /// The denominator is provably nonzero whenever the site executes.
    ProvenSafe,
}

impl DivVerdict {
    /// Stable lowercase tag (JSON output, golden files).
    pub fn tag(self) -> &'static str {
        match self {
            DivVerdict::ProvenZero => "proven-div-by-zero",
            DivVerdict::Possible => "possible",
            DivVerdict::Unknown => "unknown",
            DivVerdict::ProvenSafe => "proven-safe",
        }
    }
}

/// One division/modulo site the interpreter visited.
#[derive(Debug, Clone)]
pub struct DivSite {
    /// Span of the denominator expression.
    pub span: Span,
    /// `true` for `%`, `false` for `/`.
    pub is_mod: bool,
    /// The verdict.
    pub verdict: DivVerdict,
    /// Whether the denominator has a *trigger shape* — one of the forms
    /// the syntactic lint reports (constant zero, `COUNT`, `E - E`,
    /// possibly through one `LET`). Only triggered sites surface as
    /// findings; un-triggered `Unknown` sites stay silent exactly like
    /// the syntactic rule.
    pub triggered: bool,
    /// Human-readable reason: why zero is possible/proven, or what
    /// proves the site safe.
    pub reason: String,
    /// Label of the guard condition whose facts proved safety, if
    /// safety came from a guard rather than the value range itself.
    pub guard: Option<String>,
    /// Span of the guard condition (for the dominating span chain).
    pub guard_span: Option<Span>,
}

/// A provable unit mismatch at an arithmetic/comparison site.
#[derive(Debug, Clone)]
pub struct UnitMismatch {
    /// Span of the whole offending expression.
    pub span: Span,
    /// The operator.
    pub op: BinOp,
    /// Left operand.
    pub left: OperandUnit,
    /// Right operand.
    pub right: OperandUnit,
}

/// One operand of a [`UnitMismatch`].
#[derive(Debug, Clone)]
pub struct OperandUnit {
    /// Display rendering of the operand expression.
    pub display: String,
    /// Its inferred unit.
    pub unit: Unit,
    /// Its span (for the span chain in the report).
    pub span: Span,
}

/// One interval constraint `key ∈ itv` extracted from a guard conjunct.
#[derive(Debug, Clone)]
pub struct Atom {
    /// Canonical rendering of the constrained expression (structural
    /// key; LETs resolved one level, binders alpha-renamed).
    pub key: String,
    /// Human-readable rendering (real parameter/LET names).
    pub display: String,
    /// The solution interval, already met with the expression's own
    /// abstract range.
    pub itv: Itv,
    /// Span of the conjunct the atom came from.
    pub span: Span,
}

/// A guard condition as a conjunction of interval constraints plus a
/// count of conjuncts the solver could not represent.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    /// Representable conjuncts.
    pub atoms: Vec<Atom>,
    /// Conjuncts the solver had to treat as opaque. They strengthen the
    /// premise side of an implication but block the conclusion side.
    pub opaque: usize,
    /// A conjunct folded to literal `FALSE`.
    pub unsat_literal: bool,
}

impl ConstraintSet {
    /// Is the conjunction provably unsatisfiable?
    pub fn unsat(&self) -> bool {
        self.unsat_literal || self.atoms.iter().any(|a| a.itv.is_empty())
    }

    /// Does this conjunction imply `other`? (Sound: every atom of
    /// `other` must be entailed by an atom of `self` on the same key;
    /// opaque conjuncts on the conclusion side block the implication.)
    pub fn implies(&self, other: &ConstraintSet) -> bool {
        if self.unsat() {
            return true;
        }
        if other.opaque > 0 || other.unsat_literal {
            return false;
        }
        other.atoms.iter().all(|b| {
            self.atoms
                .iter()
                .any(|a| a.key == b.key && a.itv.subset_of(&b.itv))
        })
    }

    /// Look up the atom constraining `key`.
    pub fn find(&self, key: &str) -> Option<&Atom> {
        self.atoms.iter().find(|a| a.key == key)
    }

    fn add_atom(&mut self, key: String, display: String, itv: Itv, span: Span) {
        if let Some(a) = self.atoms.iter_mut().find(|a| a.key == key) {
            a.itv = a.itv.meet(&itv);
        } else {
            self.atoms.push(Atom {
                key,
                display,
                itv,
                span,
            });
        }
    }
}

/// Flow results for one property condition.
#[derive(Debug, Clone)]
pub struct CondFlow {
    /// Declared id, if any.
    pub id: Option<String>,
    /// Display label: `(id)` or `#N`.
    pub label: String,
    /// Span of the predicate.
    pub span: Span,
    /// Three-valued outcome over all runs.
    pub value: Tri,
    /// The guard-implication view of the predicate.
    pub constraints: ConstraintSet,
}

/// Canonical view of one severity arm (for cross-property subsumption).
#[derive(Debug, Clone)]
pub struct ArmCanon {
    /// Guard condition index (`None` = unguarded).
    pub guard: Option<usize>,
    /// Canonical rendering of the arm expression.
    pub key: String,
    /// Constant value, when the expression folds.
    pub konst: Option<f64>,
}

/// Flow results for one property.
#[derive(Debug, Clone)]
pub struct PropFlow {
    /// Property name.
    pub name: String,
    /// Canonical parameter type signature (`["Region", "TestRun"]`).
    pub param_sig: Vec<String>,
    /// Per-condition flow, in declaration order.
    pub conditions: Vec<CondFlow>,
    /// Division/modulo sites, in evaluation order.
    pub divisions: Vec<DivSite>,
    /// Unit mismatches, in evaluation order.
    pub units: Vec<UnitMismatch>,
    /// Canonical severity arms.
    pub severity: Vec<ArmCanon>,
}

/// Flow results for one constant or helper-function declaration.
#[derive(Debug, Clone)]
pub struct DeclFlow {
    /// Owner label as the lint prints it (`constant X` / `function F`).
    pub owner: String,
    /// Division/modulo sites in the body.
    pub divisions: Vec<DivSite>,
    /// Unit mismatches in the body.
    pub units: Vec<UnitMismatch>,
}

/// The complete result of [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct FlowReport {
    /// Per-constant flow, in declaration order.
    pub consts: Vec<DeclFlow>,
    /// Per-function flow, in declaration order.
    pub functions: Vec<DeclFlow>,
    /// Per-property flow, in declaration order.
    pub properties: Vec<PropFlow>,
    /// Proven loop-source cardinality bounds, keyed by the source's
    /// `NodeRef` (`Cached` wrappers unwrapped).
    bounds: HashMap<NodeRef, u64>,
}

impl FlowReport {
    /// Flow results for a property, by name.
    pub fn property(&self, name: &str) -> Option<&PropFlow> {
        self.properties.iter().find(|p| p.name == name)
    }

    /// Proven upper bound on a loop source's cardinality (the oracle for
    /// [`CompiledSpec::property_costs_with_bounds`]).
    pub fn loop_bound(&self, source: NodeRef) -> Option<u64> {
        self.bounds.get(&source).copied()
    }
}

/// Run the abstract interpreter over a compiled specification.
pub fn analyze(spec: &CheckedSpec, comp: &CompiledSpec) -> FlowReport {
    let mut az = Analyzer::new(spec, comp);
    az.fixpoint();
    az.backfill();
    az.report()
}

/// Evaluation context flags threaded through [`Analyzer::eval`].
#[derive(Clone, Copy, Default)]
struct Cx<'e> {
    /// Facts from the active guard condition, keyed by canonical key.
    facts: Option<&'e HashMap<String, Fact>>,
    /// Record division/unit sites (off during the fixpoint and during
    /// re-evaluation, so each site is reported exactly once).
    record: bool,
}

impl<'e> Cx<'e> {
    const QUIET: Cx<'static> = Cx {
        facts: None,
        record: false,
    };
}

/// One fact derived from a guard condition.
#[derive(Debug, Clone)]
struct Fact {
    itv: Itv,
    label: String,
    span: Span,
}

/// Mutable evaluation state for one declaration body.
struct Env<'e> {
    slots: Vec<AbsVal>,
    n_params: usize,
    lets: &'e [(u32, NodeRef)],
    slot_names: HashMap<u32, Box<str>>,
}

impl<'e> Env<'e> {
    fn new(n_slots: usize, n_params: usize, lets: &'e [(u32, NodeRef)]) -> Env<'e> {
        Env {
            slots: vec![AbsVal::Bottom; n_slots],
            n_params,
            lets,
            slot_names: HashMap::new(),
        }
    }

    fn let_body(&self, slot: u32) -> Option<NodeRef> {
        self.lets.iter().find(|(s, _)| *s == slot).map(|(_, b)| *b)
    }
}

/// Collected sites for one declaration body.
#[derive(Default)]
struct Sink {
    divisions: Vec<DivSite>,
    units: Vec<UnitMismatch>,
}

struct Analyzer<'a> {
    spec: &'a CheckedSpec,
    comp: &'a CompiledSpec,
    fns: Vec<FnIr<'a>>,
    /// Abstract values of the global constants (fixpoint state).
    consts: Vec<AbsVal>,
    /// Return summaries of the helper functions (fixpoint state).
    summaries: Vec<AbsVal>,
    /// Exported loop bounds (filled during the property passes).
    bounds: HashMap<NodeRef, u64>,
}

/// Maximum fixpoint rounds; widening kicks in at [`WIDEN_AFTER`].
const MAX_ROUNDS: usize = 8;
const WIDEN_AFTER: usize = 4;

impl<'a> Analyzer<'a> {
    fn new(spec: &'a CheckedSpec, comp: &'a CompiledSpec) -> Analyzer<'a> {
        let fns: Vec<FnIr<'a>> = comp.functions_ir().collect();
        Analyzer {
            spec,
            comp,
            consts: vec![AbsVal::Bottom; comp.consts_ir().count()],
            summaries: vec![AbsVal::Bottom; fns.len()],
            fns,
            bounds: HashMap::new(),
        }
    }

    /// Chaotic iteration over constants and function summaries.
    fn fixpoint(&mut self) {
        for round in 0..MAX_ROUNDS {
            let mut changed = false;
            let consts: Vec<_> = self.comp.consts_ir().collect();
            for (i, c) in consts.iter().enumerate() {
                let mut env = Env::new(c.n_slots, 0, &[]);
                let mut sink = Sink::default();
                let v = self.eval(&mut env, &mut sink, Cx::QUIET, c.body);
                changed |= self.step(round, v, StepTarget::Const(i));
            }
            for f in 0..self.fns.len() {
                let view = self.fns[f];
                let mut env = Env::new(view.n_slots, view.n_params, &[]);
                self.seed_fn_params(&mut env, view.name);
                let mut sink = Sink::default();
                let v = self.eval(&mut env, &mut sink, Cx::QUIET, view.body);
                changed |= self.step(round, v, StepTarget::Fn(f));
            }
            if !changed {
                break;
            }
        }
    }

    fn step(&mut self, round: usize, v: AbsVal, tgt: StepTarget) -> bool {
        let cell = match tgt {
            StepTarget::Const(i) => &mut self.consts[i],
            StepTarget::Fn(i) => &mut self.summaries[i],
        };
        let joined = cell.join(&v);
        let next = if round >= WIDEN_AFTER {
            joined.widen_from(cell)
        } else {
            joined
        };
        if next != *cell {
            *cell = next;
            true
        } else {
            false
        }
    }

    /// Replace any summary still `Bottom` after the fixpoint (recursion
    /// beyond the round cutoff) with the top of its declared type.
    fn backfill(&mut self) {
        let names: Vec<String> = self.comp.consts_ir().map(|c| c.name.to_string()).collect();
        for (i, name) in names.iter().enumerate() {
            if self.consts[i] == AbsVal::Bottom {
                self.consts[i] = match self.spec.model.constants.get(name) {
                    Some(ty) => AbsVal::top_of(ty),
                    None => AbsVal::Other,
                };
            }
        }
        for (i, f) in self.fns.iter().enumerate() {
            if self.summaries[i] == AbsVal::Bottom {
                self.summaries[i] = match self.spec.model.functions.get(f.name) {
                    Some(sig) => AbsVal::top_of(&sig.ret),
                    None => AbsVal::Other,
                };
            }
        }
    }

    fn seed_fn_params(&self, env: &mut Env, name: &str) {
        if let Some(sig) = self.spec.model.functions.get(name) {
            for (i, (pname, ty)) in sig.params.iter().enumerate() {
                if i < env.slots.len() {
                    env.slots[i] = AbsVal::top_of(ty);
                    env.slot_names.insert(i as u32, pname.as_str().into());
                }
            }
        }
    }

    /// Final recording passes: constants, functions, then properties.
    fn report(mut self) -> FlowReport {
        let record = Cx {
            facts: None,
            record: true,
        };
        let mut consts_flow = Vec::new();
        let consts: Vec<_> = self.comp.consts_ir().collect();
        for c in &consts {
            let mut env = Env::new(c.n_slots, 0, &[]);
            let mut sink = Sink::default();
            self.eval(&mut env, &mut sink, record, c.body);
            consts_flow.push(DeclFlow {
                owner: format!("constant {}", c.name),
                divisions: sink.divisions,
                units: sink.units,
            });
        }
        let mut fns_flow = Vec::new();
        for f in self.fns.clone() {
            let mut env = Env::new(f.n_slots, f.n_params, &[]);
            self.seed_fn_params(&mut env, f.name);
            let mut sink = Sink::default();
            self.eval(&mut env, &mut sink, record, f.body);
            fns_flow.push(DeclFlow {
                owner: format!("function {}", f.name),
                divisions: sink.divisions,
                units: sink.units,
            });
        }
        let props: Vec<PropIr<'a>> = self.comp.properties_ir().collect();
        let properties = props.iter().map(|p| self.analyze_property(p)).collect();
        FlowReport {
            consts: consts_flow,
            functions: fns_flow,
            properties,
            bounds: self.bounds,
        }
    }

    fn analyze_property(&mut self, p: &PropIr<'a>) -> PropFlow {
        let record = Cx {
            facts: None,
            record: true,
        };
        let ast = self
            .spec
            .spec
            .properties
            .iter()
            .find(|d| d.name.name == p.name);
        let mut env = Env::new(p.n_slots, p.n_params, p.lets);
        let mut param_sig = Vec::new();
        if let Some(sig) = self.spec.model.properties.get(p.name) {
            for (i, (pname, ty)) in sig.params.iter().enumerate() {
                if i < env.slots.len() {
                    env.slots[i] = AbsVal::top_of(ty);
                    env.slot_names.insert(i as u32, pname.as_str().into());
                }
                param_sig.push(ty.to_string());
            }
        }
        if let Some(decl) = ast {
            for (ldecl, (slot, _)) in decl.lets.iter().zip(p.lets) {
                env.slot_names
                    .insert(*slot, ldecl.name.name.as_str().into());
            }
        }
        let mut sink = Sink::default();
        for &(slot, value) in p.lets {
            let v = self.eval(&mut env, &mut sink, record, value);
            env.slots[slot as usize] = v;
        }
        let mut conditions = Vec::new();
        for (i, (id, pred)) in p.conditions.iter().enumerate() {
            let v = self.eval(&mut env, &mut sink, record, *pred);
            let constraints = self.constraints(&mut env, &mut sink, *pred);
            let mut value = match v {
                AbsVal::Bool(t) => t,
                _ => Tri::Unknown,
            };
            if value == Tri::Unknown && constraints.unsat() {
                value = Tri::False;
            }
            let label = match id {
                Some(name) => format!("({name})"),
                None => format!("#{}", i + 1),
            };
            conditions.push(CondFlow {
                id: id.clone(),
                label,
                span: self.comp.node_span(*pred),
                value,
                constraints,
            });
        }
        // Facts per condition: the constraint atoms, labeled.
        let fact_maps: Vec<HashMap<String, Fact>> = conditions
            .iter()
            .map(|c| {
                c.constraints
                    .atoms
                    .iter()
                    .map(|a| {
                        (
                            a.key.clone(),
                            Fact {
                                itv: a.itv,
                                label: c.label.clone(),
                                span: c.span,
                            },
                        )
                    })
                    .collect()
            })
            .collect();
        // An unguarded arm inherits the sole condition's facts (when the
        // property has exactly one condition, holding implies it fired).
        let sole = (conditions.len() == 1).then_some(0);
        for arm in p.confidence.iter().chain(p.severity) {
            let fid = arm.guard.or(sole);
            let cx = Cx {
                facts: fid.map(|i| &fact_maps[i]),
                record: true,
            };
            self.eval(&mut env, &mut sink, cx, arm.expr);
            // Export COUNT-guard loop bounds for the cost model.
            if let Some(i) = fid {
                self.harvest_bounds(&env, &fact_maps[i], arm.expr);
            }
        }
        let severity = p
            .severity
            .iter()
            .map(|a| ArmCanon {
                guard: a.guard,
                key: self.render(&env, a.expr, RenderMode::CANON, &mut Vec::new()),
                konst: self.const_value(a.expr),
            })
            .collect();
        PropFlow {
            name: p.name.to_string(),
            param_sig,
            conditions,
            divisions: sink.divisions,
            units: sink.units,
            severity,
        }
    }

    /// Walk an arm expression and export proven cardinality bounds for
    /// its loop sources: a guard fact `COUNT(src) ∈ [_, hi]` bounds the
    /// loop over `src` by `hi`.
    fn harvest_bounds(&mut self, env: &Env, facts: &HashMap<String, Fact>, root: NodeRef) {
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            match self.comp.node(n) {
                Ir::Attr { base, .. } => stack.push(*base),
                Ir::Call { args, .. } | Ir::CallUnknown { args, .. } | Ir::MinMax { args, .. } => {
                    stack.extend(args.iter().copied())
                }
                Ir::Unary(_, i) | Ir::Unique(i) | Ir::CountSet(i) => stack.push(*i),
                Ir::Binary(_, l, r) => {
                    stack.push(*l);
                    stack.push(*r);
                }
                Ir::Cached { expr, .. } => stack.push(*expr),
                Ir::FilterEq { obj, key, .. } => {
                    stack.push(*obj);
                    stack.push(*key);
                }
                Ir::SetComp { source, pred, .. } => {
                    self.bound_source(env, facts, *source);
                    stack.push(*source);
                    stack.push(*pred);
                }
                Ir::Aggregate {
                    source,
                    value,
                    pred,
                    ..
                } => {
                    self.bound_source(env, facts, *source);
                    stack.push(*source);
                    stack.push(*value);
                    stack.extend(pred.iter().copied());
                }
                Ir::Quantifier { source, pred, .. } => {
                    self.bound_source(env, facts, *source);
                    stack.push(*source);
                    stack.extend(pred.iter().copied());
                }
                _ => {}
            }
        }
    }

    fn bound_source(&mut self, env: &Env, facts: &HashMap<String, Fact>, source: NodeRef) {
        let src = self.unwrap_cached(source);
        let key = format!(
            "COUNT({})",
            self.render(env, src, RenderMode::CANON, &mut Vec::new())
        );
        if let Some(f) = facts.get(&key) {
            let itv = f.itv.norm();
            if itv.hi.is_finite() && itv.hi >= 0.0 {
                let b = itv.hi as u64;
                self.bounds
                    .entry(src)
                    .and_modify(|cur| *cur = (*cur).min(b))
                    .or_insert(b);
            }
        }
    }

    fn unwrap_cached(&self, mut n: NodeRef) -> NodeRef {
        while let Ir::Cached { expr, .. } = self.comp.node(n) {
            n = *expr;
        }
        n
    }

    // ---- The abstract transfer function ----------------------------

    fn eval(&self, env: &mut Env, sink: &mut Sink, cx: Cx, node: NodeRef) -> AbsVal {
        macro_rules! bot {
            ($v:expr) => {
                if matches!($v, AbsVal::Bottom) {
                    return AbsVal::Bottom;
                }
            };
        }
        let out = match self.comp.node(node) {
            Ir::Int(v) => AbsVal::Num {
                itv: Itv::exact(*v as f64, true),
                unit: Unit::Scalar,
            },
            Ir::Float(v) => AbsVal::Num {
                itv: Itv::exact(*v, false),
                unit: Unit::Scalar,
            },
            Ir::Bool(b) => AbsVal::Bool(Tri::of(*b)),
            Ir::Str(_) | Ir::EnumVal(..) | Ir::UnknownVar(_) => AbsVal::Other,
            Ir::Load(slot) => env.slots[*slot as usize].clone(),
            Ir::Const(i) => self.consts[*i as usize].clone(),
            Ir::Attr { base, attr } => {
                let b = self.eval(env, sink, cx, *base);
                bot!(b);
                self.attr_value(&b, attr)
            }
            Ir::Call { func, args } => {
                let mut any_bot = false;
                for a in args.iter() {
                    any_bot |= matches!(self.eval(env, sink, cx, *a), AbsVal::Bottom);
                }
                if any_bot {
                    AbsVal::Bottom
                } else {
                    self.summaries[*func as usize].clone()
                }
            }
            Ir::CallUnknown { args, .. } => {
                for a in args.iter() {
                    self.eval(env, sink, cx, *a);
                }
                AbsVal::Other
            }
            Ir::MinMax { is_max, args } => {
                let vals: Vec<AbsVal> = args.iter().map(|a| self.eval(env, sink, cx, *a)).collect();
                if vals.iter().any(|v| matches!(v, AbsVal::Bottom)) {
                    return AbsVal::Bottom;
                }
                self.minmax_value(*is_max, &vals)
            }
            Ir::Unary(UnOp::Neg, i) => {
                let v = self.eval(env, sink, cx, *i);
                bot!(v);
                match v.as_num() {
                    Some((itv, unit)) => AbsVal::Num {
                        itv: itv.neg(),
                        unit,
                    },
                    None => AbsVal::Other,
                }
            }
            Ir::Unary(UnOp::Not, i) => {
                let v = self.eval(env, sink, cx, *i);
                bot!(v);
                match v {
                    AbsVal::Bool(t) => AbsVal::Bool(t.not()),
                    _ => AbsVal::Other,
                }
            }
            Ir::Binary(op, l, r) => return self.eval_binary(env, sink, cx, node, *op, *l, *r),
            Ir::SetComp {
                slot, source, pred, ..
            } => {
                let s = self.eval(env, sink, cx, *source);
                bot!(s);
                let (card, class) = set_parts(&s);
                env.slots[*slot as usize] = AbsVal::Obj {
                    class: class.clone(),
                };
                self.eval(env, sink, cx, *pred);
                // Filtering can only shrink the set.
                AbsVal::Set {
                    card: Itv {
                        lo: 0.0,
                        lo_open: false,
                        nonzero: false,
                        ..card
                    },
                    class,
                }
            }
            Ir::Unique(i) => {
                let s = self.eval(env, sink, cx, *i);
                bot!(s);
                let (_, class) = set_parts(&s);
                AbsVal::Obj { class }
            }
            Ir::Aggregate {
                op,
                slot,
                source,
                value,
                pred,
                ..
            } => {
                let s = self.eval(env, sink, cx, *source);
                bot!(s);
                let (card, class) = set_parts(&s);
                env.slots[*slot as usize] = AbsVal::Obj { class };
                if let Some(p) = pred {
                    self.eval(env, sink, cx, *p);
                }
                let v = self.eval(env, sink, cx, *value);
                bot!(v);
                self.aggregate_value(*op, &card, &v)
            }
            Ir::Quantifier {
                slot, source, pred, ..
            } => {
                let s = self.eval(env, sink, cx, *source);
                bot!(s);
                let (_, class) = set_parts(&s);
                env.slots[*slot as usize] = AbsVal::Obj { class };
                if let Some(p) = pred {
                    self.eval(env, sink, cx, *p);
                }
                AbsVal::Bool(Tri::Unknown)
            }
            Ir::CountSet(i) => {
                let s = self.eval(env, sink, cx, *i);
                bot!(s);
                let (card, _) = set_parts(&s);
                AbsVal::Num {
                    itv: card.norm(),
                    unit: Unit::count(),
                }
            }
            Ir::Cached { expr, .. } => self.eval(env, sink, cx, *expr),
            Ir::FilterEq {
                obj, key, set_attr, ..
            } => {
                let o = self.eval(env, sink, cx, *obj);
                bot!(o);
                let k = self.eval(env, sink, cx, *key);
                bot!(k);
                let class = match &o {
                    AbsVal::Obj { class: Some(c) } => {
                        match self.spec.model.attr(c, set_attr).map(|a| &a.ty) {
                            Some(Type::Set(elem)) => match elem.as_ref() {
                                Type::Class(ec) => Some(ec.clone()),
                                _ => None,
                            },
                            _ => None,
                        }
                    }
                    _ => None,
                };
                AbsVal::Set {
                    card: Itv::at_least(0.0, false, true),
                    class,
                }
            }
        };
        self.refine(env, cx, node, out)
    }

    /// Meet a numeric result with the active guard fact for this
    /// expression, if one exists.
    fn refine(&self, env: &Env, cx: Cx, node: NodeRef, out: AbsVal) -> AbsVal {
        let Some(facts) = cx.facts else { return out };
        let AbsVal::Num { itv, unit } = out else {
            return out;
        };
        let key = self.render(env, node, RenderMode::CANON, &mut Vec::new());
        match facts.get(&key) {
            Some(f) => AbsVal::Num {
                itv: itv.meet(&f.itv),
                unit,
            },
            None => AbsVal::Num { itv, unit },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_binary(
        &self,
        env: &mut Env,
        sink: &mut Sink,
        cx: Cx,
        node: NodeRef,
        op: BinOp,
        l: NodeRef,
        r: NodeRef,
    ) -> AbsVal {
        if op == BinOp::And || op == BinOp::Or {
            let lv = self.eval(env, sink, cx, l);
            let rv = self.eval(env, sink, cx, r);
            if matches!(lv, AbsVal::Bottom) {
                return AbsVal::Bottom;
            }
            let lt = as_tri(&lv);
            let rt = if matches!(rv, AbsVal::Bottom) {
                Tri::Unknown
            } else {
                as_tri(&rv)
            };
            let out = if op == BinOp::And {
                lt.and(rt)
            } else {
                lt.or(rt)
            };
            return AbsVal::Bool(out);
        }
        let lv = self.eval(env, sink, cx, l);
        let rv = self.eval(env, sink, cx, r);
        if matches!(lv, AbsVal::Bottom) || matches!(rv, AbsVal::Bottom) {
            return AbsVal::Bottom;
        }
        let (ln, rn) = (lv.as_num(), rv.as_num());
        if op.is_arithmetic() {
            let (Some((li, lu)), Some((ri, ru))) = (ln, rn) else {
                return AbsVal::Other;
            };
            if cx.record && matches!(op, BinOp::Add | BinOp::Sub) && lu.add_sub_mismatch(ru) {
                self.record_unit(env, sink, node, op, l, lu, r, ru);
            }
            if matches!(op, BinOp::Div | BinOp::Mod) && cx.record {
                self.record_div(env, sink, cx, r, ri, op == BinOp::Mod);
            }
            let itv = match op {
                BinOp::Add => li.add(&ri),
                BinOp::Sub => {
                    if self.same_canon(env, l, r) {
                        // E - E is identically zero whatever E is.
                        Itv::exact(0.0, li.int_only && ri.int_only)
                    } else {
                        li.sub(&ri)
                    }
                }
                BinOp::Mul => li.mul(&ri),
                BinOp::Div => li.div(&ri),
                // `%`: int-only; keep just the integrality.
                _ => Itv::int_top(),
            };
            let unit = match op {
                BinOp::Add | BinOp::Sub => lu.add_sub(ru),
                BinOp::Mul => lu.mul(ru),
                BinOp::Div => lu.div(ru),
                _ => Unit::Unknown,
            };
            let out = AbsVal::Num {
                itv: itv.norm(),
                unit,
            };
            return self.refine(env, cx, node, out);
        }
        if op.is_comparison() {
            if let (Some((li, lu)), Some((ri, ru))) = (ln, rn) {
                let ordered = matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge);
                if cx.record && ordered && lu.add_sub_mismatch(ru) {
                    self.record_unit(env, sink, node, op, l, lu, r, ru);
                }
                return AbsVal::Bool(cmp_tri(op, &li, &ri));
            }
            return AbsVal::Bool(Tri::Unknown);
        }
        AbsVal::Other
    }

    #[allow(clippy::too_many_arguments)]
    fn record_unit(
        &self,
        env: &Env,
        sink: &mut Sink,
        node: NodeRef,
        op: BinOp,
        l: NodeRef,
        lu: Unit,
        r: NodeRef,
        ru: Unit,
    ) {
        sink.units.push(UnitMismatch {
            span: self.comp.node_span(node),
            op,
            left: OperandUnit {
                display: self.render(env, l, RenderMode::DISPLAY, &mut Vec::new()),
                unit: lu,
                span: self.comp.node_span(l),
            },
            right: OperandUnit {
                display: self.render(env, r, RenderMode::DISPLAY, &mut Vec::new()),
                unit: ru,
                span: self.comp.node_span(r),
            },
        });
    }

    /// Classify one division/modulo site.
    fn record_div(
        &self,
        env: &mut Env,
        sink: &mut Sink,
        cx: Cx,
        den: NodeRef,
        ri: Itv,
        is_mod: bool,
    ) {
        let trigger = self.zero_trigger(env, den);
        let mut guard = None;
        let mut guard_span = None;
        let (verdict, reason) = if ri.is_exact_zero() && trigger.is_some() {
            (DivVerdict::ProvenZero, trigger.clone().unwrap())
        } else if ri.excludes_zero() {
            // Did a guard fact do the proving, or the shape itself?
            let mut reason = "its value range excludes zero".to_string();
            if cx.facts.is_some() {
                let mut sub = Sink::default();
                let unrefined = self.eval(env, &mut sub, Cx::QUIET, den);
                let zero_without_guard = match unrefined.as_num() {
                    Some((itv, _)) => itv.contains_zero(),
                    None => true,
                };
                if zero_without_guard {
                    let key = self.render(env, den, RenderMode::CANON, &mut Vec::new());
                    if let Some(f) = cx.facts.and_then(|m| m.get(&key)) {
                        reason = format!(
                            "condition {} bounds `{}` away from zero",
                            f.label,
                            self.render(env, den, RenderMode::DISPLAY, &mut Vec::new()),
                        );
                        guard = Some(f.label.clone());
                        guard_span = Some(f.span);
                    }
                }
            }
            (DivVerdict::ProvenSafe, reason)
        } else if let Some(t) = trigger.clone() {
            (DivVerdict::Possible, t)
        } else {
            (DivVerdict::Unknown, String::new())
        };
        sink.divisions.push(DivSite {
            span: self.comp.node_span(den),
            is_mod,
            verdict,
            triggered: trigger.is_some(),
            reason,
            guard,
            guard_span,
        });
    }

    /// IR twin of the syntactic `provably_can_be_zero`: does the
    /// denominator have a shape whose range provably includes zero?
    fn zero_trigger(&self, env: &Env, den: NodeRef) -> Option<String> {
        let n = self.unwrap_cached(den);
        if let Some(v) = self.const_value(n) {
            return (v == 0.0).then(|| "the denominator is constantly zero".to_string());
        }
        match self.comp.node(n) {
            Ir::CountSet(_) => {
                Some("the denominator is a `COUNT`, which is zero on an empty set".to_string())
            }
            Ir::Aggregate {
                op: AggOp::Count, ..
            } => Some(
                "the denominator is a `COUNT`, which is zero when no element passes the filter"
                    .to_string(),
            ),
            Ir::Binary(BinOp::Sub, l, r) if self.same_canon(env, *l, *r) => Some(format!(
                "the denominator `{} - {}` is identically zero",
                self.render(env, *l, RenderMode::DISPLAY, &mut Vec::new()),
                self.render(env, *r, RenderMode::DISPLAY, &mut Vec::new()),
            )),
            Ir::Load(slot) => {
                let body = env.let_body(*slot)?;
                let why = self.zero_trigger(env, body)?;
                let name = env
                    .slot_names
                    .get(slot)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("s{slot}"));
                Some(format!("{why} (`{name}` is LET-bound to it)"))
            }
            _ => None,
        }
    }

    /// Value of a constant-shaped subtree (literals, global constants,
    /// arithmetic thereof), mirroring the engines' semantics.
    fn const_value(&self, node: NodeRef) -> Option<f64> {
        match self.comp.node(node) {
            Ir::Int(v) => Some(*v as f64),
            Ir::Float(v) => Some(*v),
            Ir::Const(i) => self.consts.get(*i as usize)?.as_num()?.0.as_exact(),
            Ir::Unary(UnOp::Neg, i) => Some(-self.const_value(*i)?),
            Ir::Cached { expr, .. } => self.const_value(*expr),
            Ir::Binary(op, l, r) if op.is_arithmetic() => {
                let (a, b) = (self.const_value(*l)?, self.const_value(*r)?);
                match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div if b != 0.0 => Some(a / b),
                    BinOp::Mod if b != 0.0 => Some(a % b),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    fn same_canon(&self, env: &Env, l: NodeRef, r: NodeRef) -> bool {
        self.render(env, l, RenderMode::CANON, &mut Vec::new())
            == self.render(env, r, RenderMode::CANON, &mut Vec::new())
    }

    // ---- Guard constraints -----------------------------------------

    /// Extract the conjunction of interval constraints a condition
    /// imposes. Conjuncts that are not representable count as opaque.
    fn constraints(&self, env: &mut Env, sink: &mut Sink, cond: NodeRef) -> ConstraintSet {
        let mut cs = ConstraintSet::default();
        let mut stack = vec![cond];
        while let Some(raw) = stack.pop() {
            let n = self.unwrap_cached(raw);
            match self.comp.node(n) {
                Ir::Binary(BinOp::And, l, r) => {
                    stack.push(*l);
                    stack.push(*r);
                }
                Ir::Binary(op, l, r) if op.is_comparison() => {
                    let lv = self.eval(env, sink, Cx::QUIET, *l);
                    let rv = self.eval(env, sink, Cx::QUIET, *r);
                    match (lv.as_num(), rv.as_num()) {
                        (Some((li, _)), Some((ri, _))) => {
                            match (li.as_exact(), ri.as_exact()) {
                                (Some(a), Some(b)) => {
                                    // Both sides constant: the conjunct is
                                    // decided outright.
                                    if cmp_tri(*op, &Itv::exact(a, false), &Itv::exact(b, false))
                                        == Tri::False
                                    {
                                        cs.unsat_literal = true;
                                    }
                                }
                                (None, Some(k)) => match solution_itv(*op, k) {
                                    Some(itv) => cs.add_atom(
                                        self.render(env, *l, RenderMode::CANON, &mut Vec::new()),
                                        self.render(env, *l, RenderMode::DISPLAY, &mut Vec::new()),
                                        itv.meet(&li),
                                        self.comp.node_span(n),
                                    ),
                                    None => cs.opaque += 1,
                                },
                                (Some(k), None) => match solution_itv(flip(*op), k) {
                                    Some(itv) => cs.add_atom(
                                        self.render(env, *r, RenderMode::CANON, &mut Vec::new()),
                                        self.render(env, *r, RenderMode::DISPLAY, &mut Vec::new()),
                                        itv.meet(&ri),
                                        self.comp.node_span(n),
                                    ),
                                    None => cs.opaque += 1,
                                },
                                (None, None) => cs.opaque += 1,
                            }
                        }
                        _ => cs.opaque += 1,
                    }
                }
                Ir::Bool(true) => {}
                Ir::Bool(false) => cs.unsat_literal = true,
                _ => cs.opaque += 1,
            }
        }
        cs
    }

    // ---- Abstract helpers ------------------------------------------

    fn attr_value(&self, base: &AbsVal, attr: &str) -> AbsVal {
        let AbsVal::Obj { class: Some(c) } = base else {
            return AbsVal::Other;
        };
        let Some(info) = self.spec.model.attr(c, attr) else {
            return AbsVal::Other;
        };
        let mut v = AbsVal::top_of(&info.ty);
        if let AbsVal::Num { unit, .. } = &mut v {
            *unit = match perfdata::attr_unit(c, attr) {
                Some(perfdata::AttrUnit::Time) => Unit::time(),
                Some(perfdata::AttrUnit::Count) => Unit::count(),
                Some(perfdata::AttrUnit::Bytes) => Unit::bytes(),
                None => Unit::Unknown,
            };
        }
        v
    }

    fn minmax_value(&self, is_max: bool, vals: &[AbsVal]) -> AbsVal {
        let mut itv: Option<Itv> = None;
        let mut unit: Option<Unit> = None;
        for v in vals {
            let Some((vi, vu)) = v.as_num() else {
                return AbsVal::Other;
            };
            itv = Some(match itv {
                None => vi,
                Some(cur) => {
                    if is_max {
                        // max of two ranges: both bounds take the max.
                        Itv {
                            lo: cur.lo.max(vi.lo),
                            hi: cur.hi.max(vi.hi),
                            lo_open: false,
                            hi_open: false,
                            nonzero: false,
                            int_only: cur.int_only && vi.int_only,
                        }
                    } else {
                        Itv {
                            lo: cur.lo.min(vi.lo),
                            hi: cur.hi.min(vi.hi),
                            lo_open: false,
                            hi_open: false,
                            nonzero: false,
                            int_only: cur.int_only && vi.int_only,
                        }
                    }
                }
            });
            unit = Some(match unit {
                None => vu,
                Some(cur) => cur.join(vu),
            });
        }
        match (itv, unit) {
            (Some(itv), Some(unit)) => AbsVal::Num { itv, unit },
            _ => AbsVal::Other,
        }
    }

    fn aggregate_value(&self, op: AggOp, card: &Itv, v: &AbsVal) -> AbsVal {
        match op {
            AggOp::Count => AbsVal::Num {
                itv: Itv {
                    lo: 0.0,
                    lo_open: false,
                    nonzero: false,
                    int_only: true,
                    ..*card
                }
                .norm(),
                unit: Unit::count(),
            },
            _ => {
                let Some((vi, vu)) = v.as_num() else {
                    return AbsVal::Other;
                };
                match op {
                    // Empty sum is 0; k summands of nonnegative values
                    // stay nonnegative. Anything else: no range claim.
                    AggOp::Sum => AbsVal::Num {
                        itv: if vi.lo >= 0.0 {
                            Itv::at_least(0.0, false, vi.int_only)
                        } else if vi.int_only {
                            Itv::int_top()
                        } else {
                            Itv::top()
                        },
                        unit: vu,
                    },
                    // MIN/MAX/AVG of attained values stay within the
                    // element range (empty sets error at runtime, which
                    // is outside the value abstraction).
                    _ => AbsVal::Num {
                        itv: Itv {
                            nonzero: false,
                            ..vi
                        },
                        unit: vu,
                    },
                }
            }
        }
    }

    // ---- Rendering --------------------------------------------------

    /// Render an IR subtree to a string. `CANON` resolves `LET`s one
    /// level, names parameters positionally (`p0`) and alpha-renames
    /// binders (`b0`, `b1`, …) so keys match across properties;
    /// `DISPLAY` uses the declared names for messages.
    fn render(&self, env: &Env, node: NodeRef, m: RenderMode, binders: &mut Vec<u32>) -> String {
        match self.comp.node(node) {
            Ir::Int(v) => v.to_string(),
            Ir::Float(v) => format!("{v:?}"),
            Ir::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Ir::Str(i) => format!("{:?}", self.comp.str_lit(*i)),
            Ir::EnumVal(e, v) => format!("{}::{}", e.as_str(), v.as_str()),
            Ir::UnknownVar(i) => self.comp.str_lit(*i).to_string(),
            Ir::Load(slot) => {
                if let Some(pos) = binders.iter().rposition(|s| s == slot) {
                    return format!("b{pos}");
                }
                if m.names {
                    if let Some(name) = env.slot_names.get(slot) {
                        return name.to_string();
                    }
                }
                if m.resolve_lets {
                    if let Some(body) = env.let_body(*slot) {
                        return self.render(
                            env,
                            body,
                            RenderMode {
                                resolve_lets: false,
                                ..m
                            },
                            &mut Vec::new(),
                        );
                    }
                }
                if (*slot as usize) < env.n_params {
                    format!("p{slot}")
                } else {
                    format!("s{slot}")
                }
            }
            Ir::Const(i) => self
                .comp
                .consts_ir()
                .nth(*i as usize)
                .map(|c| c.name.to_string())
                .unwrap_or_else(|| format!("const{i}")),
            Ir::Attr { base, attr } => {
                format!("{}.{attr}", self.render(env, *base, m, binders))
            }
            Ir::Call { func, args } => {
                let name = self.fns.get(*func as usize).map(|f| f.name).unwrap_or("?");
                format!("{name}({})", self.render_list(env, args, m, binders))
            }
            Ir::CallUnknown { name, args } => format!(
                "{}({})",
                self.comp.str_lit(*name),
                self.render_list(env, args, m, binders)
            ),
            Ir::MinMax { is_max, args } => format!(
                "{}({})",
                if *is_max { "MAX" } else { "MIN" },
                self.render_list(env, args, m, binders)
            ),
            Ir::Unary(UnOp::Neg, i) => format!("(-{})", self.render(env, *i, m, binders)),
            Ir::Unary(UnOp::Not, i) => format!("(NOT {})", self.render(env, *i, m, binders)),
            Ir::Binary(op, l, r) => format!(
                "({} {} {})",
                self.render(env, *l, m, binders),
                op.symbol(),
                self.render(env, *r, m, binders)
            ),
            Ir::SetComp {
                slot, source, pred, ..
            } => {
                let src = self.render(env, *source, m, binders);
                binders.push(*slot);
                let b = format!("b{}", binders.len() - 1);
                let p = self.render(env, *pred, m, binders);
                binders.pop();
                format!("{{{b} IN {src} WITH {p}}}")
            }
            Ir::Unique(i) => format!("UNIQUE({})", self.render(env, *i, m, binders)),
            Ir::Aggregate {
                op,
                slot,
                source,
                value,
                pred,
                ..
            } => {
                let src = self.render(env, *source, m, binders);
                binders.push(*slot);
                let b = format!("b{}", binders.len() - 1);
                let v = self.render(env, *value, m, binders);
                let p = pred
                    .map(|p| format!(" AND {}", self.render(env, p, m, binders)))
                    .unwrap_or_default();
                binders.pop();
                format!("{}({v} WHERE {b} IN {src}{p})", agg_name(*op))
            }
            Ir::Quantifier {
                forall,
                slot,
                source,
                pred,
                ..
            } => {
                let src = self.render(env, *source, m, binders);
                binders.push(*slot);
                let b = format!("b{}", binders.len() - 1);
                let p = pred
                    .map(|p| format!(" AND {}", self.render(env, p, m, binders)))
                    .unwrap_or_default();
                binders.pop();
                format!(
                    "{}({b} IN {src}{p})",
                    if *forall { "FORALL" } else { "EXISTS" }
                )
            }
            Ir::CountSet(i) => format!("COUNT({})", self.render(env, *i, m, binders)),
            Ir::Cached { expr, .. } => self.render(env, *expr, m, binders),
            Ir::FilterEq {
                obj,
                set_attr,
                elem_attr,
                key,
                ..
            } => format!(
                "{{* IN {}.{set_attr} WITH .{elem_attr} == {}}}",
                self.render(env, *obj, m, binders),
                self.render(env, *key, m, binders)
            ),
        }
    }

    fn render_list(
        &self,
        env: &Env,
        args: &[NodeRef],
        m: RenderMode,
        binders: &mut Vec<u32>,
    ) -> String {
        args.iter()
            .map(|a| self.render(env, *a, m, binders))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

enum StepTarget {
    Const(usize),
    Fn(usize),
}

#[derive(Clone, Copy)]
struct RenderMode {
    resolve_lets: bool,
    names: bool,
}

impl RenderMode {
    const CANON: RenderMode = RenderMode {
        resolve_lets: true,
        names: false,
    };
    const DISPLAY: RenderMode = RenderMode {
        resolve_lets: false,
        names: true,
    };
}

fn agg_name(op: AggOp) -> &'static str {
    match op {
        AggOp::Sum => "SUM",
        AggOp::Min => "MIN",
        AggOp::Max => "MAX",
        AggOp::Avg => "AVG",
        AggOp::Count => "COUNT",
    }
}

fn as_tri(v: &AbsVal) -> Tri {
    match v {
        AbsVal::Bool(t) => *t,
        _ => Tri::Unknown,
    }
}

fn set_parts(v: &AbsVal) -> (Itv, Option<String>) {
    match v {
        AbsVal::Set { card, class } => (*card, class.clone()),
        _ => (Itv::at_least(0.0, false, true), None),
    }
}

/// The solution interval of `x op k`.
fn solution_itv(op: BinOp, k: f64) -> Option<Itv> {
    match op {
        BinOp::Lt => Some(Itv::at_most(k, true, false)),
        BinOp::Le => Some(Itv::at_most(k, false, false)),
        BinOp::Gt => Some(Itv::at_least(k, true, false)),
        BinOp::Ge => Some(Itv::at_least(k, false, false)),
        BinOp::Eq => Some(Itv::exact(k, false)),
        BinOp::Ne if k == 0.0 => Some(Itv {
            nonzero: true,
            ..Itv::top()
        }),
        _ => None,
    }
}

/// Mirror a comparison across `==`: `k op E` ⇔ `E flip(op) k`.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}
