//! Constant folding and threshold-interval reasoning over the AST.
//!
//! This is the *syntactic* layer of the analysis (the original
//! `kojak-lint` folding engine, now housed here so both the lint rules
//! and the abstract interpreter share one set of engine-faithful
//! short-circuit semantics). The questions it answers are "does this
//! condition fold to a constant?", "does threshold condition `(a)`
//! imply threshold condition `(b)`?" and "can this denominator provably
//! be zero?" — all conservatively: `None`/`false` always means "don't
//! know", and a lint that consumes a "don't know" must stay quiet.
//!
//! The semantic layer — intervals, units, guard implication over
//! arbitrary conjunctions — lives in [`crate::absint`] and subsumes
//! these answers where it applies; the folder remains the fallback for
//! AST-level callers and the `--no-flow` lint path.

use asl_core::ast::{AggOp, BinOp, Expr, ExprKind, Specification, UnOp};
use asl_core::pretty;
use std::collections::HashMap;

/// A folded compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    /// An integer value.
    Int(i64),
    /// A float value.
    Float(f64),
    /// A boolean value.
    Bool(bool),
}

impl Const {
    /// Numeric view (`int` widens to `float`).
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Const::Int(v) => Some(v as f64),
            Const::Float(v) => Some(v),
            Const::Bool(_) => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Const::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Is this exactly zero?
    pub fn is_zero(self) -> bool {
        matches!(self, Const::Int(0)) || matches!(self, Const::Float(v) if v == 0.0)
    }
}

/// Folds expressions over the spec's global constants (themselves folded
/// once, in declaration order, at construction).
pub struct Folder {
    consts: HashMap<String, Const>,
}

impl Folder {
    /// Fold the spec's global constants.
    pub fn new(spec: &Specification) -> Self {
        let mut f = Folder {
            consts: HashMap::new(),
        };
        for c in &spec.constants {
            if let Some(v) = f.fold(&c.value) {
                f.consts.insert(c.name.name.clone(), v);
            }
        }
        f
    }

    /// Fold `e` to a constant, or `None` if any part is not statically
    /// known. Arithmetic that would fail at runtime (division by zero,
    /// integer overflow) folds to `None` — the div-by-zero lint reports
    /// it separately.
    pub fn fold(&self, e: &Expr) -> Option<Const> {
        match &e.kind {
            ExprKind::IntLit(v) => Some(Const::Int(*v)),
            ExprKind::FloatLit(v) => Some(Const::Float(*v)),
            ExprKind::BoolLit(b) => Some(Const::Bool(*b)),
            ExprKind::Var(n) => self.consts.get(n).copied(),
            ExprKind::Unary(UnOp::Neg, i) => match self.fold(i)? {
                Const::Int(v) => v.checked_neg().map(Const::Int),
                Const::Float(v) => Some(Const::Float(-v)),
                Const::Bool(_) => None,
            },
            ExprKind::Unary(UnOp::Not, i) => self.fold(i)?.as_bool().map(|b| Const::Bool(!b)),
            ExprKind::Binary(op, l, r) => self.fold_binary(*op, l, r),
            _ => None,
        }
    }

    fn fold_binary(&self, op: BinOp, l: &Expr, r: &Expr) -> Option<Const> {
        // AND/OR mirror the engines' short-circuit: a folded-true OR (or
        // folded-false AND) left side decides the result without the right.
        if op == BinOp::And || op == BinOp::Or {
            let lv = self.fold(l).and_then(Const::as_bool);
            match (op, lv) {
                (BinOp::And, Some(false)) => return Some(Const::Bool(false)),
                (BinOp::Or, Some(true)) => return Some(Const::Bool(true)),
                (_, Some(_)) => return self.fold(r).and_then(Const::as_bool).map(Const::Bool),
                (_, None) => return None,
            }
        }
        let lv = self.fold(l)?;
        let rv = self.fold(r)?;
        if op.is_arithmetic() {
            return fold_arith(op, lv, rv);
        }
        if op.is_comparison() {
            return fold_cmp(op, lv, rv);
        }
        None
    }
}

fn fold_arith(op: BinOp, l: Const, r: Const) -> Option<Const> {
    if let (Const::Int(a), Const::Int(b)) = (l, r) {
        return match op {
            BinOp::Add => a.checked_add(b).map(Const::Int),
            BinOp::Sub => a.checked_sub(b).map(Const::Int),
            BinOp::Mul => a.checked_mul(b).map(Const::Int),
            BinOp::Div => a.checked_div(b).map(Const::Int),
            BinOp::Mod => a.checked_rem(b).map(Const::Int),
            _ => None,
        };
    }
    let (a, b) = (l.as_f64()?, r.as_f64()?);
    match op {
        BinOp::Add => Some(Const::Float(a + b)),
        BinOp::Sub => Some(Const::Float(a - b)),
        BinOp::Mul => Some(Const::Float(a * b)),
        BinOp::Div if b != 0.0 => Some(Const::Float(a / b)),
        BinOp::Mod if b != 0.0 => Some(Const::Float(a % b)),
        _ => None,
    }
}

fn fold_cmp(op: BinOp, l: Const, r: Const) -> Option<Const> {
    if let (Const::Bool(a), Const::Bool(b)) = (l, r) {
        return match op {
            BinOp::Eq => Some(Const::Bool(a == b)),
            BinOp::Ne => Some(Const::Bool(a != b)),
            _ => None,
        };
    }
    let (a, b) = (l.as_f64()?, r.as_f64()?);
    let out = match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => return None,
    };
    Some(Const::Bool(out))
}

/// A condition of the shape `E op k`: an arbitrary (non-constant)
/// expression compared against a foldable numeric threshold, normalized
/// so the expression is on the left.
#[derive(Debug, Clone)]
pub struct Threshold {
    /// Canonical (pretty-printed) text of `E`, used as a structural key.
    pub key: String,
    /// The (normalized) comparison operator.
    pub op: BinOp,
    /// The folded threshold value.
    pub k: f64,
}

/// Extract a [`Threshold`] from a comparison, if one side folds to a
/// number and the other does not fold at all.
pub fn threshold_of(e: &Expr, folder: &Folder) -> Option<Threshold> {
    let ExprKind::Binary(op, l, r) = &e.kind else {
        return None;
    };
    if !op.is_comparison() {
        return None;
    }
    match (folder.fold(l), folder.fold(r)) {
        (None, Some(k)) => Some(Threshold {
            key: pretty::print_expr(l),
            op: *op,
            k: k.as_f64()?,
        }),
        (Some(k), None) => Some(Threshold {
            key: pretty::print_expr(r),
            op: flip(*op),
            k: k.as_f64()?,
        }),
        _ => None,
    }
}

/// Mirror a comparison across `==`: `k op E` ⇔ `E flip(op) k`.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Does threshold condition `a` imply threshold condition `b`? (Set
/// containment of the solution intervals over the same expression key.)
pub fn implies(a: &Threshold, b: &Threshold) -> bool {
    if a.key != b.key {
        return false;
    }
    let (ka, kb) = (a.k, b.k);
    match (a.op, b.op) {
        (BinOp::Gt, BinOp::Gt) | (BinOp::Gt, BinOp::Ge) => ka >= kb,
        (BinOp::Ge, BinOp::Ge) => ka >= kb,
        (BinOp::Ge, BinOp::Gt) => ka > kb,
        (BinOp::Lt, BinOp::Lt) | (BinOp::Lt, BinOp::Le) => ka <= kb,
        (BinOp::Le, BinOp::Le) => ka <= kb,
        (BinOp::Le, BinOp::Lt) => ka < kb,
        (BinOp::Eq, BinOp::Eq) => ka == kb,
        (BinOp::Eq, BinOp::Ne) => ka != kb,
        (BinOp::Eq, BinOp::Gt) => ka > kb,
        (BinOp::Eq, BinOp::Ge) => ka >= kb,
        (BinOp::Eq, BinOp::Lt) => ka < kb,
        (BinOp::Eq, BinOp::Le) => ka <= kb,
        (BinOp::Ne, BinOp::Ne) => ka == kb,
        _ => false,
    }
}

/// Can `e` provably evaluate to zero? Returns a human-readable reason
/// when so. Conservative: attribute loads, calls and anything else with
/// an unknown value range return `None` (no warning) — only shapes whose
/// range *provably* includes zero are reported.
pub fn provably_can_be_zero(e: &Expr, folder: &Folder) -> Option<String> {
    if let Some(v) = folder.fold(e) {
        return if v.is_zero() {
            Some("the denominator is constantly zero".to_string())
        } else {
            None
        };
    }
    match &e.kind {
        // COUNT(...) ranges over [0, ∞): zero exactly on an empty set.
        ExprKind::CountSet(_) => {
            Some("the denominator is a `COUNT`, which is zero on an empty set".to_string())
        }
        ExprKind::Aggregate {
            op: AggOp::Count, ..
        } => Some(
            "the denominator is a `COUNT`, which is zero when no element passes the filter"
                .to_string(),
        ),
        // E - E is identically zero whatever E evaluates to.
        ExprKind::Binary(BinOp::Sub, l, r) if pretty::print_expr(l) == pretty::print_expr(r) => {
            Some(format!(
                "the denominator `{} - {}` is identically zero",
                pretty::print_expr(l),
                pretty::print_expr(r)
            ))
        }
        _ => None,
    }
}

/// Does threshold fact `t` (known to hold) prove that its key expression
/// is nonzero?
pub fn proves_nonzero(t: &Threshold) -> bool {
    match t.op {
        BinOp::Gt => t.k >= 0.0,
        BinOp::Ge => t.k > 0.0,
        BinOp::Lt => t.k <= 0.0,
        BinOp::Le => t.k < 0.0,
        BinOp::Eq => t.k != 0.0,
        BinOp::Ne => t.k == 0.0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_core::parse;

    fn spec_with(consts: &str) -> Specification {
        parse(consts).expect("test spec parses")
    }

    fn fold_expr(folder: &Folder, src: &str) -> Option<Const> {
        // Wrap in a throwaway constant to reuse the expression parser.
        let spec = parse(&format!("float __X__ = {src};")).expect("expr parses");
        folder.fold(&spec.constants[0].value)
    }

    #[test]
    fn folds_constants_and_arithmetic() {
        let spec = spec_with("float T = 0.25; int N = 4;");
        let f = Folder::new(&spec);
        assert_eq!(fold_expr(&f, "T * 2.0"), Some(Const::Float(0.5)));
        assert_eq!(fold_expr(&f, "N + 1"), Some(Const::Int(5)));
        assert_eq!(fold_expr(&f, "N > 3"), Some(Const::Bool(true)));
        assert_eq!(fold_expr(&f, "1 / 0"), None);
    }

    #[test]
    fn short_circuit_logic() {
        let f = Folder::new(&spec_with(""));
        // `x` is unknown, but the left side decides.
        assert_eq!(fold_expr(&f, "FALSE AND x > 0"), Some(Const::Bool(false)));
        assert_eq!(fold_expr(&f, "TRUE OR x > 0"), Some(Const::Bool(true)));
        assert_eq!(fold_expr(&f, "TRUE AND x > 0"), None);
    }

    #[test]
    fn threshold_implication() {
        let gt = |k| Threshold {
            key: "x".into(),
            op: BinOp::Gt,
            k,
        };
        assert!(implies(&gt(2.0), &gt(1.0)));
        assert!(!implies(&gt(1.0), &gt(2.0)));
        let ge1 = Threshold {
            key: "x".into(),
            op: BinOp::Ge,
            k: 1.0,
        };
        assert!(implies(&ge1, &gt(0.5)));
        assert!(!implies(&ge1, &gt(1.0)));
    }

    #[test]
    fn zero_proofs() {
        let f = Folder::new(&spec_with("float Z = 0.0;"));
        let spec = parse("float __X__ = Z;").unwrap();
        assert!(provably_can_be_zero(&spec.constants[0].value, &f).is_some());
        let spec = parse("float __X__ = COUNT(r.TotTimes);").unwrap();
        assert!(provably_can_be_zero(&spec.constants[0].value, &f).is_some());
        let spec = parse("float __X__ = r.Incl;").unwrap();
        assert!(provably_can_be_zero(&spec.constants[0].value, &f).is_none());
    }
}
