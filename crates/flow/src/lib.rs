//! # `kojak-flow` — dataflow analysis over the compiled ASL IR
//!
//! A fixpoint abstract-interpretation engine that runs over the same
//! slot-indexed IR the compiled evaluator executes
//! ([`asl_eval::CompiledSpec`]), turning the syntactic lints of
//! `kojak-lint` into *semantic* ones with three kinds of output:
//!
//! - **Proven verdicts.** Every division/modulo site is triaged into
//!   proven-safe / possible / proven-div-by-zero ([`DivVerdict`]),
//!   using a product domain of intervals (with open bounds, nonzero-ness
//!   and integrality), three-valued booleans, and set-cardinality
//!   bounds seeded from `COUNT`/comprehension structure.
//! - **Unit inference.** A unit/dimension lattice ([`Unit`]) over time,
//!   count and bytes, seeded from the [`perfdata`] attribute schema and
//!   propagated through arithmetic; provable mismatches (adding a time
//!   to a count, comparing a ratio against a time) are reported,
//!   while comparisons against dimensionless thresholds stay quiet.
//! - **Guard implication.** Each condition becomes a conjunction of
//!   interval constraints ([`ConstraintSet`]); arms are re-analyzed
//!   under their guard's facts (one level of `LET` resolution,
//!   engine-faithful short-circuit semantics), which upgrades
//!   unreachable-arm/overlapping-arm reasoning to arbitrary guard
//!   expressions and powers whole-suite property subsumption.
//!
//! The analysis is **conservative by construction**: `Unknown` never
//! justifies a finding, and the soundness property test
//! (`tests/soundness.rs`) checks every proven claim against both the
//! interpreter and the compiled engine on randomized stores.
//!
//! ```
//! use asl_core::parse_and_check;
//! use asl_eval::{compile, COSY_DATA_MODEL};
//!
//! let src = format!("{COSY_DATA_MODEL}\n
//!     PROPERTY SafeRate(Region r, TestRun t) {{
//!         LET int N = COUNT(r.TotTimes);
//!         IN CONDITION: (has_data) N > 0;
//!         CONFIDENCE: 1;
//!         SEVERITY: MAX( (has_data) -> 1.0 / N );
//!     }}");
//! let spec = parse_and_check(&src).unwrap();
//! let comp = compile(&spec);
//! let report = flow::analyze(&spec, &comp);
//!
//! let prop = report.property("SafeRate").unwrap();
//! // The guard `N > 0` proves the division safe.
//! assert_eq!(prop.divisions[0].verdict, flow::DivVerdict::ProvenSafe);
//! assert_eq!(prop.divisions[0].guard.as_deref(), Some("(has_data)"));
//! ```
//!
//! The syntactic layer — AST constant folding and threshold reasoning,
//! shared with `kojak-lint`'s `--no-flow` path — lives in [`fold`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod absint;
pub mod domain;
pub mod fold;

pub use absint::{
    analyze, ArmCanon, Atom, CondFlow, ConstraintSet, DeclFlow, DivSite, DivVerdict, FlowReport,
    OperandUnit, PropFlow, UnitMismatch,
};
pub use domain::{cmp_tri, AbsVal, Itv, Tri, Unit};
