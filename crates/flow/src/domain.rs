//! The product abstract domain: three-valued booleans, numeric
//! intervals with open bounds / nonzero-ness / integrality, the
//! unit/dimension lattice, and the combined per-value abstraction
//! [`AbsVal`].
//!
//! Everything here is deliberately conservative: `Unknown`/top never
//! justifies a finding, and every "proven" claim must survive the
//! soundness property test (`tests/soundness.rs`), which checks flow
//! verdicts against both runtime backends.
//!
//! Interval bounds are `f64` and abstract operators mirror the engine's
//! own `f64` arithmetic on those bounds. IEEE addition and
//! multiplication are monotone and correctly rounded, so a bound
//! computed here is a value the runtime can actually attain — in
//! particular a lower bound that comes out strictly positive proves the
//! runtime value is nonzero, which is the claim the div-by-zero triage
//! rests on.

use asl_core::ast::BinOp;
use asl_core::types::Type;
use std::fmt;

/// Three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Provably false.
    False,
    /// Provably true.
    True,
    /// Not decided by the analysis.
    Unknown,
}

impl Tri {
    /// Lift a concrete boolean.
    pub fn of(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }

    /// Engine-faithful `AND`: the engines short-circuit, so a false left
    /// operand decides the result even when the right is undecidable
    /// (and a false *right* operand decides it when the left is known to
    /// evaluate — which abstractly we may assume, since a left-side
    /// runtime error makes the whole conjunction error, not true).
    pub fn and(self, o: Tri) -> Tri {
        match (self, o) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }

    /// Engine-faithful `OR` (dual of [`Tri::and`]).
    pub fn or(self, o: Tri) -> Tri {
        match (self, o) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        }
    }

    /// Logical negation (`Unknown` stays `Unknown`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Tri {
        match self {
            Tri::False => Tri::True,
            Tri::True => Tri::False,
            Tri::Unknown => Tri::Unknown,
        }
    }
}

/// A numeric interval with open/closed bounds, an extra nonzero-ness
/// bit, and an integrality bit. `lo`/`hi` are `-inf`/`+inf` when
/// unbounded. The concretization is `{ v in [lo, hi] }` minus the open
/// endpoints, minus `{0}` when `nonzero`, intersected with the integers
/// when `int_only`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Itv {
    /// Lower bound (`-inf` = unbounded).
    pub lo: f64,
    /// Upper bound (`+inf` = unbounded).
    pub hi: f64,
    /// The lower bound itself is excluded.
    pub lo_open: bool,
    /// The upper bound itself is excluded.
    pub hi_open: bool,
    /// The value is provably not zero (beyond what the bounds say).
    pub nonzero: bool,
    /// Only integer values are possible.
    pub int_only: bool,
}

impl Itv {
    /// The full float line.
    pub fn top() -> Itv {
        Itv {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            lo_open: false,
            hi_open: false,
            nonzero: false,
            int_only: false,
        }
    }

    /// All integers.
    pub fn int_top() -> Itv {
        Itv {
            int_only: true,
            ..Itv::top()
        }
    }

    /// The singleton `{v}`.
    pub fn exact(v: f64, int_only: bool) -> Itv {
        Itv {
            lo: v,
            hi: v,
            lo_open: false,
            hi_open: false,
            nonzero: false,
            int_only,
        }
    }

    /// `[lo, +inf)` (or `(lo, +inf)` when `open`).
    pub fn at_least(lo: f64, open: bool, int_only: bool) -> Itv {
        Itv {
            lo,
            hi: f64::INFINITY,
            lo_open: open,
            hi_open: false,
            nonzero: false,
            int_only,
        }
    }

    /// `(-inf, hi]` (or `(-inf, hi)` when `open`).
    pub fn at_most(hi: f64, open: bool, int_only: bool) -> Itv {
        Itv {
            lo: f64::NEG_INFINITY,
            hi,
            lo_open: false,
            hi_open: open,
            nonzero: false,
            int_only,
        }
    }

    /// Tighten the representation: integer intervals get closed integral
    /// bounds, and the `nonzero` bit is folded into a zero-touching
    /// lower/upper bound where that is exact.
    pub fn norm(mut self) -> Itv {
        if self.int_only {
            if self.lo.is_finite() {
                let mut l = self.lo.ceil();
                if self.lo_open && l == self.lo {
                    l += 1.0;
                }
                self.lo = l;
                self.lo_open = false;
            }
            if self.hi.is_finite() {
                let mut h = self.hi.floor();
                if self.hi_open && h == self.hi {
                    h -= 1.0;
                }
                self.hi = h;
                self.hi_open = false;
            }
        }
        if self.nonzero {
            if self.lo == 0.0 && !self.lo_open {
                if self.int_only {
                    self.lo = 1.0;
                } else {
                    self.lo_open = true;
                }
            }
            if self.hi == 0.0 && !self.hi_open {
                if self.int_only {
                    self.hi = -1.0;
                } else {
                    self.hi_open = true;
                }
            }
        }
        self
    }

    /// Is the concretization empty?
    pub fn is_empty(&self) -> bool {
        let s = self.norm();
        s.lo > s.hi || (s.lo == s.hi && (s.lo_open || s.hi_open || (s.nonzero && s.lo == 0.0)))
    }

    /// Is the concretization exactly `{0}`?
    pub fn is_exact_zero(&self) -> bool {
        self.lo == 0.0 && self.hi == 0.0 && !self.lo_open && !self.hi_open && !self.nonzero
    }

    /// Does the concretization contain `0`?
    pub fn contains_zero(&self) -> bool {
        !self.excludes_zero()
    }

    /// Is `0` provably outside the concretization?
    pub fn excludes_zero(&self) -> bool {
        if self.nonzero {
            return true;
        }
        let below = self.lo > 0.0 || (self.lo == 0.0 && self.lo_open);
        let above = self.hi < 0.0 || (self.hi == 0.0 && self.hi_open);
        below || above
    }

    /// The single value, if the interval is a finite singleton.
    pub fn as_exact(&self) -> Option<f64> {
        (self.lo == self.hi && !self.lo_open && !self.hi_open && self.lo.is_finite())
            .then_some(self.lo)
    }

    /// Least upper bound.
    pub fn join(&self, o: &Itv) -> Itv {
        let (lo, lo_open) = match self.lo.partial_cmp(&o.lo) {
            Some(std::cmp::Ordering::Less) => (self.lo, self.lo_open),
            Some(std::cmp::Ordering::Greater) => (o.lo, o.lo_open),
            _ => (self.lo, self.lo_open && o.lo_open),
        };
        let (hi, hi_open) = match self.hi.partial_cmp(&o.hi) {
            Some(std::cmp::Ordering::Greater) => (self.hi, self.hi_open),
            Some(std::cmp::Ordering::Less) => (o.hi, o.hi_open),
            _ => (self.hi, self.hi_open && o.hi_open),
        };
        Itv {
            lo,
            hi,
            lo_open,
            hi_open,
            nonzero: self.nonzero && o.nonzero,
            int_only: self.int_only && o.int_only,
        }
    }

    /// Greatest lower bound.
    pub fn meet(&self, o: &Itv) -> Itv {
        let (lo, lo_open) = match self.lo.partial_cmp(&o.lo) {
            Some(std::cmp::Ordering::Greater) => (self.lo, self.lo_open),
            Some(std::cmp::Ordering::Less) => (o.lo, o.lo_open),
            _ => (self.lo, self.lo_open || o.lo_open),
        };
        let (hi, hi_open) = match self.hi.partial_cmp(&o.hi) {
            Some(std::cmp::Ordering::Less) => (self.hi, self.hi_open),
            Some(std::cmp::Ordering::Greater) => (o.hi, o.hi_open),
            _ => (self.hi, self.hi_open || o.hi_open),
        };
        Itv {
            lo,
            hi,
            lo_open,
            hi_open,
            nonzero: self.nonzero || o.nonzero,
            int_only: self.int_only || o.int_only,
        }
        .norm()
    }

    /// Is every value of `self` a value of `other`? (Solution-set
    /// containment — the core of guard implication.)
    pub fn subset_of(&self, other: &Itv) -> bool {
        if self.is_empty() {
            return true;
        }
        let a = self.norm();
        let b = other.norm();
        let lo_ok = b.lo < a.lo
            || (b.lo == a.lo && (!b.lo_open || a.lo_open))
            || (b.lo == f64::NEG_INFINITY && a.lo == f64::NEG_INFINITY);
        let hi_ok = b.hi > a.hi
            || (b.hi == a.hi && (!b.hi_open || a.hi_open))
            || (b.hi == f64::INFINITY && a.hi == f64::INFINITY);
        let nz_ok = !b.nonzero || a.excludes_zero();
        let int_ok = !b.int_only || a.int_only;
        lo_ok && hi_ok && nz_ok && int_ok
    }

    /// Widening: a bound that moved since `prev` goes straight to
    /// infinity (guarantees fixpoint termination).
    pub fn widen(&self, prev: &Itv) -> Itv {
        let mut w = *self;
        if self.lo < prev.lo {
            w.lo = f64::NEG_INFINITY;
            w.lo_open = false;
        }
        if self.hi > prev.hi {
            w.hi = f64::INFINITY;
            w.hi_open = false;
        }
        w
    }

    /// Abstract negation.
    pub fn neg(&self) -> Itv {
        Itv {
            lo: -self.hi,
            hi: -self.lo,
            lo_open: self.hi_open,
            hi_open: self.lo_open,
            nonzero: self.nonzero,
            int_only: self.int_only,
        }
    }

    /// Abstract addition.
    pub fn add(&self, o: &Itv) -> Itv {
        Itv {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
            lo_open: self.lo_open || o.lo_open,
            hi_open: self.hi_open || o.hi_open,
            nonzero: false,
            int_only: self.int_only && o.int_only,
        }
        .nan_guard()
    }

    /// Abstract subtraction.
    pub fn sub(&self, o: &Itv) -> Itv {
        self.add(&o.neg())
    }

    /// Abstract multiplication (bound products; degrades to top when a
    /// `0 × inf` corner would make a bound undefined).
    pub fn mul(&self, o: &Itv) -> Itv {
        let ps = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        if ps.iter().any(|p| p.is_nan()) {
            return if self.int_only && o.int_only {
                Itv::int_top()
            } else {
                Itv::top()
            };
        }
        let lo = ps.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Itv {
            lo,
            hi,
            // Open-bound bookkeeping through products is subtle; drop it.
            lo_open: false,
            hi_open: false,
            nonzero: self.int_only && o.int_only && self.nonzero && o.nonzero,
            int_only: self.int_only && o.int_only,
        }
    }

    /// Abstract division (`/` always yields float). Only the easy sign
    /// fact is kept: nonnegative over provably-positive is nonnegative.
    pub fn div(&self, o: &Itv) -> Itv {
        let nonneg = self.lo >= 0.0 && o.lo >= 0.0 && o.excludes_zero();
        if nonneg {
            Itv::at_least(0.0, false, false)
        } else {
            Itv::top()
        }
    }

    fn nan_guard(self) -> Itv {
        if self.lo.is_nan() || self.hi.is_nan() {
            if self.int_only {
                Itv::int_top()
            } else {
                Itv::top()
            }
        } else {
            self
        }
    }
}

/// Decide a comparison between two intervals, when the bounds allow it.
pub fn cmp_tri(op: BinOp, a: &Itv, b: &Itv) -> Tri {
    let a = a.norm();
    let b = b.norm();
    // a provably below b: every a-value < every b-value.
    let lt = a.hi < b.lo || (a.hi == b.lo && (a.hi_open || b.lo_open) && a.hi.is_finite());
    // a provably at-or-below b.
    let le = a.hi <= b.lo && a.hi.is_finite();
    // Mirrors.
    let gt = b.hi < a.lo || (b.hi == a.lo && (b.hi_open || a.lo_open) && b.hi.is_finite());
    let ge = b.hi <= a.lo && b.hi.is_finite();
    match op {
        BinOp::Lt => {
            if lt {
                Tri::True
            } else if ge {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        BinOp::Le => {
            if lt || le {
                Tri::True
            } else if gt {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        BinOp::Gt => {
            if gt {
                Tri::True
            } else if lt || le {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        BinOp::Ge => {
            if gt || ge {
                Tri::True
            } else if lt {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        BinOp::Eq => match (a.as_exact(), b.as_exact()) {
            (Some(x), Some(y)) => Tri::of(x == y),
            _ => {
                if a.meet(&b).is_empty() {
                    Tri::False
                } else {
                    Tri::Unknown
                }
            }
        },
        BinOp::Ne => cmp_tri(BinOp::Eq, &a, &b).not(),
        _ => Tri::Unknown,
    }
}

/// The unit/dimension lattice: `Unknown` (top — no claim), `Scalar`
/// (provably dimensionless: literals and folded constants), or a
/// derived dimension vector over time/count/bytes. The all-zero
/// dimension (e.g. time divided by time) is a *ratio* — dimensionless,
/// but distinct from `Scalar` because it was derived from measured
/// quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// No claim about the unit (never produces a finding).
    Unknown,
    /// Provably dimensionless (literal or folded constant).
    Scalar,
    /// A dimension vector of exponents.
    Dim {
        /// Exponent of seconds.
        time: i8,
        /// Exponent of counts.
        count: i8,
        /// Exponent of bytes.
        bytes: i8,
    },
}

impl Unit {
    /// Plain time (seconds¹).
    pub fn time() -> Unit {
        Unit::Dim {
            time: 1,
            count: 0,
            bytes: 0,
        }
    }

    /// Plain count.
    pub fn count() -> Unit {
        Unit::Dim {
            time: 0,
            count: 1,
            bytes: 0,
        }
    }

    /// Plain bytes.
    pub fn bytes() -> Unit {
        Unit::Dim {
            time: 0,
            count: 0,
            bytes: 1,
        }
    }

    /// The dimensionless ratio (all exponents zero).
    pub fn ratio() -> Unit {
        Unit::Dim {
            time: 0,
            count: 0,
            bytes: 0,
        }
    }

    /// Unit of a product.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Unit) -> Unit {
        match (self, o) {
            (Unit::Scalar, u) | (u, Unit::Scalar) => u,
            (
                Unit::Dim {
                    time: a,
                    count: b,
                    bytes: c,
                },
                Unit::Dim {
                    time: d,
                    count: e,
                    bytes: f,
                },
            ) => Unit::Dim {
                time: a.saturating_add(d),
                count: b.saturating_add(e),
                bytes: c.saturating_add(f),
            },
            _ => Unit::Unknown,
        }
    }

    /// Unit of a quotient.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, o: Unit) -> Unit {
        let inv = match o {
            Unit::Scalar => Unit::Scalar,
            Unit::Dim { time, count, bytes } => Unit::Dim {
                time: time.saturating_neg(),
                count: count.saturating_neg(),
                bytes: bytes.saturating_neg(),
            },
            Unit::Unknown => Unit::Unknown,
        };
        self.mul(inv)
    }

    /// Is adding/subtracting these two units a provable mismatch?
    /// Only two *known, different* dimensions mismatch; `Scalar` and
    /// `Unknown` never do (the threshold-literal idiom `X > 0.25` must
    /// stay quiet).
    pub fn add_sub_mismatch(self, o: Unit) -> bool {
        matches!((self, o), (Unit::Dim { .. }, Unit::Dim { .. }) if self != o)
    }

    /// Unit of a sum/difference: a known dimension wins over `Scalar`;
    /// a mismatch or any `Unknown` degrades to `Unknown`.
    pub fn add_sub(self, o: Unit) -> Unit {
        match (self, o) {
            (Unit::Scalar, u) | (u, Unit::Scalar) => u,
            (a, b) if a == b => a,
            _ => Unit::Unknown,
        }
    }

    /// Join for fixpoints: equal units stay, anything else is `Unknown`.
    pub fn join(self, o: Unit) -> Unit {
        if self == o {
            self
        } else {
            Unit::Unknown
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unit::Unknown => write!(f, "unknown"),
            Unit::Scalar => write!(f, "dimensionless"),
            Unit::Dim { time, count, bytes } => {
                let dims = [("time", *time), ("count", *count), ("bytes", *bytes)];
                let part = |e: i8, name: &str| match e.abs() {
                    1 => name.to_string(),
                    n => format!("{name}^{n}"),
                };
                let num: Vec<String> = dims
                    .iter()
                    .filter(|(_, e)| *e > 0)
                    .map(|(n, e)| part(*e, n))
                    .collect();
                let den: Vec<String> = dims
                    .iter()
                    .filter(|(_, e)| *e < 0)
                    .map(|(n, e)| part(*e, n))
                    .collect();
                match (num.is_empty(), den.is_empty()) {
                    (true, true) => write!(f, "ratio"),
                    (false, true) => write!(f, "{}", num.join("·")),
                    (true, false) => write!(f, "1/{}", den.join("·")),
                    (false, false) => write!(f, "{}/{}", num.join("·"), den.join("·")),
                }
            }
        }
    }
}

/// The abstract value of one expression: the product of the interval,
/// unit, boolean, object-class and set-cardinality components.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsVal {
    /// Unreachable / not yet computed (fixpoint seed; strict in every
    /// operator).
    Bottom,
    /// A number.
    Num {
        /// Value range.
        itv: Itv,
        /// Inferred unit.
        unit: Unit,
    },
    /// A boolean.
    Bool(Tri),
    /// An object reference of a (possibly unknown) class.
    Obj {
        /// Static class name, when known.
        class: Option<String>,
    },
    /// A set of objects: cardinality bounds plus element class.
    Set {
        /// Cardinality range (integers ≥ 0).
        card: Itv,
        /// Element class name, when known.
        class: Option<String>,
    },
    /// Strings, enums, datetimes, unknown values — no claims.
    Other,
}

impl AbsVal {
    /// Numeric view.
    pub fn as_num(&self) -> Option<(Itv, Unit)> {
        match self {
            AbsVal::Num { itv, unit } => Some((*itv, *unit)),
            _ => None,
        }
    }

    /// The most general value of a static type.
    pub fn top_of(ty: &Type) -> AbsVal {
        match ty {
            Type::Int => AbsVal::Num {
                itv: Itv::int_top(),
                unit: Unit::Unknown,
            },
            Type::Float => AbsVal::Num {
                itv: Itv::top(),
                unit: Unit::Unknown,
            },
            Type::Bool => AbsVal::Bool(Tri::Unknown),
            Type::Class(c) => AbsVal::Obj {
                class: Some(c.clone()),
            },
            Type::Set(elem) => AbsVal::Set {
                card: Itv::at_least(0.0, false, true),
                class: match elem.as_ref() {
                    Type::Class(c) => Some(c.clone()),
                    _ => None,
                },
            },
            _ => AbsVal::Other,
        }
    }

    /// Least upper bound (`Bottom` is the identity; incompatible shapes
    /// go to `Other`).
    pub fn join(&self, o: &AbsVal) -> AbsVal {
        match (self, o) {
            (AbsVal::Bottom, v) | (v, AbsVal::Bottom) => v.clone(),
            (AbsVal::Num { itv: a, unit: ua }, AbsVal::Num { itv: b, unit: ub }) => AbsVal::Num {
                itv: a.join(b),
                unit: ua.join(*ub),
            },
            (AbsVal::Bool(a), AbsVal::Bool(b)) => {
                AbsVal::Bool(if a == b { *a } else { Tri::Unknown })
            }
            (AbsVal::Obj { class: a }, AbsVal::Obj { class: b }) => AbsVal::Obj {
                class: if a == b { a.clone() } else { None },
            },
            (AbsVal::Set { card: a, class: ca }, AbsVal::Set { card: b, class: cb }) => {
                AbsVal::Set {
                    card: a.join(b),
                    class: if ca == cb { ca.clone() } else { None },
                }
            }
            (AbsVal::Other, AbsVal::Other) => AbsVal::Other,
            _ => AbsVal::Other,
        }
    }

    /// Join with widening on the numeric components (for the function
    /// summary fixpoint).
    pub fn widen_from(&self, prev: &AbsVal) -> AbsVal {
        match (self, prev) {
            (AbsVal::Num { itv, unit }, AbsVal::Num { itv: p, .. }) => AbsVal::Num {
                itv: itv.widen(p),
                unit: *unit,
            },
            (AbsVal::Set { card, class }, AbsVal::Set { card: p, .. }) => AbsVal::Set {
                card: card.widen(p),
                class: class.clone(),
            },
            _ => self.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_zero_reasoning() {
        let count = Itv::at_least(0.0, false, true);
        assert!(count.contains_zero());
        let positive = count.meet(&Itv::at_least(0.0, true, false));
        assert!(positive.excludes_zero());
        assert_eq!(positive.norm().lo, 1.0, "int (0,inf) normalizes to [1,inf)");
        assert!(Itv::exact(0.0, false).is_exact_zero());
    }

    #[test]
    fn interval_implication() {
        let gt100 = Itv::at_least(100.0, true, false);
        let gt10 = Itv::at_least(10.0, true, false);
        assert!(gt100.subset_of(&gt10));
        assert!(!gt10.subset_of(&gt100));
        let ge1 = Itv::at_least(1.0, false, false);
        assert!(ge1.subset_of(&Itv::at_least(0.5, true, false)));
        assert!(!ge1.subset_of(&Itv::at_least(1.0, true, false)));
    }

    #[test]
    fn interval_comparison_decides() {
        let nonneg = Itv::at_least(0.0, false, true);
        let zero = Itv::exact(0.0, true);
        // COUNT(...) < 0 is provably false.
        assert_eq!(cmp_tri(BinOp::Lt, &nonneg, &zero), Tri::False);
        assert_eq!(cmp_tri(BinOp::Ge, &nonneg, &zero), Tri::True);
        assert_eq!(cmp_tri(BinOp::Gt, &nonneg, &zero), Tri::Unknown);
    }

    #[test]
    fn unit_lattice() {
        let t = Unit::time();
        let c = Unit::count();
        assert!(t.add_sub_mismatch(c));
        assert!(
            !t.add_sub_mismatch(Unit::Scalar),
            "threshold idiom stays quiet"
        );
        assert!(!t.add_sub_mismatch(Unit::Unknown));
        assert_eq!(t.div(t), Unit::ratio());
        assert_eq!(Unit::Scalar.mul(t), t);
        assert_eq!(t.div(c).to_string(), "time/count");
        assert_eq!(Unit::ratio().to_string(), "ratio");
    }

    #[test]
    fn widening_terminates_growth() {
        let a = Itv::exact(1.0, true);
        let b = Itv {
            lo: 1.0,
            hi: 5.0,
            ..Itv::exact(1.0, true)
        };
        let w = b.widen(&a);
        assert_eq!(w.hi, f64::INFINITY);
        assert_eq!(w.lo, 1.0);
    }
}
