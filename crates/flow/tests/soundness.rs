//! Soundness of the abstract interpreter's proven claims, checked
//! against **both** runtime backends on randomized stores and specs.
//!
//! For every generated (store, suite) pair and every property context:
//!
//! * a condition flow proves `False` must never fire at runtime (so any
//!   arm it guards never runs), and one proven `True` must always fire;
//! * a property whose every division/modulo site is `ProvenSafe` (and
//!   whose helpers and constants are likewise all safe) must never
//!   raise `DivByZero` — through the interpreter *or* the compiled
//!   engine.
//!
//! The generated properties are shaped so the claims actually occur:
//! `COUNT(...) < 0` conditions (proven unsatisfiable), `COUNT(...) >= 0`
//! (proven tautological), and `X / N` arms guarded by `N > k` with
//! `k >= 0` (proven safe by guard implication through a `LET`).

use asl_eval::{compile, CompiledEvaluator, CosyData, Interpreter, Value, COSY_DATA_MODEL};
use flow::{DivVerdict, Tri};
use perfdata::{DateTime, RegionKind, Store, TimingType, VersionId};
use proptest::prelude::*;
use std::sync::Arc;

/// Tiny deterministic splitmix64 stream for store/spec shaping (same
/// scheme as `asl-eval`'s `compiled_equiv` generator).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

/// A randomized store: one version, patchy timing coverage including
/// zero durations and missing records, so the runtime actually hits
/// empty sets and zero denominators where the analysis allows them.
fn build_store(seed: u64, n_runs: usize, n_regions: usize) -> (Store, VersionId) {
    let mut rng = Rng(seed);
    let mut s = Store::new();
    let p = s.add_program("soundprog");
    let v = s.add_version(p, DateTime::from_secs(1), "generated");
    let mut runs = Vec::new();
    for i in 0..n_runs {
        let no_pe = 1 << rng.below(6);
        runs.push(s.add_run(v, DateTime::from_secs(10 + i as i64), no_pe as u32, 450));
    }
    let f_main = s.add_function(v, "main");
    let mut regions = Vec::new();
    for i in 0..n_regions {
        let parent = if regions.is_empty() || rng.chance(30) {
            None
        } else {
            Some(regions[rng.below(regions.len() as u64) as usize])
        };
        let kind = if i == 0 {
            RegionKind::Subprogram
        } else {
            RegionKind::Loop
        };
        regions.push(s.add_region(
            f_main,
            parent,
            kind,
            format!("r{i}"),
            (i as u32, i as u32 + 9),
        ));
    }
    for &r in &regions {
        for &run in &runs {
            if rng.chance(70) {
                let incl = if rng.chance(15) {
                    0.0
                } else {
                    rng.f64_in(0.5, 50.0)
                };
                let excl = rng.f64_in(0.0, incl.max(0.1));
                s.add_total_timing(r, run, excl, incl, 0.0);
            }
            for &ty in &TimingType::ALL[..6] {
                if rng.chance(25) {
                    let t = if rng.chance(20) {
                        0.0
                    } else {
                        rng.f64_in(0.001, 5.0)
                    };
                    s.add_typed_timing(r, run, ty, t);
                }
            }
        }
    }
    (s, v)
}

/// Generated properties shaped so flow proves something about them:
/// `(never)` is unsatisfiable, `(always)` tautological, and the `X / N`
/// severity arm is guarded by `(pos) N > k` with `k >= 0`.
fn generated_properties(seed: u64) -> String {
    let mut rng = Rng(seed ^ 0x50f7_50f7);
    let mut out = String::new();
    for i in 0..3 {
        let agg = ["SUM", "MIN", "MAX", "AVG", "COUNT"][rng.below(5) as usize];
        let ty = ["Barrier", "Lock", "PtpSend", "Broadcast"][rng.below(4) as usize];
        let filter = if rng.chance(50) {
            format!(" AND tt.Type == {ty}")
        } else {
            String::new()
        };
        let k = rng.below(3);
        let conf = rng.f64_in(0.1, 1.0);
        out.push_str(&format!(
            "Property Gen{i}(Region r, TestRun t, Region Basis) {{\n\
                 LET int N = COUNT(r.TotTimes);\n\
                     float X = {agg}(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t{filter})\n\
                 IN CONDITION: (pos) N > {k}\n\
                            OR (always) COUNT(r.TypTimes) >= 0\n\
                            OR (never) COUNT(r.TypTimes) < 0;\n\
                 CONFIDENCE: MAX((pos) -> 0.9, (always) -> {conf:.2});\n\
                 SEVERITY: MAX((pos) -> X / N, (never) -> 7.0);\n\
             }}\n"
        ));
    }
    out
}

/// Check one backend's outcome against the flow claims for a property.
fn check_claims(
    what: &str,
    pf: &flow::PropFlow,
    all_div_safe: bool,
    outcome: &Result<asl_eval::PropertyOutcome, asl_eval::EvalError>,
) {
    match outcome {
        Ok(o) => {
            for cf in &pf.conditions {
                let Some(id) = &cf.id else { continue };
                let Some((_, fired)) = o.fired.iter().find(|(i, _)| i.as_deref() == Some(id))
                else {
                    continue;
                };
                match cf.value {
                    Tri::False => assert!(
                        !fired,
                        "{what}: condition ({id}) proven False but fired at runtime"
                    ),
                    Tri::True => assert!(
                        fired,
                        "{what}: condition ({id}) proven True but did not fire"
                    ),
                    Tri::Unknown => {}
                }
            }
        }
        Err(e) => {
            if all_div_safe {
                assert_ne!(
                    e.kind,
                    asl_eval::EvalErrorKind::DivByZero,
                    "{what}: every division proven safe but DivByZero raised: {}",
                    e.message
                );
            }
        }
    }
}

fn check_case(seed: u64, n_runs: usize, n_regions: usize) {
    let (store, v) = build_store(seed, n_runs, n_regions);
    let src = format!(
        "{COSY_DATA_MODEL}\n{}\n{}",
        cosy::suite::SUITE_PROPERTIES,
        generated_properties(seed)
    );
    let spec = asl_core::parse_and_check(&src).expect("generated suite checks");
    let comp = Arc::new(compile(&spec));
    let report = flow::analyze(&spec, &comp);

    let data = CosyData::new(&store);
    let interp = Interpreter::new(&spec, &data).expect("interpreter binds");
    let compiled = CompiledEvaluator::new(comp.clone(), &data).expect("compiled binds");

    let basis = store.main_region(v).expect("main region");
    let runs: Vec<_> = store.versions[v.index()].runs.clone();
    let regions: Vec<u32> = (0..store.regions.len() as u32).collect();

    // Shared declarations safe ⇒ the per-property claim only needs the
    // property's own sites.
    let decls_safe = report.consts.iter().chain(&report.functions).all(|d| {
        d.divisions
            .iter()
            .all(|s| s.verdict == DivVerdict::ProvenSafe)
            || d.divisions.is_empty()
    });

    for p in spec.properties() {
        if p.params[0].ty.to_string() != "Region" {
            continue; // FunctionCall-context properties need call data
        }
        let name = &p.name.name;
        let Some(pf) = report.property(name) else {
            continue;
        };
        let all_div_safe = decls_safe
            && pf
                .divisions
                .iter()
                .all(|s| s.verdict == DivVerdict::ProvenSafe);
        for &run in &runs {
            for &r in &regions {
                let args = [
                    Value::obj("Region", r),
                    Value::run(run),
                    Value::region(basis),
                ];
                check_claims(
                    &format!("interp {name}(r{r})"),
                    pf,
                    all_div_safe,
                    &interp.eval_property(name, &args),
                );
                check_claims(
                    &format!("compiled {name}(r{r})"),
                    pf,
                    all_div_safe,
                    &compiled.eval_property(name, &args),
                );
            }
        }
    }

    // The generated shapes must actually exercise the claims — guard
    // against the generator and the analysis drifting apart.
    let gen0 = report.property("Gen0").expect("Gen0 analyzed");
    assert!(
        gen0.conditions.iter().any(|c| c.value == Tri::False),
        "generator no longer produces a proven-False condition"
    );
    assert!(
        gen0.conditions.iter().any(|c| c.value == Tri::True),
        "generator no longer produces a proven-True condition"
    );
    assert!(
        gen0.divisions
            .iter()
            .any(|s| s.verdict == DivVerdict::ProvenSafe),
        "generator no longer produces a proven-safe division"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn proven_claims_hold_on_both_backends(
        seed in 0u64..1_000_000_000,
        n_runs in 1usize..4,
        n_regions in 1usize..4,
    ) {
        check_case(seed, n_runs, n_regions);
    }
}

#[test]
fn proven_claims_hold_on_fixed_edge_seeds() {
    // Single run/region (empty-set heavy) and a denser shape.
    check_case(0xdead_beef, 1, 1);
    check_case(0x5eed_cafe, 3, 3);
}
