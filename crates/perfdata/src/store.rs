//! The typed arena store holding a full performance database.

use crate::ids::*;
use crate::model::*;
use crate::timing_type::TimingType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A complete COSY performance database: multiple applications, multiple
/// versions per application, multiple test runs per version (§3 of the
/// paper), with static structure (functions, regions, call sites) and
/// dynamic measurements (total/typed timings, call statistics).
///
/// Besides the primary arenas, the store maintains **secondary indexes**
/// (`(region, run) → timing`, `region → children`, `version → reference
/// run`) so the analyzer's hot metric loads are O(1) hash lookups instead
/// of arena scans. The indexes are derived data kept consistent by every
/// builder/upsert method; they are private, and while the arenas remain
/// `pub` for read access, **mutation must go through the builder/upsert
/// methods** — pushing into an arena directly leaves the indexes stale
/// and the indexed lookups (and the compiled evaluator's filtered loads)
/// answering from the past.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Store {
    /// All programs.
    pub programs: Vec<Program>,
    /// All program versions.
    pub versions: Vec<ProgVersion>,
    /// All test runs.
    pub runs: Vec<TestRun>,
    /// All functions.
    pub functions: Vec<Function>,
    /// All regions.
    pub regions: Vec<Region>,
    /// All total timings.
    pub total_timings: Vec<TotalTiming>,
    /// All typed timings.
    pub typed_timings: Vec<TypedTiming>,
    /// All function-call sites.
    pub calls: Vec<FunctionCall>,
    /// All call statistics.
    pub call_timings: Vec<CallTiming>,
    /// All source-code blobs.
    pub sources: Vec<SourceCode>,

    // ---- secondary indexes (derived; see the struct docs) ---------------
    /// `(region, run)` → total timings in arena order. Well-formed data has
    /// exactly one entry, but the index must mirror the arena faithfully —
    /// a duplicate record still surfaces as an ambiguous `Summary`.
    total_idx: HashMap<(RegionId, TestRunId), Vec<TotalTimingId>>,
    /// `(region, run, type)` → its typed timing (first recorded wins,
    /// matching the arena-scan order the lookups historically used).
    typed_idx: HashMap<(RegionId, TestRunId, TimingType), TypedTimingId>,
    /// `(region, run)` → all typed timings of that run, in arena order.
    typed_by_run: HashMap<(RegionId, TestRunId), Vec<TypedTimingId>>,
    /// `(call, run)` → call-statistics records in arena order (one entry
    /// when well-formed; see `total_idx`).
    call_idx: HashMap<(CallId, TestRunId), Vec<CallTimingId>>,
    /// Region → direct children, in arena order.
    children_idx: HashMap<RegionId, Vec<RegionId>>,
    /// Version → its run with the smallest processor count (earliest run
    /// wins ties, matching `min_by_key` over the version's run list).
    min_pe_idx: HashMap<VersionId, TestRunId>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    // ---- builders ---------------------------------------------------------

    /// Add a program.
    pub fn add_program(&mut self, name: impl Into<String>) -> ProgramId {
        let id = ProgramId(self.programs.len() as u32);
        self.programs.push(Program {
            name: name.into(),
            versions: Vec::new(),
        });
        id
    }

    /// Add a version to a program.
    pub fn add_version(
        &mut self,
        program: ProgramId,
        compilation: DateTime,
        source_text: impl Into<String>,
    ) -> VersionId {
        let code = SourceId(self.sources.len() as u32);
        self.sources.push(SourceCode {
            text: source_text.into(),
        });
        let id = VersionId(self.versions.len() as u32);
        self.versions.push(ProgVersion {
            program,
            compilation,
            functions: Vec::new(),
            runs: Vec::new(),
            code,
        });
        self.programs[program.index()].versions.push(id);
        id
    }

    /// Add a test run to a version.
    pub fn add_run(
        &mut self,
        version: VersionId,
        start: DateTime,
        no_pe: u32,
        clockspeed: u32,
    ) -> TestRunId {
        let id = TestRunId(self.runs.len() as u32);
        self.runs.push(TestRun {
            version,
            start,
            no_pe,
            clockspeed,
        });
        self.versions[version.index()].runs.push(id);
        match self.min_pe_idx.get(&version) {
            // Strictly-smaller only: the earliest run keeps the reference
            // slot on ties, matching `min_by_key` over the run list.
            Some(&cur) if self.runs[cur.index()].no_pe <= no_pe => {}
            _ => {
                self.min_pe_idx.insert(version, id);
            }
        }
        id
    }

    /// Add a function to a version.
    pub fn add_function(&mut self, version: VersionId, name: impl Into<String>) -> FunctionId {
        let id = FunctionId(self.functions.len() as u32);
        self.functions.push(Function {
            version,
            name: name.into(),
            calls: Vec::new(),
            regions: Vec::new(),
        });
        self.versions[version.index()].functions.push(id);
        id
    }

    /// Add a region to a function.
    pub fn add_region(
        &mut self,
        function: FunctionId,
        parent: Option<RegionId>,
        kind: RegionKind,
        name: impl Into<String>,
        lines: (u32, u32),
    ) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            function,
            parent,
            kind,
            name: name.into(),
            first_line: lines.0,
            last_line: lines.1,
            tot_times: Vec::new(),
            typ_times: Vec::new(),
        });
        self.functions[function.index()].regions.push(id);
        if let Some(p) = parent {
            self.children_idx.entry(p).or_default().push(id);
        }
        id
    }

    /// Record the total timing of a region in a run.
    pub fn add_total_timing(
        &mut self,
        region: RegionId,
        run: TestRunId,
        excl: f64,
        incl: f64,
        ovhd: f64,
    ) -> TotalTimingId {
        let id = TotalTimingId(self.total_timings.len() as u32);
        self.total_timings.push(TotalTiming {
            region,
            run,
            excl,
            incl,
            ovhd,
        });
        self.regions[region.index()].tot_times.push(id);
        self.total_idx.entry((region, run)).or_default().push(id);
        id
    }

    /// Record a typed overhead timing of a region in a run.
    pub fn add_typed_timing(
        &mut self,
        region: RegionId,
        run: TestRunId,
        ty: TimingType,
        time: f64,
    ) -> TypedTimingId {
        let id = TypedTimingId(self.typed_timings.len() as u32);
        self.typed_timings.push(TypedTiming {
            region,
            run,
            ty,
            time,
        });
        self.regions[region.index()].typ_times.push(id);
        self.typed_idx.entry((region, run, ty)).or_insert(id);
        self.typed_by_run.entry((region, run)).or_default().push(id);
        id
    }

    /// Add a call site. The call is registered on the **callee**'s `Calls`
    /// set, matching the paper's `Function.Calls` attribute ("the call
    /// sites" of the function).
    pub fn add_call(
        &mut self,
        caller: FunctionId,
        callee: FunctionId,
        calling_reg: RegionId,
    ) -> CallId {
        let id = CallId(self.calls.len() as u32);
        self.calls.push(FunctionCall {
            caller,
            callee,
            calling_reg,
            sums: Vec::new(),
        });
        self.functions[callee.index()].calls.push(id);
        id
    }

    /// Record call statistics for a call site in a run.
    #[allow(clippy::too_many_arguments)]
    pub fn add_call_timing(&mut self, ct: CallTiming) -> CallTimingId {
        let id = CallTimingId(self.call_timings.len() as u32);
        let call = ct.call;
        let run = ct.run;
        self.call_timings.push(ct);
        self.calls[call.index()].sums.push(id);
        self.call_idx.entry((call, run)).or_default().push(id);
        id
    }

    // ---- streaming upserts ------------------------------------------------
    //
    // The online ingestion pipeline (`cosy-online`) receives measurement
    // events continuously and may see refinements of a record it already
    // applied (e.g. a region's running total). The upsert hooks keep the
    // one-record-per-(region, run[, type]) invariant `validate` enforces
    // while allowing in-place refinement, and report whether they inserted
    // or updated so callers can maintain dirty-context deltas.

    /// Insert or refresh the total timing of a region in a run. Returns the
    /// timing id and `true` when a new record was inserted (`false` when an
    /// existing record was updated in place).
    pub fn upsert_total_timing(
        &mut self,
        region: RegionId,
        run: TestRunId,
        excl: f64,
        incl: f64,
        ovhd: f64,
    ) -> (TotalTimingId, bool) {
        let existing = self.total_timing_id(region, run);
        match existing {
            Some(id) => {
                let t = &mut self.total_timings[id.index()];
                t.excl = excl;
                t.incl = incl;
                t.ovhd = ovhd;
                (id, false)
            }
            None => (self.add_total_timing(region, run, excl, incl, ovhd), true),
        }
    }

    /// Insert or refresh a typed overhead timing. Returns the timing id and
    /// `true` on insert (`false` on in-place update).
    pub fn upsert_typed_timing(
        &mut self,
        region: RegionId,
        run: TestRunId,
        ty: TimingType,
        time: f64,
    ) -> (TypedTimingId, bool) {
        let existing = self.typed_idx.get(&(region, run, ty)).copied();
        match existing {
            Some(id) => {
                self.typed_timings[id.index()].time = time;
                (id, false)
            }
            None => (self.add_typed_timing(region, run, ty, time), true),
        }
    }

    /// Insert or refresh the call statistics of a call site in a run.
    /// Returns the record id and `true` on insert (`false` on update).
    pub fn upsert_call_timing(&mut self, ct: CallTiming) -> (CallTimingId, bool) {
        let existing = self.call_timing_id(ct.call, ct.run);
        match existing {
            Some(id) => {
                self.call_timings[id.index()] = ct;
                (id, false)
            }
            None => (self.add_call_timing(ct), true),
        }
    }

    // ---- streaming lookups ------------------------------------------------

    /// Find a program by name.
    pub fn program_by_name(&self, name: &str) -> Option<ProgramId> {
        self.programs
            .iter()
            .position(|p| p.name == name)
            .map(|i| ProgramId(i as u32))
    }

    /// Find a function of a version by name.
    pub fn function_by_name(&self, version: VersionId, name: &str) -> Option<FunctionId> {
        self.versions[version.index()]
            .functions
            .iter()
            .copied()
            .find(|f| self.functions[f.index()].name == name)
    }

    /// Find a region of a function by name and first source line (the
    /// stable identity a trace stream refers to regions by).
    pub fn region_by_name(
        &self,
        function: FunctionId,
        name: &str,
        first_line: u32,
    ) -> Option<RegionId> {
        self.functions[function.index()]
            .regions
            .iter()
            .copied()
            .find(|r| {
                let reg = &self.regions[r.index()];
                reg.name == name && reg.first_line == first_line
            })
    }

    /// Find the call site of `callee` from `caller` at region
    /// `calling_reg`, if registered.
    pub fn call_site(
        &self,
        caller: FunctionId,
        callee: FunctionId,
        calling_reg: RegionId,
    ) -> Option<CallId> {
        self.functions[callee.index()]
            .calls
            .iter()
            .copied()
            .find(|c| {
                let call = &self.calls[c.index()];
                call.caller == caller && call.calling_reg == calling_reg
            })
    }

    /// The smallest processor count among the runs of a version, if any
    /// run exists. Streaming ingestion uses this to detect when a new run
    /// changes the reference configuration (which invalidates every
    /// speedup-derived result of the version). O(1) via the reference-run
    /// index.
    pub fn min_pe_of_version(&self, v: VersionId) -> Option<u32> {
        self.min_pe_idx.get(&v).map(|r| self.runs[r.index()].no_pe)
    }

    // ---- navigation ---------------------------------------------------------

    /// The program a version belongs to.
    pub fn program_of(&self, v: VersionId) -> &Program {
        &self.programs[self.versions[v.index()].program.index()]
    }

    /// Direct children of a region. O(children) via the children index.
    pub fn children(&self, r: RegionId) -> impl Iterator<Item = RegionId> + '_ {
        self.children_idx
            .get(&r)
            .into_iter()
            .flat_map(|kids| kids.iter().copied())
    }

    /// The id of the (first) total timing of a region in a run. O(1).
    pub fn total_timing_id(&self, r: RegionId, run: TestRunId) -> Option<TotalTimingId> {
        self.total_idx
            .get(&(r, run))
            .and_then(|ids| ids.first().copied())
    }

    /// All total-timing records of a region in a run, in arena order —
    /// exactly one when the store is well-formed. O(1).
    pub fn total_timing_ids(&self, r: RegionId, run: TestRunId) -> &[TotalTimingId] {
        self.total_idx
            .get(&(r, run))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The unique total timing of a region in a run, if recorded. O(1).
    pub fn total_timing(&self, r: RegionId, run: TestRunId) -> Option<&TotalTiming> {
        self.total_timing_id(r, run)
            .map(|id| &self.total_timings[id.index()])
    }

    /// All typed timings of a region in one run, in recording order. O(1)
    /// to locate; the slice covers every overhead type of the run.
    pub fn typed_timing_ids(&self, r: RegionId, run: TestRunId) -> &[TypedTimingId] {
        self.typed_by_run
            .get(&(r, run))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The typed timing of a region for a given run and type, if recorded.
    /// O(1).
    pub fn typed_timing(
        &self,
        r: RegionId,
        run: TestRunId,
        ty: TimingType,
    ) -> Option<&TypedTiming> {
        self.typed_idx
            .get(&(r, run, ty))
            .map(|id| &self.typed_timings[id.index()])
    }

    /// The id of the (first) call-statistics record of a call site in a
    /// run. O(1).
    pub fn call_timing_id(&self, c: CallId, run: TestRunId) -> Option<CallTimingId> {
        self.call_idx
            .get(&(c, run))
            .and_then(|ids| ids.first().copied())
    }

    /// All call-statistics records of a call site in a run, in arena order
    /// — exactly one when the store is well-formed. O(1).
    pub fn call_timing_ids(&self, c: CallId, run: TestRunId) -> &[CallTimingId] {
        self.call_idx
            .get(&(c, run))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Inclusive duration of a region in a run (the paper's `Duration`
    /// helper), or `None` when no timing was recorded. O(1).
    pub fn duration(&self, r: RegionId, run: TestRunId) -> Option<f64> {
        self.total_timing(r, run).map(|t| t.incl)
    }

    /// The test run of a version with the smallest processor count — the
    /// reference run used by `SublinearSpeedup` (§4.2). O(1) via the
    /// reference-run index.
    pub fn min_pe_run(&self, v: VersionId) -> Option<TestRunId> {
        self.min_pe_idx.get(&v).copied()
    }

    /// The root (subprogram) region of a function, by convention the first
    /// region added to it.
    pub fn root_region(&self, f: FunctionId) -> Option<RegionId> {
        self.functions[f.index()].regions.first().copied()
    }

    /// The main region of a version: the root region of the function named
    /// `main`, or of the first function otherwise. This is the ranking
    /// basis region COSY uses by default.
    pub fn main_region(&self, v: VersionId) -> Option<RegionId> {
        let funcs = &self.versions[v.index()].functions;
        let main = funcs
            .iter()
            .copied()
            .find(|f| self.functions[f.index()].name == "main")
            .or_else(|| funcs.first().copied())?;
        self.root_region(main)
    }

    /// Total number of objects across all arenas (used for sizing reports).
    pub fn object_count(&self) -> usize {
        self.programs.len()
            + self.versions.len()
            + self.runs.len()
            + self.functions.len()
            + self.regions.len()
            + self.total_timings.len()
            + self.typed_timings.len()
            + self.calls.len()
            + self.call_timings.len()
            + self.sources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the small two-run database used across the store tests.
    pub(crate) fn sample_store() -> (Store, VersionId, TestRunId, TestRunId, RegionId) {
        let mut s = Store::new();
        let p = s.add_program("fluid3d");
        let v = s.add_version(p, DateTime::from_secs(10), "program fluid3d");
        let r1 = s.add_run(v, DateTime::from_secs(20), 2, 450);
        let r2 = s.add_run(v, DateTime::from_secs(30), 8, 450);
        let f = s.add_function(v, "main");
        let root = s.add_region(f, None, RegionKind::Subprogram, "main", (1, 100));
        let lp = s.add_region(f, Some(root), RegionKind::Loop, "main:loop@10", (10, 40));
        s.add_total_timing(root, r1, 1.0, 10.0, 0.5);
        s.add_total_timing(root, r2, 1.5, 14.0, 1.0);
        s.add_total_timing(lp, r1, 6.0, 9.0, 0.3);
        s.add_total_timing(lp, r2, 8.0, 12.5, 0.9);
        s.add_typed_timing(lp, r2, TimingType::Barrier, 2.5);
        (s, v, r1, r2, lp)
    }

    #[test]
    fn builders_maintain_backlinks() {
        let (s, v, r1, r2, lp) = sample_store();
        assert_eq!(s.versions[v.index()].runs, vec![r1, r2]);
        assert_eq!(s.programs[0].versions.len(), 1);
        assert_eq!(s.regions[lp.index()].tot_times.len(), 2);
    }

    #[test]
    fn total_timing_lookup_is_per_run() {
        let (s, _, r1, r2, lp) = sample_store();
        assert_eq!(s.total_timing(lp, r1).unwrap().incl, 9.0);
        assert_eq!(s.total_timing(lp, r2).unwrap().incl, 12.5);
    }

    #[test]
    fn duration_matches_inclusive_time() {
        let (s, _, r1, _, lp) = sample_store();
        assert_eq!(s.duration(lp, r1), Some(9.0));
    }

    #[test]
    fn min_pe_run_picks_smallest_configuration() {
        let (s, v, r1, _, _) = sample_store();
        assert_eq!(s.min_pe_run(v), Some(r1));
    }

    #[test]
    fn children_navigation() {
        let (s, _, _, _, lp) = sample_store();
        let root = s.regions[lp.index()].parent.unwrap();
        let kids: Vec<_> = s.children(root).collect();
        assert_eq!(kids, vec![lp]);
        assert_eq!(s.children(lp).count(), 0);
    }

    #[test]
    fn main_region_prefers_function_named_main() {
        let (s, v, _, _, _) = sample_store();
        let main = s.main_region(v).unwrap();
        assert_eq!(s.regions[main.index()].name, "main");
    }

    #[test]
    fn typed_timing_lookup() {
        let (s, _, r1, r2, lp) = sample_store();
        assert!(s.typed_timing(lp, r2, TimingType::Barrier).is_some());
        assert!(s.typed_timing(lp, r1, TimingType::Barrier).is_none());
        assert!(s.typed_timing(lp, r2, TimingType::IoRead).is_none());
    }

    #[test]
    fn calls_register_on_callee() {
        let mut s = Store::new();
        let p = s.add_program("x");
        let v = s.add_version(p, DateTime::from_secs(0), "");
        let f_main = s.add_function(v, "main");
        let f_barrier = s.add_function(v, "barrier");
        let root = s.add_region(f_main, None, RegionKind::Subprogram, "main", (1, 10));
        let c = s.add_call(f_main, f_barrier, root);
        assert_eq!(s.functions[f_barrier.index()].calls, vec![c]);
        assert!(s.functions[f_main.index()].calls.is_empty());
    }

    #[test]
    fn upsert_total_timing_updates_in_place() {
        let (mut s, _, r1, _, lp) = sample_store();
        let before = s.total_timings.len();
        let (id, inserted) = s.upsert_total_timing(lp, r1, 7.0, 9.5, 0.4);
        assert!(!inserted);
        assert_eq!(s.total_timings.len(), before);
        assert_eq!(s.total_timings[id.index()].incl, 9.5);
        assert_eq!(s.duration(lp, r1), Some(9.5));
    }

    #[test]
    fn upsert_total_timing_inserts_new_record() {
        let (mut s, v, _, _, _) = sample_store();
        let r3 = s.add_run(v, DateTime::from_secs(40), 16, 450);
        let root = s.main_region(v).unwrap();
        let before = s.total_timings.len();
        let (_, inserted) = s.upsert_total_timing(root, r3, 2.0, 20.0, 1.5);
        assert!(inserted);
        assert_eq!(s.total_timings.len(), before + 1);
        assert_eq!(s.duration(root, r3), Some(20.0));
    }

    #[test]
    fn upsert_typed_timing_roundtrip() {
        let (mut s, _, _, r2, lp) = sample_store();
        let (_, inserted) = s.upsert_typed_timing(lp, r2, TimingType::Barrier, 3.0);
        assert!(!inserted);
        assert_eq!(
            s.typed_timing(lp, r2, TimingType::Barrier).unwrap().time,
            3.0
        );
        let (_, inserted) = s.upsert_typed_timing(lp, r2, TimingType::IoRead, 0.5);
        assert!(inserted);
    }

    #[test]
    fn upsert_call_timing_replaces_per_run() {
        let mut s = Store::new();
        let p = s.add_program("x");
        let v = s.add_version(p, DateTime::from_secs(0), "");
        let f_main = s.add_function(v, "main");
        let f_bar = s.add_function(v, "barrier");
        let root = s.add_region(f_main, None, RegionKind::Subprogram, "main", (1, 10));
        let run = s.add_run(v, DateTime::from_secs(1), 4, 450);
        let c = s.add_call(f_main, f_bar, root);
        let ct = |mean_time: f64| CallTiming {
            call: c,
            run,
            min_count: 1.0,
            max_count: 1.0,
            mean_count: 1.0,
            stdev_count: 0.0,
            min_count_pe: 0,
            max_count_pe: 0,
            min_time: mean_time,
            max_time: mean_time,
            mean_time,
            stdev_time: 0.0,
            min_time_pe: 0,
            max_time_pe: 0,
        };
        let (_, first) = s.upsert_call_timing(ct(1.0));
        let (id, second) = s.upsert_call_timing(ct(2.0));
        assert!(first);
        assert!(!second);
        assert_eq!(s.call_timings.len(), 1);
        assert_eq!(s.call_timings[id.index()].mean_time, 2.0);
    }

    #[test]
    fn streaming_lookups_find_existing_objects() {
        let (s, v, _, _, lp) = sample_store();
        assert_eq!(s.program_by_name("fluid3d"), Some(ProgramId(0)));
        assert_eq!(s.program_by_name("nope"), None);
        let f = s.function_by_name(v, "main").unwrap();
        assert_eq!(s.functions[f.index()].name, "main");
        let found = s.region_by_name(f, "main:loop@10", 10).unwrap();
        assert_eq!(found, lp);
        assert_eq!(s.region_by_name(f, "main:loop@10", 11), None);
        assert_eq!(s.min_pe_of_version(v), Some(2));
    }

    #[test]
    fn call_site_lookup() {
        let mut s = Store::new();
        let p = s.add_program("x");
        let v = s.add_version(p, DateTime::from_secs(0), "");
        let f_main = s.add_function(v, "main");
        let f_bar = s.add_function(v, "barrier");
        let root = s.add_region(f_main, None, RegionKind::Subprogram, "main", (1, 10));
        let c = s.add_call(f_main, f_bar, root);
        assert_eq!(s.call_site(f_main, f_bar, root), Some(c));
        assert_eq!(s.call_site(f_bar, f_main, root), None);
    }

    #[test]
    fn indexes_agree_with_arena_scans() {
        let (s, v, r1, r2, lp) = sample_store();
        // total_idx vs scan over tot_times.
        for region in [RegionId(0), lp] {
            for run in [r1, r2] {
                let scanned = s.regions[region.index()]
                    .tot_times
                    .iter()
                    .copied()
                    .find(|id| s.total_timings[id.index()].run == run);
                assert_eq!(s.total_timing_id(region, run), scanned);
            }
        }
        // typed indexes vs scan over typ_times.
        let scanned: Vec<_> = s.regions[lp.index()]
            .typ_times
            .iter()
            .copied()
            .filter(|id| s.typed_timings[id.index()].run == r2)
            .collect();
        assert_eq!(s.typed_timing_ids(lp, r2), scanned.as_slice());
        assert!(s.typed_timing_ids(lp, r1).is_empty());
        // children index vs full-arena scan.
        let root = s.regions[lp.index()].parent.unwrap();
        let scanned: Vec<_> = s
            .regions
            .iter()
            .enumerate()
            .filter(|(_, reg)| reg.parent == Some(root))
            .map(|(i, _)| RegionId(i as u32))
            .collect();
        assert_eq!(s.children(root).collect::<Vec<_>>(), scanned);
        // reference-run index vs min_by_key scan.
        let scanned = s.versions[v.index()]
            .runs
            .iter()
            .copied()
            .min_by_key(|r| s.runs[r.index()].no_pe);
        assert_eq!(s.min_pe_run(v), scanned);
    }

    #[test]
    fn min_pe_index_keeps_earliest_on_ties_and_tracks_new_minimum() {
        let (mut s, v, r1, _, _) = sample_store();
        // A tie on no_pe keeps the earlier run.
        s.add_run(v, DateTime::from_secs(40), 2, 450);
        assert_eq!(s.min_pe_run(v), Some(r1));
        // A strictly smaller configuration takes over.
        let r4 = s.add_run(v, DateTime::from_secs(50), 1, 450);
        assert_eq!(s.min_pe_run(v), Some(r4));
        assert_eq!(s.min_pe_of_version(v), Some(1));
    }

    #[test]
    fn upserts_keep_indexes_consistent() {
        let (mut s, v, r1, _, lp) = sample_store();
        let (id, _) = s.upsert_total_timing(lp, r1, 7.0, 9.5, 0.4);
        assert_eq!(s.total_timing_id(lp, r1), Some(id));
        let r3 = s.add_run(v, DateTime::from_secs(40), 16, 450);
        let (id3, inserted) = s.upsert_total_timing(lp, r3, 1.0, 2.0, 0.1);
        assert!(inserted);
        assert_eq!(s.total_timing_id(lp, r3), Some(id3));
        let (tid, inserted) = s.upsert_typed_timing(lp, r3, TimingType::IoRead, 0.5);
        assert!(inserted);
        assert_eq!(s.typed_timing_ids(lp, r3), &[tid]);
        assert_eq!(
            s.typed_timing(lp, r3, TimingType::IoRead).map(|t| t.time),
            Some(0.5)
        );
    }

    #[test]
    fn object_count_sums_arenas() {
        let (s, ..) = sample_store();
        // 1 program + 1 version + 2 runs + 1 function + 2 regions
        // + 4 total timings + 1 typed timing + 1 source = 13
        assert_eq!(s.object_count(), 13);
    }
}
