//! Typed arena identifiers, one per data-model class.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $short:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index into the owning arena.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a [`crate::Program`].
    ProgramId,
    "prog"
);
define_id!(
    /// Identifier of a [`crate::ProgVersion`].
    VersionId,
    "ver"
);
define_id!(
    /// Identifier of a [`crate::TestRun`].
    TestRunId,
    "run"
);
define_id!(
    /// Identifier of a [`crate::Function`].
    FunctionId,
    "fn"
);
define_id!(
    /// Identifier of a [`crate::Region`].
    RegionId,
    "reg"
);
define_id!(
    /// Identifier of a [`crate::TotalTiming`].
    TotalTimingId,
    "tot"
);
define_id!(
    /// Identifier of a [`crate::TypedTiming`].
    TypedTimingId,
    "typ"
);
define_id!(
    /// Identifier of a [`crate::FunctionCall`].
    CallId,
    "call"
);
define_id!(
    /// Identifier of a [`crate::CallTiming`].
    CallTimingId,
    "ct"
);
define_id!(
    /// Identifier of a [`crate::SourceCode`].
    SourceId,
    "src"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(RegionId(4).to_string(), "reg4");
        assert_eq!(TestRunId(0).to_string(), "run0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(RegionId(1) < RegionId(2));
        assert_eq!(RegionId(7).index(), 7);
    }
}
