//! The `TimingType` enumeration of overhead categories.
//!
//! §4.1 of the paper: "The TypedTiming class determines the execution time
//! for special types of overhead such as I/O, message passing and barrier
//! synchronization — **Apprentice knows 25 such types**." The paper names
//! only those three families; the remaining categories below are our
//! documented Apprentice-equivalent set, chosen to cover the overhead
//! sources a Cray T3E code exhibits (SHMEM one-sided traffic, collective
//! operations, buffer packing, runtime startup, instrumentation). The exact
//! names do not affect any reproduced result — properties aggregate over
//! categories via [`OverheadCategory`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Families of overhead used by COSY's refinement properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverheadCategory {
    /// Synchronization (barrier, locks).
    Synchronization,
    /// Point-to-point message passing.
    PointToPoint,
    /// Collective communication.
    Collective,
    /// One-sided SHMEM communication.
    OneSided,
    /// File input/output.
    Io,
    /// Memory/buffer management overhead.
    Memory,
    /// Runtime system overhead (startup, shutdown, instrumentation).
    Runtime,
}

impl fmt::Display for OverheadCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OverheadCategory::Synchronization => "synchronization",
            OverheadCategory::PointToPoint => "point-to-point",
            OverheadCategory::Collective => "collective",
            OverheadCategory::OneSided => "one-sided",
            OverheadCategory::Io => "I/O",
            OverheadCategory::Memory => "memory",
            OverheadCategory::Runtime => "runtime",
        };
        write!(f, "{s}")
    }
}

macro_rules! timing_types {
    ($( $(#[$doc:meta])* $name:ident => $cat:ident ),+ $(,)?) => {
        /// One of the 25 overhead timing types recorded per region and run.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
                 Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum TimingType {
            $( $(#[$doc])* $name, )+
        }

        impl TimingType {
            /// All 25 timing types in declaration order.
            pub const ALL: &'static [TimingType] = &[ $(TimingType::$name),+ ];

            /// The overhead family this type belongs to.
            pub fn category(self) -> OverheadCategory {
                match self {
                    $( TimingType::$name => OverheadCategory::$cat, )+
                }
            }

            /// The ASL enum-variant name (also used in the database).
            pub fn name(self) -> &'static str {
                match self {
                    $( TimingType::$name => stringify!($name), )+
                }
            }

            /// Parse a variant name produced by [`TimingType::name`].
            pub fn from_name(s: &str) -> Option<TimingType> {
                match s {
                    $( stringify!($name) => Some(TimingType::$name), )+
                    _ => None,
                }
            }
        }
    };
}

timing_types! {
    /// Barrier synchronization wait time (named in the paper).
    Barrier => Synchronization,
    /// Lock acquisition wait time.
    Lock => Synchronization,
    /// Lock release overhead.
    Unlock => Synchronization,
    /// Point-to-point send overhead (named family in the paper).
    PtpSend => PointToPoint,
    /// Point-to-point receive overhead.
    PtpRecv => PointToPoint,
    /// Waiting on outstanding point-to-point operations.
    PtpWait => PointToPoint,
    /// Broadcast collective.
    Broadcast => Collective,
    /// Reduction collective.
    Reduce => Collective,
    /// All-reduce collective.
    AllReduce => Collective,
    /// Gather collective.
    Gather => Collective,
    /// Scatter collective.
    Scatter => Collective,
    /// All-to-all collective.
    AllToAll => Collective,
    /// SHMEM put (one-sided write).
    ShmemPut => OneSided,
    /// SHMEM get (one-sided read).
    ShmemGet => OneSided,
    /// SHMEM completion wait.
    ShmemWait => OneSided,
    /// File open (I/O family named in the paper).
    IoOpen => Io,
    /// File close.
    IoClose => Io,
    /// File read.
    IoRead => Io,
    /// File write.
    IoWrite => Io,
    /// File seek.
    IoSeek => Io,
    /// Message-buffer packing.
    BufferPack => Memory,
    /// Message-buffer unpacking.
    BufferUnpack => Memory,
    /// Parallel runtime startup.
    Startup => Runtime,
    /// Parallel runtime shutdown.
    Shutdown => Runtime,
    /// Instrumentation (monitoring) overhead.
    Instrumentation => Runtime,
}

impl fmt::Display for TimingType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl TimingType {
    /// Stable small integer for database storage (declaration index).
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|t| *t == self).unwrap() as u8
    }

    /// Inverse of [`TimingType::code`].
    pub fn from_code(c: u8) -> Option<TimingType> {
        Self::ALL.get(c as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_25_types_like_apprentice() {
        assert_eq!(TimingType::ALL.len(), 25);
    }

    #[test]
    fn names_roundtrip() {
        for &t in TimingType::ALL {
            assert_eq!(TimingType::from_name(t.name()), Some(t));
        }
        assert_eq!(TimingType::from_name("Nonsense"), None);
    }

    #[test]
    fn codes_roundtrip() {
        for &t in TimingType::ALL {
            assert_eq!(TimingType::from_code(t.code()), Some(t));
        }
        assert_eq!(TimingType::from_code(25), None);
    }

    #[test]
    fn paper_named_families_are_present() {
        // The paper names I/O, message passing and barrier synchronization.
        assert_eq!(
            TimingType::Barrier.category(),
            OverheadCategory::Synchronization
        );
        assert_eq!(
            TimingType::PtpSend.category(),
            OverheadCategory::PointToPoint
        );
        assert_eq!(TimingType::IoRead.category(), OverheadCategory::Io);
    }

    #[test]
    fn every_category_is_inhabited() {
        use std::collections::HashSet;
        let cats: HashSet<_> = TimingType::ALL.iter().map(|t| t.category()).collect();
        assert_eq!(cats.len(), 7);
    }
}
