//! # `perfdata` — the COSY performance-data model
//!
//! Native Rust representation of the ASL data model from §4.1 of
//! *Specification Techniques for Automatic Performance Analysis Tools*
//! (Gerndt & Eßer): the nine classes COSY stores in its relational database
//! (`Program`, `ProgVersion`, `TestRun`, `Function`, `Region`,
//! `TotalTiming`, `TypedTiming`, `FunctionCall`, `CallTiming`) plus the
//! `TimingType` enumeration of overhead categories ("Apprentice knows 25
//! such types", §4.1).
//!
//! The data lives in a [`Store`]: one typed arena per class, cross-linked by
//! integer ids. This mirrors both the ASL object model (objects navigated
//! via attributes) and the relational schema COSY uses at runtime (rows
//! keyed by synthetic primary keys), so the same store feeds the ASL
//! interpreter (`asl-eval`) and the SQL loader (`asl-sql`).
//!
//! All timings follow Apprentice semantics: **values are summed over all
//! processes** of a test run (§4.2: "all timings in the database are summed
//! up values of all processes"); per-process variation survives only in the
//! [`CallTiming`] statistics (min/max/mean/stddev with the first/last PE
//! memorized).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ids;
pub mod model;
pub mod schema;
pub mod store;
pub mod timing_type;
pub mod validate;

pub use ids::*;
pub use model::*;
pub use schema::{attr_unit, AttrUnit};
pub use store::Store;
pub use timing_type::{OverheadCategory, TimingType};
pub use validate::{validate, Violation};
