//! The nine data-model classes of §4.1, as plain Rust structs.

use crate::ids::*;
use crate::timing_type::TimingType;
use serde::{Deserialize, Serialize};

/// A timestamp in microseconds since the Unix epoch (the ASL `DateTime`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DateTime(pub i64);

impl DateTime {
    /// Construct from whole seconds since the epoch.
    pub fn from_secs(s: i64) -> Self {
        DateTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub fn micros(self) -> i64 {
        self.0
    }
}

/// What kind of source construct a [`Region`] is.
///
/// §3 of the paper: COSY "identifies program regions, i.e. subprograms,
/// loops, if-blocks, subroutine calls, and arbitrary basic blocks".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// The body of a subprogram (function).
    Subprogram,
    /// A loop nest level.
    Loop,
    /// An if-block.
    IfBlock,
    /// A subroutine call site treated as a region.
    CallSite,
    /// An arbitrary basic block.
    BasicBlock,
}

impl RegionKind {
    /// Short lowercase name (used in reports and the database).
    pub fn name(self) -> &'static str {
        match self {
            RegionKind::Subprogram => "subprogram",
            RegionKind::Loop => "loop",
            RegionKind::IfBlock => "if",
            RegionKind::CallSite => "call",
            RegionKind::BasicBlock => "block",
        }
    }

    /// Parse the short name produced by [`RegionKind::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "subprogram" => RegionKind::Subprogram,
            "loop" => RegionKind::Loop,
            "if" => RegionKind::IfBlock,
            "call" => RegionKind::CallSite,
            "block" => RegionKind::BasicBlock,
            _ => return None,
        })
    }
}

/// ASL class `Program`: one application, identified by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Application name.
    pub name: String,
    /// Program versions, oldest first.
    pub versions: Vec<VersionId>,
}

/// ASL class `ProgVersion`: one compiled version of a program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgVersion {
    /// Owning program.
    pub program: ProgramId,
    /// Compilation timestamp.
    pub compilation: DateTime,
    /// Static function inventory.
    pub functions: Vec<FunctionId>,
    /// Executed test runs.
    pub runs: Vec<TestRunId>,
    /// Source code of this version.
    pub code: SourceId,
}

/// ASL class `SourceCode` (referenced but not detailed in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceCode {
    /// Full program text (synthetic programs store a structural sketch).
    pub text: String,
}

/// ASL class `TestRun`: one execution with a fixed processor configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestRun {
    /// Owning program version.
    pub version: VersionId,
    /// Start timestamp.
    pub start: DateTime,
    /// Number of processing elements.
    pub no_pe: u32,
    /// Clock speed in MHz (the T3E at FZJ ran at 300/375/450 MHz).
    pub clockspeed: u32,
}

/// ASL class `Function`: static information about one subprogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Owning program version.
    pub version: VersionId,
    /// Function name.
    pub name: String,
    /// Call sites *of* this function (calls to it), per the paper's
    /// `Function.Calls` attribute.
    pub calls: Vec<CallId>,
    /// Regions contained in this function (the subprogram region first).
    pub regions: Vec<RegionId>,
}

/// ASL class `Region`: a program region with its performance data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// The function this region belongs to.
    pub function: FunctionId,
    /// Enclosing region (`None` for the subprogram region itself).
    pub parent: Option<RegionId>,
    /// Construct kind.
    pub kind: RegionKind,
    /// Human-readable name (e.g. `solver:loop@12`).
    pub name: String,
    /// First source line of the region.
    pub first_line: u32,
    /// Last source line of the region.
    pub last_line: u32,
    /// Per-run total timings (at most one per test run).
    pub tot_times: Vec<TotalTimingId>,
    /// Per-run typed overhead timings (at most one per run and type).
    pub typ_times: Vec<TypedTimingId>,
}

/// ASL class `TotalTiming`: summed-over-processes timing of a region in one
/// test run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TotalTiming {
    /// The region measured.
    pub region: RegionId,
    /// The test run the numbers belong to.
    pub run: TestRunId,
    /// Exclusive computing time in seconds (children excluded), summed over
    /// all processes.
    pub excl: f64,
    /// Inclusive computing time in seconds, summed over all processes.
    pub incl: f64,
    /// Overhead measured by Apprentice (instrumentation + the known
    /// overhead types), summed over all processes and **inclusive** of the
    /// region's subtree, so the measured/unmeasured split of the enclosing
    /// region accounts for everything it contains.
    pub ovhd: f64,
}

/// ASL class `TypedTiming`: time spent in one overhead category by a region
/// in one test run (summed over processes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypedTiming {
    /// The region measured.
    pub region: RegionId,
    /// The test run.
    pub run: TestRunId,
    /// Which of the 25 overhead types.
    pub ty: TimingType,
    /// Seconds spent, summed over all processes.
    pub time: f64,
}

/// ASL class `FunctionCall`: one call site of a function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionCall {
    /// The function containing the call (ASL attribute `Caller`).
    pub caller: FunctionId,
    /// The function being called (implicit in ASL via `Function.Calls`
    /// membership; stored explicitly here for navigation).
    pub callee: FunctionId,
    /// The region containing the call site (ASL attribute `CallingReg`).
    pub calling_reg: RegionId,
    /// Per-run call statistics (ASL attribute `Sums`).
    pub sums: Vec<CallTimingId>,
}

/// ASL class `CallTiming`: per-run, across-process statistics of one call
/// site — min/max/mean/stddev over (a) the pass count and (b) the time
/// spent, with the extremal processor memorized for each of the four
/// extremal values (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallTiming {
    /// The call site these statistics belong to.
    pub call: CallId,
    /// The test run.
    pub run: TestRunId,
    /// Minimum pass count over processes.
    pub min_count: f64,
    /// Maximum pass count over processes.
    pub max_count: f64,
    /// Mean pass count over processes.
    pub mean_count: f64,
    /// Standard deviation of the pass count.
    pub stdev_count: f64,
    /// Processor with the minimum pass count.
    pub min_count_pe: u32,
    /// Processor with the maximum pass count.
    pub max_count_pe: u32,
    /// Minimum time spent in the callee (seconds, per process).
    pub min_time: f64,
    /// Maximum time spent in the callee.
    pub max_time: f64,
    /// Mean time spent in the callee.
    pub mean_time: f64,
    /// Standard deviation of the time spent.
    pub stdev_time: f64,
    /// Processor with the minimum time.
    pub min_time_pe: u32,
    /// Processor with the maximum time.
    pub max_time_pe: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datetime_conversion() {
        assert_eq!(DateTime::from_secs(2).micros(), 2_000_000);
    }

    #[test]
    fn region_kind_names_roundtrip() {
        for k in [
            RegionKind::Subprogram,
            RegionKind::Loop,
            RegionKind::IfBlock,
            RegionKind::CallSite,
            RegionKind::BasicBlock,
        ] {
            assert_eq!(RegionKind::from_name(k.name()), Some(k));
        }
        assert_eq!(RegionKind::from_name("nope"), None);
    }
}
