//! Physical units of the store's attributes.
//!
//! The COSY data model mixes three kinds of numeric attributes: summed
//! **times** (Apprentice reports seconds accumulated over all
//! processes), **counts** (numbers of processes, numbers of calls), and
//! identifiers that are neither (processor numbers such as
//! `MinCountPe`, clock speeds). Analysis passes that reason about
//! arithmetic over specifications — notably `kojak-flow`'s
//! unit-inference lattice — need to know which is which; this module is
//! the single authoritative table.
//!
//! Attributes not listed here (object references, processor ids,
//! `Clockspeed`, …) have no assigned unit and [`attr_unit`] returns
//! `None` for them, which downstream analyses must treat as "unknown",
//! never as "dimensionless".

/// The physical unit of a numeric store attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrUnit {
    /// A duration (summed seconds over all processes).
    Time,
    /// A cardinality: processes, calls, events.
    Count,
    /// A data volume. No current COSY attribute carries it, but traces
    /// with communication volumes will (the lattice reserves the slot).
    Bytes,
}

/// Unit of attribute `attr` on class `class`, or `None` when the
/// attribute is not a numeric quantity with a known unit.
pub fn attr_unit(class: &str, attr: &str) -> Option<AttrUnit> {
    use AttrUnit::*;
    let unit = match (class, attr) {
        ("TestRun", "NoPe") => Count,
        ("TotalTiming", "Excl" | "Incl" | "Ovhd") => Time,
        ("TypedTiming", "Time") => Time,
        ("CallTiming", "MinCount" | "MaxCount" | "MeanCount" | "StdevCount") => Count,
        ("CallTiming", "MinTime" | "MaxTime" | "MeanTime" | "StdevTime") => Time,
        // `MinCountPe`/`MaxTimePe`/… are processor *numbers* (which PE
        // attained the extremum), not counts; `Clockspeed` is a
        // frequency the model does not otherwise use. Both stay unknown.
        _ => return None,
    };
    Some(unit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_counts_and_unknowns() {
        assert_eq!(attr_unit("TotalTiming", "Incl"), Some(AttrUnit::Time));
        assert_eq!(attr_unit("CallTiming", "MeanCount"), Some(AttrUnit::Count));
        assert_eq!(attr_unit("TestRun", "NoPe"), Some(AttrUnit::Count));
        // Processor ids and clock speeds are not quantities with units.
        assert_eq!(attr_unit("CallTiming", "MinCountPe"), None);
        assert_eq!(attr_unit("TestRun", "Clockspeed"), None);
        assert_eq!(attr_unit("Region", "Name"), None);
    }
}
