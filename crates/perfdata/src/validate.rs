//! Invariant validation for a [`Store`].
//!
//! The checks encode the structural constraints §4.1 of the paper states or
//! implies:
//!
//! * at most one `TotalTiming` per (region, run) — `Summary` uses `UNIQUE`;
//! * at most one `TypedTiming` per (region, run, type) — "for each region
//!   there is at most one object per timing type and per test run";
//! * at most one `CallTiming` per (call, run);
//! * inclusive ≥ exclusive ≥ 0 for every total timing;
//! * the sum of the children's inclusive times never exceeds the parent's;
//! * regions form a forest within their function (no parent cycles);
//! * all cross-arena references are in bounds and run/version-consistent.

use crate::ids::*;
use crate::store::Store;
use std::collections::HashSet;
use std::fmt;

/// A single violated invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which rule was violated.
    pub rule: &'static str,
    /// Human-readable details.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rule, self.detail)
    }
}

/// Check all store invariants; returns every violation found.
pub fn validate(store: &Store) -> Vec<Violation> {
    let mut out = Vec::new();
    unique_total_timings(store, &mut out);
    unique_typed_timings(store, &mut out);
    unique_call_timings(store, &mut out);
    timing_sanity(store, &mut out);
    child_inclusion(store, &mut out);
    region_forest(store, &mut out);
    run_consistency(store, &mut out);
    out
}

fn unique_total_timings(store: &Store, out: &mut Vec<Violation>) {
    let mut seen = HashSet::new();
    for t in &store.total_timings {
        if !seen.insert((t.region, t.run)) {
            out.push(Violation {
                rule: "unique-total-timing",
                detail: format!("duplicate TotalTiming for ({}, {})", t.region, t.run),
            });
        }
    }
}

fn unique_typed_timings(store: &Store, out: &mut Vec<Violation>) {
    let mut seen = HashSet::new();
    for t in &store.typed_timings {
        if !seen.insert((t.region, t.run, t.ty)) {
            out.push(Violation {
                rule: "unique-typed-timing",
                detail: format!(
                    "duplicate TypedTiming for ({}, {}, {})",
                    t.region, t.run, t.ty
                ),
            });
        }
    }
}

fn unique_call_timings(store: &Store, out: &mut Vec<Violation>) {
    let mut seen = HashSet::new();
    for ct in &store.call_timings {
        if !seen.insert((ct.call, ct.run)) {
            out.push(Violation {
                rule: "unique-call-timing",
                detail: format!("duplicate CallTiming for ({}, {})", ct.call, ct.run),
            });
        }
    }
}

fn timing_sanity(store: &Store, out: &mut Vec<Violation>) {
    for (i, t) in store.total_timings.iter().enumerate() {
        if t.excl < 0.0 || t.incl < 0.0 || t.ovhd < 0.0 {
            out.push(Violation {
                rule: "non-negative-timing",
                detail: format!("TotalTiming tot{i} has a negative component"),
            });
        }
        // Allow a small relative tolerance for floating-point accumulation.
        if t.excl > t.incl * (1.0 + 1e-9) + 1e-12 {
            out.push(Violation {
                rule: "inclusive-covers-exclusive",
                detail: format!(
                    "TotalTiming tot{i}: excl {} exceeds incl {}",
                    t.excl, t.incl
                ),
            });
        }
    }
    for (i, t) in store.typed_timings.iter().enumerate() {
        if t.time < 0.0 {
            out.push(Violation {
                rule: "non-negative-timing",
                detail: format!("TypedTiming typ{i} is negative"),
            });
        }
    }
    for (i, ct) in store.call_timings.iter().enumerate() {
        if ct.min_count > ct.mean_count + 1e-9
            || ct.mean_count > ct.max_count + 1e-9
            || ct.min_time > ct.mean_time + 1e-9
            || ct.mean_time > ct.max_time + 1e-9
            || ct.stdev_count < 0.0
            || ct.stdev_time < 0.0
        {
            out.push(Violation {
                rule: "call-statistics-order",
                detail: format!("CallTiming ct{i} violates min <= mean <= max or stdev >= 0"),
            });
        }
    }
}

fn child_inclusion(store: &Store, out: &mut Vec<Violation>) {
    for (i, region) in store.regions.iter().enumerate() {
        let rid = RegionId(i as u32);
        for tt_id in &region.tot_times {
            let parent_t = &store.total_timings[tt_id.index()];
            let child_sum: f64 = store
                .children(rid)
                .filter_map(|c| store.total_timing(c, parent_t.run))
                .map(|t| t.incl)
                .sum();
            if child_sum > parent_t.incl * (1.0 + 1e-9) + 1e-9 {
                out.push(Violation {
                    rule: "child-inclusion",
                    detail: format!(
                        "children of {} sum to {child_sum} > parent incl {} in {}",
                        rid, parent_t.incl, parent_t.run
                    ),
                });
            }
        }
    }
}

fn region_forest(store: &Store, out: &mut Vec<Violation>) {
    for (i, region) in store.regions.iter().enumerate() {
        // Walk up; a cycle would revisit i.
        let mut seen = HashSet::new();
        let mut cur = region.parent;
        seen.insert(RegionId(i as u32));
        while let Some(p) = cur {
            if !seen.insert(p) {
                out.push(Violation {
                    rule: "region-forest",
                    detail: format!("parent cycle at reg{i}"),
                });
                break;
            }
            let pr = &store.regions[p.index()];
            if pr.function != region.function {
                out.push(Violation {
                    rule: "region-forest",
                    detail: format!("reg{i} has parent {} in a different function", p),
                });
                break;
            }
            cur = pr.parent;
        }
    }
}

fn run_consistency(store: &Store, out: &mut Vec<Violation>) {
    for (i, t) in store.total_timings.iter().enumerate() {
        let region_version =
            store.functions[store.regions[t.region.index()].function.index()].version;
        let run_version = store.runs[t.run.index()].version;
        if region_version != run_version {
            out.push(Violation {
                rule: "run-version-consistency",
                detail: format!(
                    "TotalTiming tot{i} links region of {} to run of {}",
                    region_version, run_version
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DateTime, RegionKind};
    use crate::timing_type::TimingType;

    fn valid_store() -> Store {
        let mut s = Store::new();
        let p = s.add_program("app");
        let v = s.add_version(p, DateTime::from_secs(0), "");
        let r = s.add_run(v, DateTime::from_secs(1), 4, 450);
        let f = s.add_function(v, "main");
        let root = s.add_region(f, None, RegionKind::Subprogram, "main", (1, 50));
        let lp = s.add_region(f, Some(root), RegionKind::Loop, "loop", (5, 20));
        s.add_total_timing(root, r, 2.0, 10.0, 0.1);
        s.add_total_timing(lp, r, 7.0, 8.0, 0.1);
        s.add_typed_timing(lp, r, TimingType::Barrier, 0.5);
        s
    }

    #[test]
    fn valid_store_passes() {
        assert!(validate(&valid_store()).is_empty());
    }

    #[test]
    fn duplicate_total_timing_detected() {
        // Built through the builder so the secondary indexes stay
        // consistent with the (deliberately malformed) arenas.
        let mut s = valid_store();
        let dup = s.total_timings[0].clone();
        s.add_total_timing(dup.region, dup.run, dup.excl, dup.incl, dup.ovhd);
        let v = validate(&s);
        assert!(v.iter().any(|x| x.rule == "unique-total-timing"));
    }

    #[test]
    fn duplicate_typed_timing_detected() {
        let mut s = valid_store();
        let dup = s.typed_timings[0].clone();
        s.add_typed_timing(dup.region, dup.run, dup.ty, dup.time);
        let v = validate(&s);
        assert!(v.iter().any(|x| x.rule == "unique-typed-timing"));
    }

    #[test]
    fn exclusive_above_inclusive_detected() {
        let mut s = valid_store();
        s.total_timings[1].excl = 100.0;
        let v = validate(&s);
        assert!(v.iter().any(|x| x.rule == "inclusive-covers-exclusive"));
    }

    #[test]
    fn negative_time_detected() {
        let mut s = valid_store();
        s.typed_timings[0].time = -1.0;
        let v = validate(&s);
        assert!(v.iter().any(|x| x.rule == "non-negative-timing"));
    }

    #[test]
    fn children_exceeding_parent_detected() {
        let mut s = valid_store();
        // Loop (child of root) inclusive > root inclusive.
        s.total_timings[1].incl = 50.0;
        s.total_timings[1].excl = 1.0;
        let v = validate(&s);
        assert!(v.iter().any(|x| x.rule == "child-inclusion"));
    }

    #[test]
    fn parent_cycle_detected() {
        let mut s = valid_store();
        // Make root's parent the loop: cycle of length 2.
        s.regions[0].parent = Some(crate::ids::RegionId(1));
        let v = validate(&s);
        assert!(v.iter().any(|x| x.rule == "region-forest"));
    }

    #[test]
    fn cross_version_timing_detected() {
        let mut s = valid_store();
        let p2 = s.add_program("other");
        let v2 = s.add_version(p2, DateTime::from_secs(0), "");
        let r2 = s.add_run(v2, DateTime::from_secs(0), 2, 450);
        s.total_timings[0].run = r2;
        let v = validate(&s);
        assert!(v.iter().any(|x| x.rule == "run-version-consistency"));
    }

    #[test]
    fn call_statistics_order_detected() {
        let mut s = valid_store();
        let f_main = crate::ids::FunctionId(0);
        let root = crate::ids::RegionId(0);
        let callee = s.add_function(crate::ids::VersionId(0), "barrier");
        let c = s.add_call(f_main, callee, root);
        s.add_call_timing(crate::model::CallTiming {
            call: c,
            run: crate::ids::TestRunId(0),
            min_count: 10.0,
            max_count: 1.0, // wrong order
            mean_count: 5.0,
            stdev_count: 0.0,
            min_count_pe: 0,
            max_count_pe: 0,
            min_time: 0.0,
            max_time: 1.0,
            mean_time: 0.5,
            stdev_time: 0.1,
            min_time_pe: 0,
            max_time_pe: 1,
        });
        let v = validate(&s);
        assert!(v.iter().any(|x| x.rule == "call-statistics-order"));
    }
}
