//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy-combinator surface this workspace uses:
//! [`Strategy`] with `prop_map`/`prop_recursive`/`boxed`, ranges and tuples
//! as strategies, [`Just`], [`any`], a small regex-character-class string
//! strategy, `prop::collection::vec`, `prop::option::of`, and the
//! [`proptest!`]/[`prop_oneof!`]/[`prop_assert!`] macro family.
//!
//! Differences from real proptest: generation is driven by a deterministic
//! per-test splitmix64 stream (reproducible across runs and platforms) and
//! there is **no shrinking** — a failing case panics with the standard
//! assert message. `PROPTEST_CASES` overrides the default case count.

use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------- RNG ----

/// Deterministic splitmix64 generator; one stream per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Stream for case `case` of test `name` (stable across runs).
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

// ----------------------------------------------------------- Strategy ----

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Build a recursive strategy: `self` is the leaf case, and `f` wraps a
    /// strategy for subtrees into a strategy for larger trees. `depth`
    /// bounds the nesting; the size hints are accepted for proptest
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let recursive = f(current).boxed();
            current = Union::new(vec![leaf.clone(), recursive]).boxed();
        }
        current
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly between `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------- primitive strategies --

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let u = rng.next_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64() * 2e6 - 1e6
    }
}

/// Strategy form of [`Arbitrary`].
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A> Clone for AnyStrategy<A> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A` (`any::<bool>()`, …).
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

// --------------------------------------------------- string strategies ---

/// `&'static str` regex patterns as string strategies. Supported subset:
/// one character class with optional `&&[^…]` subtraction, followed by a
/// `{min,max}` repetition — e.g. `"[ -~&&[^\"\\\\]]{0,12}"`. Anything else
/// panics loudly so unsupported patterns are caught at test-writing time.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
        let len = min + rng.index(max - min + 1);
        (0..len)
            .map(|_| alphabet[rng.index(alphabet.len())])
            .collect()
    }
}

/// Parse `[class]{min,max}` into (alphabet, min, max).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    // Split the class body from the repetition suffix at the matching `]`.
    // The body may contain a nested `[^…]` subtraction class.
    let mut depth = 1;
    let mut body = String::new();
    let mut chars = rest.chars();
    let mut escaped = false;
    for c in chars.by_ref() {
        if escaped {
            body.push('\\');
            body.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '[' => {
                depth += 1;
                body.push(c);
            }
            ']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                body.push(c);
            }
            _ => body.push(c),
        }
    }
    if depth != 0 {
        return None;
    }
    let suffix: String = chars.collect();
    let (min, max) = if suffix.is_empty() {
        (1, 1)
    } else {
        let inner = suffix.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = inner.split_once(',')?;
        (lo.trim().parse().ok()?, hi.trim().parse().ok()?)
    };

    // Optional subtraction: `base&&[^negated]`.
    let (base, negated) = match body.split_once("&&[^") {
        Some((b, n)) => (
            b.to_string(),
            Some(n.strip_suffix(']').unwrap_or(n).to_string()),
        ),
        None => (body, None),
    };
    let mut allowed = class_chars(&base)?;
    if let Some(neg) = negated {
        let banned = class_chars(&neg)?;
        allowed.retain(|c| !banned.contains(c));
    }
    if allowed.is_empty() {
        return None;
    }
    Some((allowed, min, max))
}

/// Expand a character-class body (`a-z`, literals, `\\`-escapes).
fn class_chars(body: &str) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let mut items: Vec<char> = Vec::new();
    let mut iter = body.chars().peekable();
    while let Some(c) = iter.next() {
        let lit = if c == '\\' { iter.next()? } else { c };
        items.push(lit);
    }
    let mut i = 0;
    while i < items.len() {
        if i + 2 < items.len() && items[i + 1] == '-' {
            let (lo, hi) = (items[i], items[i + 2]);
            for v in lo as u32..=hi as u32 {
                out.push(char::from_u32(v)?);
            }
            i += 3;
        } else {
            out.push(items[i]);
            i += 1;
        }
    }
    Some(out)
}

// ------------------------------------------------------- prop:: module ---

/// The `prop::` helper module re-exported by the prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generate vectors of `element` values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty vec length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.start + rng.index(self.len.end - self.len.start);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>` (`None` one time in four).
        #[derive(Clone)]
        pub struct OptionStrategy<S>(S);

        /// Generate `Some` values of `inner` three times out of four.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.index(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

// ------------------------------------------------------------- config ----

/// Per-test configuration (only the case count is meaningful here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Marker returned by [`prop_assume!`] on rejection (the case is skipped).
#[derive(Debug)]
pub struct TestCaseReject;

// ------------------------------------------------------------- macros ----

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a [`proptest!`] body (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Equality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Inequality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __fname = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(__fname, __case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::core::result::Result<(), $crate::TestCaseReject> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    let _ = __outcome; // Err = case rejected by prop_assume!
                }
            }
        )*
    };
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3i64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_class() {
        let mut rng = TestRng::for_case("strings", 1);
        let strat = "[ -~&&[^\"\\\\]]{0,12}";
        for _ in 0..500 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) && c != '"' && c != '\\'));
        }
    }

    #[test]
    fn oneof_and_map() {
        let mut rng = TestRng::for_case("oneof", 2);
        let strat = prop_oneof![Just(1u32), 5u32..7, Just(9u32)].prop_map(|v| v * 10);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!([10, 50, 60, 90].contains(&v));
        }
    }

    #[test]
    fn recursive_bounds_depth() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_case("recursive", 3);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_form_works(x in 0u32..10, flip in any::<bool>()) {
            prop_assume!(x != 3);
            prop_assert!(x < 10);
            if flip {
                prop_assert_eq!(x.min(9), x);
            }
        }
    }
}
