//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing parking_lot's non-poisoning API (guards are returned
//! directly, a poisoned lock panics — matching parking_lot's behavior of
//! never poisoning).

use std::sync;

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        assert_eq!(m.into_inner(), vec![1]);
    }
}
