//! Offline stand-in for the `rayon` crate.
//!
//! Implements the slice-parallelism surface this workspace uses —
//! `par_iter()` followed by `map(...).collect()` or `for_each(...)` — on
//! top of `std::thread::scope`. Work is split into one contiguous chunk per
//! available core (sequential fallback on one core), and `collect()`
//! preserves input order, matching rayon's indexed semantics. Swapping the
//! real rayon back in is a manifest-only change.

use std::num::NonZeroUsize;

/// Number of worker threads to use for a job of `len` items.
fn workers_for(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Apply `f` to every element of `items`, collecting outputs in input
/// order across a scoped thread pool.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let workers = workers_for(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots: Vec<(usize, &mut [Option<R>])> = {
        let mut rest = out.as_mut_slice();
        let mut slots = Vec::new();
        let mut start = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            slots.push((start, head));
            start += take;
            rest = tail;
        }
        slots
    };
    std::thread::scope(|scope| {
        for (start, slot) in slots {
            let f = &f;
            scope.spawn(move || {
                for (k, cell) in slot.iter_mut().enumerate() {
                    *cell = Some(f(&items[start + k]));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("worker filled slot"))
        .collect()
}

/// A "parallel" iterator over a borrowed slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` for every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_map(self.items, f);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Collect the mapped values, preserving input order.
    pub fn collect<C: FromParallel<R>>(self) -> C {
        C::from_vec(parallel_map(self.items, self.f))
    }

    /// Sum the mapped values.
    pub fn sum<S: std::iter::Sum<R> + Send>(self) -> S {
        let v: Vec<R> = self.collect();
        v.into_iter().sum()
    }
}

/// Conversion from an ordered `Vec` of results (rayon's
/// `FromParallelIterator` analogue).
pub trait FromParallel<R> {
    /// Build the collection from results in input order.
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

impl<A, B> FromParallel<(A, B)> for (Vec<A>, Vec<B>) {
    fn from_vec(v: Vec<(A, B)>) -> Self {
        v.into_iter().unzip()
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Create the parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallel, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i32> = (0..1000).collect();
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let v: Vec<i32> = Vec::new();
        let out: Vec<i32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn borrows_from_outer_scope() {
        let names = vec!["a".to_string(), "bb".to_string()];
        let refs: Vec<&str> = names.par_iter().map(|s| s.as_str()).collect();
        assert_eq!(refs, ["a", "bb"]);
    }
}
