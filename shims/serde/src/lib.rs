//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a minimal local substitute. `Serialize`/`Deserialize`
//! are marker traits here — nothing in the workspace performs actual
//! serialization; the derives only assert "this type is serde-ready" so the
//! data model keeps the same trait bounds it would have with the real
//! crate, and swapping the real `serde` back in is a one-line manifest
//! change.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
    ()
);

impl Serialize for str {}
impl<T: Serialize + ?Sized> Serialize for &T {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
